#!/usr/bin/env python3
"""The SIGMOD demonstration, replayed as text.

Acheron's on-stage demo ran one workload against a baseline LSM engine and
the delete-aware engine side by side, pausing to show per-level tombstone
state and the persistence dashboard.  This script does exactly that with
the text inspector: one seeded delete-heavy workload, two engines, four
checkpoints each.

Run: ``python examples/demo_walkthrough.py``
"""

from repro.demo.scenarios import DemoScenario
from repro.core.engine import AcheronEngine
from repro.metrics.reporting import format_table
from repro.workload.spec import OpKind, WorkloadSpec

SCALE = {"memtable_entries": 512, "entries_per_page": 32}
D_TH = 15_000


def main() -> None:
    spec = WorkloadSpec(
        operations=20_000,
        preload=10_000,
        weights={
            OpKind.INSERT: 0.40,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_DELETE: 0.25,
            OpKind.POINT_QUERY: 0.15,
            OpKind.EMPTY_QUERY: 0.03,
            OpKind.RANGE_QUERY: 0.02,
        },
        seed=0xD3,
    )
    scenario = DemoScenario(
        spec=spec,
        engines={
            "baseline": lambda: AcheronEngine.baseline(**SCALE),
            "acheron": lambda: AcheronEngine.acheron(
                delete_persistence_threshold=D_TH, pages_per_tile=8, **SCALE
            ),
        },
        checkpoints=4,
    ).run()

    print(scenario.render())

    print("\n\n=== closing comparison ===")
    rows = []
    for name, result in scenario.results.items():
        per_kind = result.per_kind
        lookups = per_kind.get(OpKind.POINT_QUERY)
        rows.append(
            [
                name,
                result.operations,
                round(lookups.pages_read_per_op, 2) if lookups else None,
                round(result.total_modeled_us / 1000.0, 1),
                round(result.modeled_throughput_ops_per_s(), 0),
            ]
        )
    print(
        format_table(
            ["engine", "ops", "pages/lookup", "modeled ms", "modeled ops/s"], rows
        )
    )


if __name__ == "__main__":
    main()
