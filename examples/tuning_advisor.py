#!/usr/bin/env python3
"""Tuning advisor: navigate the design space with the cost model.

Given a workload description -- resident data size, delete fraction, how
often secondary range deletes run, and a persistence deadline -- this
example enumerates candidate configurations (policy x KiWi tile size),
scores them with :mod:`repro.analysis`, prints the predicted tradeoff
grid, and then *validates* the recommended configuration by actually
running the workload on it.

This mirrors how the demo answered audience "what should I configure?"
questions: predict first, then run the simulator to confirm.

Run: ``python examples/tuning_advisor.py``
"""

from repro.analysis.model import CostModel, WorkloadProfile
from repro.config import CompactionStyle, LSMConfig, acheron_config
from repro.core.engine import AcheronEngine
from repro.metrics.reporting import format_table
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import run_workload
from repro.workload.spec import OpKind, WorkloadSpec

# --- the user's requirements ------------------------------------------
RESIDENT_ENTRIES = 30_000
DELETE_FRACTION = 0.20
D_TH = 20_000  # the regulatory/retention deadline, in ops
SCALE = {"memtable_entries": 512, "entries_per_page": 32}

CANDIDATES: list[tuple[str, LSMConfig]] = []
for policy in (CompactionStyle.LEVELING, CompactionStyle.LAZY_LEVELING, CompactionStyle.TIERING):
    for h in (1, 8):
        CANDIDATES.append(
            (
                f"{policy.value} h={h}",
                acheron_config(D_TH, pages_per_tile=h, policy=policy, **SCALE),
            )
        )


def predict() -> tuple[str, list[list]]:
    profile = WorkloadProfile(
        unique_entries=RESIDENT_ENTRIES, delete_fraction=DELETE_FRACTION
    )
    rows = []
    best_name, best_score = "", float("inf")
    for name, config in CANDIDATES:
        model = CostModel(config)
        summary = model.summary(profile)
        sdel = model.secondary_delete_pages(
            tree_pages=RESIDENT_ENTRIES // config.entries_per_page, selectivity=0.2
        )
        # A simple utility: weighted sum of the normalized costs (the demo
        # exposed the weights as sliders; here: balanced write/read with a
        # premium on cheap retention deletes).
        score = (
            summary["write_amplification"]
            + 4.0 * summary["pages_per_existing_lookup"]
            + sdel / 100.0
        )
        rows.append(
            [
                name,
                summary["levels"],
                round(summary["write_amplification"], 2),
                round(summary["pages_per_existing_lookup"], 3),
                round(summary["space_amplification_bound"], 2),
                round(sdel, 0),
                round(score, 2),
            ]
        )
        if score < best_score:
            best_name, best_score = name, score
    return best_name, rows


def validate(name: str) -> list[list]:
    config = dict(CANDIDATES)[name]
    engine = AcheronEngine(config)
    spec = WorkloadSpec(
        operations=20_000,
        preload=10_000,
        weights={
            OpKind.INSERT: 0.50,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_QUERY: 0.15,
        },
        seed=0xAD,
    ).with_delete_fraction(DELETE_FRACTION)
    run_workload(engine, WorkloadGenerator(spec).operations())
    stats = engine.stats()
    p = stats.persistence
    rows = [
        ["write amplification", round(stats.amplification.write_amplification, 2)],
        ["space amplification", round(stats.amplification.space_amplification, 3)],
        ["pages/lookup", round(stats.amplification.pages_read_per_lookup, 3)],
        ["max delete latency", p.max_latency],
        ["D_th violations", p.violations],
        ["compliant", "yes" if p.compliant() else "NO"],
    ]
    engine.close()
    return rows


def main() -> None:
    best, rows = predict()
    print(
        format_table(
            [
                "candidate",
                "levels",
                "pred WA",
                "pred pages/lookup",
                "space bound",
                "pred sdel pages",
                "score",
            ],
            rows,
            title=(
                f"Predicted tradeoffs for {RESIDENT_ENTRIES} entries, "
                f"{DELETE_FRACTION:.0%} deletes, D_th={D_TH}"
            ),
        )
    )
    print(f"\nrecommended configuration: {best}\n")
    print(
        format_table(
            ["measured metric", "value"],
            validate(best),
            title=f"Validation run of '{best}'",
        )
    )


if __name__ == "__main__":
    main()
