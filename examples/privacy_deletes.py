#!/usr/bin/env python3
"""Privacy scenario: the right to be forgotten, with a deadline.

GDPR-style regulation says a deletion request must be *persistently*
honored within a fixed time window.  This example runs the same
user-profile workload -- steady ingestion with a trickle of deletion
requests -- against the state-of-the-art baseline and against Acheron with
``D_th`` set to the regulatory window, then audits both:

* how long did each deletion take to become physical?
* at the audit moment, how many "forgotten" users still have bytes on
  disk (the compliance exposure)?

Run: ``python examples/privacy_deletes.py``
"""

import random

from repro import AcheronEngine
from repro.metrics.reporting import format_table

#: The regulatory deadline, in ticks (1 tick = 1 ingest operation).
REGULATORY_WINDOW = 25_000
USERS = 20_000
FORGET_REQUESTS = 1_500
TRAILING_TRAFFIC = 30_000
SCALE = {"memtable_entries": 1_024, "entries_per_page": 32}


def run_service(engine: AcheronEngine, seed: int = 2023) -> dict:
    rng = random.Random(seed)
    for user in range(USERS):
        engine.put(f"user:{user:06d}", f"profile-{user}")
    # Deletion requests arrive interleaved with ongoing traffic.
    doomed = rng.sample(range(USERS), FORGET_REQUESTS)
    new_user = USERS
    for i, user in enumerate(doomed):
        engine.delete(f"user:{user:06d}")
        for _ in range(TRAILING_TRAFFIC // FORGET_REQUESTS):
            engine.put(f"user:{new_user:06d}", f"profile-{new_user}")
            new_user += 1
    stats = engine.stats()
    p = stats.persistence
    return {
        "requests": p.registered,
        "physically purged": p.persisted,
        "still recoverable": p.pending,
        "worst latency (ticks)": p.max_latency,
        "p99 latency (ticks)": p.p99_latency,
        "oldest exposure (ticks)": p.oldest_pending_age,
        "window violations": p.violations
        + sum(1 for age in [p.oldest_pending_age] if age and age > REGULATORY_WINDOW),
        "compliant": "yes" if (p.threshold and p.compliant()) else "NO GUARANTEE",
        "write amplification": round(stats.amplification.write_amplification, 2),
    }


def main() -> None:
    print(f"regulatory window: {REGULATORY_WINDOW} ticks\n")
    baseline = AcheronEngine.baseline(**SCALE)
    acheron = AcheronEngine.acheron(
        delete_persistence_threshold=REGULATORY_WINDOW, pages_per_tile=8, **SCALE
    )
    rows = []
    base_report = run_service(baseline)
    ach_report = run_service(acheron)
    for metric in base_report:
        rows.append([metric, base_report[metric], ach_report[metric]])
    print(format_table(["audit metric", "baseline", "acheron"], rows,
                       title="Right-to-be-forgotten audit"))
    print(
        "\nThe baseline gives no deadline: forgotten users remain recoverable "
        "until compaction happens to reach them.  Acheron's FADE bounds every "
        "deletion by D_th at a modest write-amplification premium."
    )
    baseline.close()
    acheron.close()


if __name__ == "__main__":
    main()
