#!/usr/bin/env python3
"""Timeline charts: watch tombstones live and die.

The demo's most persuasive visual was a live chart: the baseline's
pending-delete count climbing without bound while Acheron's saw-toothed
under the ``D_th`` ceiling.  This example reproduces those charts as text
sparklines -- one identical delete-heavy workload, both engines sampled
every 1000 ticks.

Run: ``python examples/timeline_charts.py``
"""

from repro import AcheronEngine
from repro.metrics.timeline import TimelineSampler
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import run_workload
from repro.workload.spec import OpKind, WorkloadSpec

SCALE = {"memtable_entries": 512, "entries_per_page": 32}
D_TH = 8_000


def run_with_timeline(engine: AcheronEngine, name: str) -> None:
    spec = WorkloadSpec(
        operations=25_000,
        preload=10_000,
        weights={
            OpKind.INSERT: 0.45,
            OpKind.UPDATE: 0.15,
            OpKind.POINT_DELETE: 0.25,
            OpKind.POINT_QUERY: 0.15,
        },
        seed=0x717,
    )
    sampler = TimelineSampler(engine, every=1_000)
    generator = WorkloadGenerator(spec)
    # Sample between batches so the series tracks the whole run.
    batch: list = []
    for op in generator.operations():
        batch.append(op)
        if len(batch) == 500:
            run_workload(engine, batch)
            batch.clear()
            sampler.maybe_sample()
    if batch:
        run_workload(engine, batch)
    sampler.sample()

    print(f"=== {name} ===")
    print(sampler.timeline.render())
    pending = sampler.timeline.values("pending_deletes")
    print(
        f"    pending deletes: final {pending[-1]:,.0f}, "
        f"peak {max(pending):,.0f} (D_th={D_TH if engine.config.fade_enabled else 'none'})\n"
    )


def main() -> None:
    run_with_timeline(AcheronEngine.baseline(**SCALE), "baseline (no guarantee)")
    run_with_timeline(
        AcheronEngine.acheron(delete_persistence_threshold=D_TH, pages_per_tile=8, **SCALE),
        f"acheron (D_th={D_TH})",
    )
    print(
        "The baseline's pending series only ever climbs (deletes persist\n"
        "by accident); Acheron's saw-tooths as FADE's deadlines fire and\n"
        "purge -- the live view of the F1 experiment."
    )


if __name__ == "__main__":
    main()
