#!/usr/bin/env python3
"""Quickstart: the Acheron engine in five minutes.

Creates a delete-aware engine, ingests data, deletes some of it, and shows
the two things the paper is about:

1. every point delete is *physically persisted* within the configured
   threshold ``D_th`` (watch the persistence dashboard);
2. a range delete on a secondary attribute (here: insertion time) runs as
   cheap page drops instead of a full-tree rewrite.

Run: ``python examples/quickstart.py``
"""

from repro import AcheronEngine
from repro.demo.inspector import TreeInspector


def main() -> None:
    # D_th = 20_000 ticks: every delete must be physically gone within
    # 20k subsequent operations.  pages_per_tile=8 enables KiWi.
    engine = AcheronEngine.acheron(
        delete_persistence_threshold=20_000,
        pages_per_tile=8,
        memtable_entries=1_024,
        entries_per_page=32,
    )

    print("== 1. ingest 30k user records ==")
    for user_id in range(30_000):
        engine.put(f"user:{user_id:06d}", f"profile-{user_id}")

    print("== 2. read them back ==")
    print("   user:000042 ->", engine.get("user:000042"))
    first_five = list(engine.scan("user:000000", "user:000004"))
    print("   first five:", [key for key, _ in first_five])

    print("== 3. delete 3k users (right-to-be-forgotten requests) ==")
    for user_id in range(0, 30_000, 10):
        engine.delete(f"user:{user_id:06d}")
    print("   user:000000 after delete ->", engine.get("user:000000"))

    print("== 4. keep working; FADE persists the deletes under D_th ==")
    for user_id in range(30_000, 55_000):
        engine.put(f"user:{user_id:06d}", f"profile-{user_id}")

    stats = engine.stats()
    p = stats.persistence
    print(f"   deletes registered : {p.registered}")
    print(f"   physically purged  : {p.persisted}")
    print(f"   still pending      : {p.pending}")
    print(f"   worst-case latency : {p.max_latency} ticks (D_th={p.threshold})")
    print(f"   threshold violations: {p.violations}")
    print(f"   compliant          : {p.compliant()}")

    print("== 5. secondary range delete: purge the oldest 20% by insert time ==")
    cutoff = engine.clock.now() // 5
    report = engine.delete_range(0, cutoff)
    print("  ", report.summary())

    print("== 6. the demo dashboard ==")
    print(TreeInspector(engine, name="quickstart").levels_table())

    amp = stats.amplification
    print(
        f"\nwrite amplification={amp.write_amplification:.2f}  "
        f"space amplification={amp.space_amplification:.3f}  "
        f"device I/O: {stats.io}"
    )
    engine.close()


if __name__ == "__main__":
    main()
