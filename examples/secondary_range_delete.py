#!/usr/bin/env python3
"""Anatomy of one secondary range delete.

Builds the same dataset under three physical layouts -- classic (h=1) and
two KiWi weaves (h=4, h=16) -- then issues an identical "delete everything
older than the cutoff" request against each and dissects where the cost
went: pages dropped for free, pages read+rewritten, total device traffic.
The full-tree-rewrite baseline is shown last.

This is experiment F5/F7 in miniature, as a narrative.

Run: ``python examples/secondary_range_delete.py``
"""

from repro import AcheronEngine
from repro.metrics.reporting import format_table

ENTRIES = 40_000
SCALE = {"memtable_entries": 1_024, "entries_per_page": 32}


def build(pages_per_tile: int) -> AcheronEngine:
    engine = AcheronEngine.acheron(
        delete_persistence_threshold=10**6, pages_per_tile=pages_per_tile, **SCALE
    )
    # Keys arrive shuffled so that sort-key order and time order are
    # independent -- the regime the weave is designed for.
    for i in range(ENTRIES):
        engine.put((i * 48_271) % ENTRIES, f"v{i}")
    engine.flush()
    return engine


def main() -> None:
    rows = []
    cutoff = None
    for h in (1, 4, 16):
        engine = build(pages_per_tile=h)
        cutoff = engine.clock.now() // 3
        report = engine.delete_range(0, cutoff, method="kiwi")
        rows.append(
            [
                f"kiwi h={h}",
                report.entries_deleted,
                report.pages_dropped,
                report.pages_rewritten,
                report.io.pages_read,
                report.io.pages_written,
                round(report.io.modeled_us / 1000.0, 2),
            ]
        )
        engine.close()

    engine = build(pages_per_tile=1)
    report = engine.delete_range(0, cutoff, method="full_rewrite")
    rows.append(
        [
            "full rewrite",
            report.entries_deleted,
            report.pages_dropped,
            report.pages_rewritten,
            report.io.pages_read,
            report.io.pages_written,
            round(report.io.modeled_us / 1000.0, 2),
        ]
    )
    engine.close()

    print(
        format_table(
            [
                "method",
                "entries deleted",
                "dropped free",
                "rewritten",
                "pages read",
                "pages written",
                "modeled ms",
            ],
            rows,
            title=f"Delete all entries older than tick {cutoff} ({ENTRIES} total)",
        )
    )
    print(
        "\nLarger tiles (h) concentrate each tile's delete-key range into "
        "fewer pages, so more pages are fully covered and dropped without "
        "I/O.  The classic layout (h=1) must read and rewrite nearly "
        "everything it deletes; the full rewrite reads the entire tree."
    )


if __name__ == "__main__":
    main()
