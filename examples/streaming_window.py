#!/usr/bin/env python3
"""Streaming scenario: a system that only keeps a sliding window of data.

The paper's motivating use case for secondary deletes: a stream processor
ingests readings keyed by sensor id (the sort key) while retention is
defined on *time* (the delete key).  Every ``PURGE_EVERY`` ingested
readings, everything older than the retention window must go.

With the classical layout the purge is a full-tree rewrite.  With KiWi the
engine drops whole pages whose time range fell out of the window.  This
example runs both and prints the per-purge cost trajectory.

Run: ``python examples/streaming_window.py``
"""

from repro import AcheronEngine
from repro.metrics.reporting import format_table

SENSORS = 500
READINGS = 60_000
PURGE_EVERY = 10_000
WINDOW = 15_000  # keep the most recent 15k ticks of data
SCALE = {"memtable_entries": 1_024, "entries_per_page": 32}


def run_stream(engine: AcheronEngine, method: str) -> list[list]:
    rows = []
    for i in range(READINGS):
        sensor = (i * 7919) % SENSORS  # scatter sensors across the keyspace
        # Sort key: (sensor, seq) encoded as one int; delete key defaults
        # to the ingestion tick = reading time.
        engine.put(sensor * 1_000_000 + i, f"reading-{i}")
        if (i + 1) % PURGE_EVERY == 0:
            horizon = max(0, engine.clock.now() - WINDOW)
            report = engine.delete_range(0, horizon, method=method)
            rows.append(
                [
                    i + 1,
                    report.entries_deleted,
                    report.pages_dropped,
                    report.pages_rewritten,
                    report.io.pages_read,
                    report.io.pages_written,
                    round(report.io.modeled_us / 1000.0, 2),
                ]
            )
    return rows


def main() -> None:
    headers = [
        "after readings",
        "purged",
        "pages dropped free",
        "pages rewritten",
        "pages read",
        "pages written",
        "modeled ms",
    ]
    kiwi_engine = AcheronEngine.acheron(
        delete_persistence_threshold=50_000, pages_per_tile=8, **SCALE
    )
    print(format_table(headers, run_stream(kiwi_engine, "kiwi"),
                       title="KiWi layout: purge = page drops"))
    kiwi_total = kiwi_engine.disk.stats.reads_by_category.get("secondary_delete", 0)

    classic_engine = AcheronEngine.baseline(**SCALE)
    print()
    print(format_table(headers, run_stream(classic_engine, "full_rewrite"),
                       title="Classic layout: purge = full-tree rewrite"))
    classic_total = classic_engine.disk.stats.reads_by_category.get("secondary_delete", 0)

    if kiwi_total:
        print(
            f"\ntotal purge read traffic -- classic: {classic_total} pages, "
            f"kiwi: {kiwi_total} pages ({classic_total / kiwi_total:.1f}x reduction)"
        )
    kiwi_engine.close()
    classic_engine.close()


if __name__ == "__main__":
    main()
