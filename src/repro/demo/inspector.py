"""Text rendering of engine state: the demo's dashboards.

Everything is computed from public engine state and rendered with the
shared table formatter, so inspector output can be asserted in tests and
pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.amplification import measure_amplification
from repro.metrics.readpath import format_cache, format_read_path
from repro.metrics.writepath import format_write_path
from repro.metrics.reporting import format_table
from repro.metrics.shape import tree_shape

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import AcheronEngine
    from repro.shard.engine import ShardedEngine


def _format_server(server, name: str) -> str:
    """Render the admission table for an EngineServer or a report dict."""
    from repro.metrics.server import format_server_load

    if server is None:
        raise ValueError("inspector was built without a server")
    report = server.server_report() if hasattr(server, "server_report") else server
    return format_server_load(report, name=name)


class TreeInspector:
    """Renders per-level, persistence, and I/O views of one engine.

    ``server``: when the engine is being served
    (:class:`~repro.server.core.EngineServer`, or a captured
    ``server_report()`` dict), :meth:`dashboard` appends the admission/
    shedding table so the front door shows up next to the tree views.
    """

    def __init__(
        self, engine: "AcheronEngine", name: str = "engine", server=None
    ) -> None:
        self.engine = engine
        self.name = name
        self.server = server

    # ------------------------------------------------------------------
    # individual views
    # ------------------------------------------------------------------
    def levels_table(self) -> str:
        """The demo's central visual: one row per level."""
        tree = self.engine.tree
        fade = tree.fade
        deepest = tree.deepest_nonempty_level()
        rows = []
        rows.append(
            [
                "buf",
                "-",
                "-",
                "-",
                len(tree.memtable),
                tree.memtable.tombstone_count,
                f"{len(tree.memtable) / tree.config.memtable_entries:.0%}",
                "-",
                "-",
            ]
        )
        for summary in tree_shape(tree):
            ttl = "-"
            if fade is not None and summary.index <= max(deepest, 1):
                ttl = fade.cumulative_ttl(summary.index, deepest)
            rows.append(
                [
                    f"L{summary.index}",
                    summary.runs,
                    summary.files,
                    summary.pages,
                    summary.entries,
                    summary.tombstones,
                    f"{summary.fill_fraction:.0%}",
                    summary.oldest_tombstone_age,
                    ttl,
                ]
            )
        return format_table(
            ["level", "runs", "files", "pages", "entries", "tombs", "fill", "oldest-ts-age", "cum-TTL"],
            rows,
            title=f"[{self.name}] tree @ tick {tree.clock.now()}",
        )

    def persistence_table(self) -> str:
        """Delete-lifecycle dashboard (the paper's headline metric)."""
        stats = self.engine.persistence_stats()
        rows = [
            ["registered", stats.registered],
            ["persisted", stats.persisted],
            ["superseded", stats.superseded],
            ["pending (exposure)", stats.pending],
            ["max latency", stats.max_latency],
            ["p50 latency", stats.p50_latency],
            ["p99 latency", stats.p99_latency],
            ["threshold D_th", stats.threshold],
            ["violations", stats.violations],
            ["oldest pending age", stats.oldest_pending_age],
            ["compliant", "yes" if stats.compliant() else "NO"],
        ]
        fences = self.engine.fence_stats()
        rows += [
            ["range fences live", fences["live"]],
            [
                "oldest fence age (vs D_th)",
                "-"
                if fences["oldest_age"] is None
                else f"{fences['oldest_age']} / {fences['threshold']}",
            ],
            ["fence entries resolved", fences["entries_resolved_by_compaction"]],
        ]
        return format_table(
            ["delete lifecycle", "value"], rows, title=f"[{self.name}] persistence"
        )

    def io_table(self) -> str:
        """Device activity broken down by category."""
        stats = self.engine.tree.disk.stats
        amp = measure_amplification(self.engine.tree)
        rows = [["read:" + cat, pages] for cat, pages in sorted(stats.reads_by_category.items())]
        rows += [["write:" + cat, pages] for cat, pages in sorted(stats.writes_by_category.items())]
        cache = self.engine.tree.cache
        rows += [
            ["modeled ms", stats.modeled_us / 1000.0],
            ["write amplification", amp.write_amplification],
            ["space amplification", amp.space_amplification],
            ["pages/lookup", amp.pages_read_per_lookup],
            ["cache hit rate", cache.hit_rate],
            ["cache hits", cache.hits],
            ["cache misses", cache.misses],
            ["cache evictions", cache.evictions],
        ]
        return format_table(["device I/O", "value"], rows, title=f"[{self.name}] I/O")

    def cache_table(self) -> str:
        """The block cache's full stats section."""
        return format_cache(self.engine.tree, name=self.name)

    def attack_surface_table(self) -> str:
        """Which adversarial defenses are armed, and what they caught.

        One row per defense class in :mod:`repro.workload.adversarial`:
        bloom salting (vs crafted absent-key streams) and cache-admission
        hardening (vs one-hit and empty-point floods), with the counters
        each defense increments when it fires.
        """
        tree = self.engine.tree
        cache = tree.cache.stats()
        salt = tree.bloom_salt
        rows = [
            ["bloom salting", "armed" if salt is not None else "OFF"],
            ["bloom salt bytes", len(salt) if salt is not None else "-"],
            ["cache admission hardening", "armed" if cache["hardened"] else "OFF"],
            ["doorkeeper rejections", cache["doorkeeper_rejections"]],
            ["negative-lookup drops", cache["negative_guard_drops"]],
        ]
        return format_table(
            ["defense", "value"], rows, title=f"[{self.name}] attack surface"
        )

    def read_path_table(self) -> str:
        """Per-level lookup pruning counters (probe/skip/serve)."""
        return format_read_path(self.engine.tree, name=self.name)

    def write_path_table(self) -> str:
        """Flush pipeline, compaction pool, and stall counters."""
        return format_write_path(self.engine.tree, name=self.name)

    def compaction_history(self, last: int = 10) -> str:
        """The most recent compactions, newest last."""
        rows = [
            [
                e.tick,
                e.reason,
                f"L{e.source_level}->L{e.target_level}",
                e.entries_in,
                e.entries_out,
                e.tombstones_dropped,
                e.pages_read,
                e.pages_written,
            ]
            for e in self.engine.tree.compaction_log[-last:]
        ]
        return format_table(
            ["tick", "reason", "move", "in", "out", "ts-dropped", "pg-rd", "pg-wr"],
            rows,
            title=f"[{self.name}] recent compactions",
        )

    # ------------------------------------------------------------------
    # the full dashboard
    # ------------------------------------------------------------------
    def server_table(self) -> str:
        """The served-engine admission table (see
        :func:`repro.metrics.server.format_server_load`)."""
        return _format_server(self.server, self.name)

    def dashboard(self) -> str:
        sections = [
            self.levels_table(),
            self.persistence_table(),
            self.io_table(),
            self.cache_table(),
            self.attack_surface_table(),
            self.read_path_table(),
            self.write_path_table(),
            self.compaction_history(),
        ]
        if self.server is not None:
            sections.append(self.server_table())
        return "\n\n".join(sections)


class ShardInspector:
    """Renders the shard-global views of a :class:`ShardedEngine`.

    The headline table is :meth:`shards_table` -- one row per shard with
    its key range, size, and FADE/``D_th`` compliance -- followed by the
    aggregated persistence dashboard and, on request, every shard's full
    single-tree dashboard.
    """

    def __init__(
        self, engine: "ShardedEngine", name: str = "sharded", server=None
    ) -> None:
        self.engine = engine
        self.name = name
        #: Optional EngineServer (or server_report() dict) to render the
        #: admission table for; see :meth:`server_table`.
        self.server = server

    def shards_table(self) -> str:
        """One row per shard: range, size, policy, and D_th compliance.

        The ``policy`` column shows each shard's *current* compaction
        policy plus, in parentheses, how many live switches the shard
        has undergone this process -- ``tiering(2)`` reads "tiering now,
        switched twice".  Heterogeneous columns are how an operator
        spots the tuner (or explicit ``--shard-policies`` overrides)
        diverging shards from the root config.
        """
        stats = self.engine.stats()
        rows = [
            [
                r["index"],
                r["range"],
                f"{r['policy']}({r['policy_switches']})",
                r["entries_on_disk"],
                r["buffered_entries"],
                r["tombstones_on_disk"],
                r["flush_count"],
                r["compaction_count"],
                r["deletes_pending"],
                r["oldest_pending_age"] if r["oldest_pending_age"] is not None else "-",
                r["violations"],
                "yes" if r["compliant"] else "NO",
            ]
            for r in stats.shards or []
        ]
        return format_table(
            [
                "shard",
                "range",
                "policy",
                "entries",
                "buf",
                "tombs",
                "flushes",
                "compactions",
                "pending",
                "oldest-age",
                "violations",
                "D_th ok",
            ],
            rows,
            title=f"[{self.name}] {len(rows)} shards @ tick {self.engine.clock.now()}",
        )

    def persistence_table(self) -> str:
        """The shard-global (merged-ledger) persistence dashboard."""
        stats = self.engine.persistence_stats()
        rows = [
            ["registered", stats.registered],
            ["persisted", stats.persisted],
            ["superseded", stats.superseded],
            ["pending (exposure)", stats.pending],
            ["max latency", stats.max_latency],
            ["p50 latency", stats.p50_latency],
            ["p99 latency", stats.p99_latency],
            ["threshold D_th", stats.threshold],
            ["violations", stats.violations],
            ["oldest pending age", stats.oldest_pending_age],
            ["compliant", "yes" if stats.compliant() else "NO"],
        ]
        fences = self.engine.fence_stats()
        rows += [
            ["range fences live", fences["live"]],
            [
                "oldest fence age (vs D_th)",
                "-"
                if fences["oldest_age"] is None
                else f"{fences['oldest_age']} / {fences['threshold']}",
            ],
            ["fence entries resolved", fences["entries_resolved_by_compaction"]],
        ]
        return format_table(
            ["delete lifecycle (all shards)", "value"],
            rows,
            title=f"[{self.name}] shard-global persistence",
        )

    def attack_surface_table(self) -> str:
        """Shard-global adversarial posture, including auto-split.

        Aggregates the per-tree defenses over every shard and adds the
        shard layer's own counter-measure: the hot-shard auto-split
        controller and the split/refusal events it has fired.
        """
        trees = [shard.tree for shard in self.engine.shards]
        caches = [t.cache.stats() for t in trees]
        salts = {t.bloom_salt for t in trees if t.bloom_salt is not None}
        all_salted = all(t.bloom_salt is not None for t in trees)
        events = self.engine.auto_split_events
        splits = sum(1 for e in events if e["event"] == "split")
        armed = getattr(self.engine, "_autosplit", None) is not None
        rows = [
            [
                "bloom salting",
                f"armed ({len(salts)} key(s))" if all_salted else "OFF",
            ],
            [
                "cache admission hardening",
                "armed" if all(c["hardened"] for c in caches) else "OFF",
            ],
            [
                "doorkeeper rejections",
                sum(c["doorkeeper_rejections"] for c in caches),
            ],
            [
                "negative-lookup drops",
                sum(c["negative_guard_drops"] for c in caches),
            ],
            ["hot-shard auto-split", "armed" if armed else "OFF"],
            ["auto-splits fired", splits],
            ["auto-split refusals", len(events) - splits],
        ]
        return format_table(
            ["defense (all shards)", "value"],
            rows,
            title=f"[{self.name}] attack surface",
        )

    def memory_table(self) -> str:
        """Per-shard memory budgets plus the governor's activity counters.

        One row per shard with its live write-buffer soft limit and fill,
        block-cache allocation and residency, hit rate, and how many
        times its cache has been live-resized.  When the adaptive memory
        governor is armed a second table summarizes its decisions; when
        off, the budgets shown are simply the static config constants.
        """
        engine = self.engine
        governor = getattr(engine, "_governor", None)
        rows = []
        for i, shard in enumerate(engine.shards):
            tree = shard.tree
            cache = tree.cache
            rows.append(
                [
                    i,
                    tree.memtable_budget,
                    len(tree.memtable),
                    cache.capacity,
                    len(cache),
                    f"{cache.hit_rate:.2%}",
                    cache.resizes,
                ]
            )
        mode = "armed" if governor is not None else "OFF (static config budgets)"
        table = format_table(
            ["shard", "buf-budget", "buf-fill", "cache-pages", "cached",
             "hit-rate", "resizes"],
            rows,
            title=f"[{self.name}] memory budgets -- governor {mode}",
        )
        if governor is None:
            return table
        summary = governor.summary()
        budget = summary.get("budget", {})
        activity = format_table(
            ["memory governor", "value"],
            [
                ["windows evaluated", summary["windows_evaluated"]],
                ["decisions applied", summary["decisions"]],
                ["cache resizes", summary["cache_resizes"]],
                ["buffer resizes", summary["memtable_resizes"]],
                ["write/read pool shifts", summary["pool_shifts"]],
                [
                    "units used / total",
                    f"{budget.get('used_units', 0)} / "
                    f"{budget.get('total_units', 0)}",
                ],
            ],
            title=f"[{self.name}] governor activity",
        )
        return f"{table}\n\n{activity}"

    def policy_table(self) -> str:
        """Per-shard compaction policies plus the tuner's activity.

        One row per shard with its current policy and live-switch count;
        when the policy tuner is armed a second table summarizes the
        windows it evaluated and the most recent switch decisions it
        made (with the modeled per-policy costs that drove them).  When
        off, the policies shown are the static config / override values.
        """
        engine = self.engine
        tuner = getattr(engine, "_tuner", None)
        rows = [
            [i, shard.tree.config.policy.value, shard.tree.policy_switches]
            for i, shard in enumerate(engine.shards)
        ]
        mode = "armed" if tuner is not None else "OFF (static policies)"
        table = format_table(
            ["shard", "policy", "switches"],
            rows,
            title=f"[{self.name}] compaction policies -- tuner {mode}",
        )
        if tuner is None:
            return table
        summary = tuner.summary()
        recent = [
            [
                e["window"],
                e["shard"],
                f"{e['from']}->{e['to']}",
                e["window_ops"],
            ]
            for e in summary["events"]
            if e.get("event") == "switch"
        ]
        activity = format_table(
            ["window", "shard", "switch", "ops"],
            recent,
            title=(
                f"[{self.name}] tuner activity -- "
                f"{summary['windows_evaluated']} windows, "
                f"{summary['switches']} switches"
            ),
        )
        return f"{table}\n\n{activity}"

    def server_table(self) -> str:
        """The served-engine admission table (see
        :func:`repro.metrics.server.format_server_load`)."""
        return _format_server(self.server, self.name)

    def dashboard(self, per_shard: bool = False) -> str:
        """The shard overview; ``per_shard`` appends every shard's full
        single-tree dashboard."""
        sections = [self.shards_table(), self.persistence_table(), self.attack_surface_table()]
        if getattr(self.engine, "_governor", None) is not None:
            sections.append(self.memory_table())
        if getattr(self.engine, "_tuner", None) is not None:
            sections.append(self.policy_table())
        if self.server is not None:
            sections.append(self.server_table())
        if per_shard:
            for index, shard in enumerate(self.engine.shards):
                sections.append(
                    TreeInspector(shard, name=f"{self.name}/shard-{index}").dashboard()
                )
        return "\n\n".join(sections)
