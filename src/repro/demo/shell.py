"""An interactive shell over one engine: the demo's hands-on mode.

The SIGMOD demonstration let the audience poke the engine directly; this
is that experience at a prompt::

    acheron> put user:1 alice
    acheron> del user:1
    acheron> persistence
    acheron> levels
    acheron> purge-older-than 500
    acheron> quit

Driven by any line iterator, so it is fully testable (and scriptable:
``python -m repro.cli shell < script.txt``).
"""

from __future__ import annotations

from typing import Callable, Iterable, TextIO

from repro.core.engine import AcheronEngine
from repro.demo.inspector import TreeInspector

_HELP = """\
commands:
  put <key> <value>        insert/update (int keys are auto-detected)
  get <key>                point lookup
  del <key>                point delete (tracked tombstone)
  scan <lo> <hi> [limit]   range scan
  purge-older-than <tick> [eager|lazy|auto]
                           secondary range delete on insertion time
                           (lazy: O(1) range-tombstone fence)
  flush                    force the memtable to disk
  compact                  full tree compaction
  wait <ticks>             advance simulated time (lets deadlines fire)
  levels | persistence | io | history | stats   dashboards
  help                     this text
  quit / exit              leave the shell"""


def _parse_key(token: str):
    try:
        return int(token)
    except ValueError:
        return token


class DemoShell:
    """Executes shell commands against one engine."""

    def __init__(self, engine: AcheronEngine, name: str = "acheron") -> None:
        self.engine = engine
        self.inspector = TreeInspector(engine, name=name)
        self.name = name
        self._commands: dict[str, Callable[[list[str]], str]] = {
            "put": self._cmd_put,
            "get": self._cmd_get,
            "del": self._cmd_del,
            "scan": self._cmd_scan,
            "purge-older-than": self._cmd_purge,
            "flush": self._cmd_flush,
            "compact": self._cmd_compact,
            "wait": self._cmd_wait,
            "levels": lambda args: self.inspector.levels_table(),
            "persistence": lambda args: self.inspector.persistence_table(),
            "io": lambda args: self.inspector.io_table(),
            "history": lambda args: self.inspector.compaction_history(),
            "stats": lambda args: self.inspector.dashboard(),
            "help": lambda args: _HELP,
        }

    # ------------------------------------------------------------------
    # command handlers
    # ------------------------------------------------------------------
    def _cmd_put(self, args: list[str]) -> str:
        if len(args) < 2:
            return "usage: put <key> <value>"
        key = _parse_key(args[0])
        self.engine.put(key, " ".join(args[1:]))
        return f"ok (tick {self.engine.clock.now()})"

    def _cmd_get(self, args: list[str]) -> str:
        if len(args) != 1:
            return "usage: get <key>"
        sentinel = object()
        value = self.engine.get(_parse_key(args[0]), default=sentinel)
        return "(not found)" if value is sentinel else repr(value)

    def _cmd_del(self, args: list[str]) -> str:
        if len(args) != 1:
            return "usage: del <key>"
        self.engine.delete(_parse_key(args[0]))
        threshold = self.engine.config.delete_persistence_threshold
        if threshold is not None:
            return f"tombstone registered; persists within D_th={threshold}"
        return "tombstone registered (no persistence guarantee on this engine)"

    def _cmd_scan(self, args: list[str]) -> str:
        if len(args) not in (2, 3):
            return "usage: scan <lo> <hi> [limit]"
        limit = int(args[2]) if len(args) == 3 else 20
        rows = list(
            self.engine.scan(_parse_key(args[0]), _parse_key(args[1]), limit=limit)
        )
        if not rows:
            return "(empty)"
        return "\n".join(f"  {k!r} -> {v!r}" for k, v in rows)

    def _cmd_purge(self, args: list[str]) -> str:
        if len(args) not in (1, 2):
            return "usage: purge-older-than <tick> [eager|lazy|auto]"
        method = args[1] if len(args) == 2 else "auto"
        if method not in ("eager", "lazy", "auto"):
            return "usage: purge-older-than <tick> [eager|lazy|auto]"
        report = self.engine.delete_range(0, int(args[0]), method=method)
        return report.summary()

    def _cmd_flush(self, args: list[str]) -> str:
        self.engine.flush()
        return "flushed"

    def _cmd_compact(self, args: list[str]) -> str:
        self.engine.compact_all()
        return "full compaction done"

    def _cmd_wait(self, args: list[str]) -> str:
        if len(args) != 1:
            return "usage: wait <ticks>"
        self.engine.advance_time(int(args[0]))
        return f"now at tick {self.engine.clock.now()}"

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def execute(self, line: str) -> tuple[str, bool]:
        """Run one command line; returns (output, should_continue)."""
        tokens = line.strip().split()
        if not tokens:
            return "", True
        command, args = tokens[0].lower(), tokens[1:]
        if command in ("quit", "exit"):
            return "bye", False
        handler = self._commands.get(command)
        if handler is None:
            return f"unknown command {command!r} (try 'help')", True
        try:
            return handler(args), True
        except Exception as exc:  # surface, don't kill the shell
            return f"error: {exc}", True

    def run(self, lines: Iterable[str], out: TextIO) -> None:
        """Drive the shell from an iterator of command lines."""
        print(f"{self.name} shell -- 'help' for commands", file=out)
        for line in lines:
            output, keep_going = self.execute(line)
            if output:
                print(output, file=out)
            if not keep_going:
                return
        print("bye", file=out)
