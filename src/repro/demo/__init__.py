"""The demonstration layer.

Acheron is a SIGMOD demo: its on-stage artifact is an interactive view of
tombstones sinking through an LSM-tree under different configurations.
This package reproduces that experience as text dashboards:

* :class:`~repro.demo.inspector.TreeInspector` renders the per-level
  table (runs, entries, tombstone density, oldest tombstone age vs the
  FADE deadline) plus persistence and I/O dashboards;
* :mod:`repro.demo.scenarios` scripts the demo's walkthrough: the same
  workload against the baseline and Acheron side by side.
"""

from repro.demo.inspector import TreeInspector
from repro.demo.shell import DemoShell
from repro.demo.scenarios import DemoScenario, run_side_by_side

__all__ = ["DemoScenario", "DemoShell", "TreeInspector", "run_side_by_side"]
