"""Scripted demo scenarios: the walkthrough the SIGMOD audience saw.

A :class:`DemoScenario` runs one seeded workload against any number of
engine configurations, pausing at checkpoints to capture the inspector
dashboards.  :func:`run_side_by_side` is the canonical comparison --
baseline vs Acheron on the same stream -- used by the
``examples/demo_walkthrough.py`` script.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import AcheronEngine
from repro.demo.inspector import TreeInspector
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import WorkloadResult, run_workload
from repro.workload.spec import WorkloadSpec

EngineFactory = Callable[[], AcheronEngine]


@dataclass
class ScenarioCapture:
    """Dashboards captured at one checkpoint for one engine."""

    checkpoint: str
    engine_name: str
    dashboard: str


@dataclass
class DemoScenario:
    """One seeded workload, replayed identically against several engines."""

    spec: WorkloadSpec
    engines: dict[str, EngineFactory]
    checkpoints: int = 2
    captures: list[ScenarioCapture] = field(default_factory=list)
    results: dict[str, WorkloadResult] = field(default_factory=dict)

    def run(self) -> "DemoScenario":
        """Execute the scenario; captures and results are filled in."""
        # Materialize once so every engine sees the identical stream.
        operations = list(WorkloadGenerator(self.spec).operations())
        chunk = max(1, len(operations) // max(1, self.checkpoints))
        for name, factory in self.engines.items():
            engine = factory()
            inspector = TreeInspector(engine, name=name)
            total = WorkloadResult()
            for start in range(0, len(operations), chunk):
                part = run_workload(
                    engine,
                    operations[start : start + chunk],
                    secondary_delete_window=self.spec.secondary_delete_window,
                )
                _merge_results(total, part)
                self.captures.append(
                    ScenarioCapture(
                        checkpoint=f"after {min(start + chunk, len(operations))} ops",
                        engine_name=name,
                        dashboard=inspector.dashboard(),
                    )
                )
            self.results[name] = total
            engine.close()
        return self

    def render(self) -> str:
        """All captures, in execution order."""
        blocks = []
        for capture in self.captures:
            header = f"=== {capture.engine_name} :: {capture.checkpoint} ==="
            blocks.append(f"{header}\n{capture.dashboard}")
        return "\n\n".join(blocks)


def _merge_results(total: WorkloadResult, part: WorkloadResult) -> None:
    total.operations += part.operations
    total.wall_seconds += part.wall_seconds
    for kind, stats in part.per_kind.items():
        agg = total.kind(kind)
        agg.count += stats.count
        agg.pages_read += stats.pages_read
        agg.pages_written += stats.pages_written
        agg.modeled_us += stats.modeled_us
        agg.results_returned += stats.results_returned


def run_side_by_side(
    spec: WorkloadSpec,
    delete_persistence_threshold: int = 20_000,
    **config_overrides: object,
) -> DemoScenario:
    """The canonical demo: baseline vs Acheron on one stream."""
    scenario = DemoScenario(
        spec=spec,
        engines={
            "baseline": lambda: AcheronEngine.baseline(**config_overrides),
            "acheron": lambda: AcheronEngine.acheron(
                delete_persistence_threshold=delete_persistence_threshold,
                **config_overrides,
            ),
        },
    )
    return scenario.run()
