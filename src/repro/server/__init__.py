"""The served engine: wire protocol, master/executor server, client.

``repro.server`` turns the embedded engine into a network service:

* :mod:`repro.server.protocol` -- the length-prefixed binary frame
  format and its partial-frame-safe decoder;
* :mod:`repro.server.core` -- :class:`EngineServer`, the master
  accept-and-route loop over shard-affine executor workers, with
  admission control at the door;
* :mod:`repro.server.client` -- :class:`EngineClient`, the pooled,
  pipelining client mirroring the embedded data-plane API.
"""

from repro.server.client import (
    CallResult,
    ClientConnection,
    ConnectionLost,
    EngineClient,
    RangeDeleteSummary,
    ServerError,
)
from repro.server.core import (
    AdmissionConfig,
    EngineServer,
    ServerConfig,
    wait_until_listening,
)
from repro.server.protocol import (
    ErrCode,
    Frame,
    FrameDecoder,
    Op,
    PROTOCOL_VERSION,
    ProtocolError,
    Resp,
    decode_value,
    encode_frame,
    encode_value,
    error_payload,
)

__all__ = [
    "AdmissionConfig",
    "CallResult",
    "ClientConnection",
    "ConnectionLost",
    "EngineClient",
    "EngineServer",
    "ErrCode",
    "Frame",
    "FrameDecoder",
    "Op",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RangeDeleteSummary",
    "Resp",
    "ServerConfig",
    "ServerError",
    "decode_value",
    "encode_frame",
    "encode_value",
    "error_payload",
    "wait_until_listening",
]
