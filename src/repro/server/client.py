"""Client library for the served engine.

:class:`EngineClient` mirrors the embedded engine's data-plane API
(``put``/``get``/``delete``/``scan``/``delete_range``/``apply_batch``/
``stats``) over the wire, plus the piece an embedded engine does not
need: :meth:`EngineClient.pipeline`, which keeps a window of requests in
flight on one connection and is what makes a served replay competitive
with an embedded one despite the socket hop.

Retry semantics (all transparent to callers, all bounded):

* **Shed requests** (``RETRY_AFTER`` admission responses and the
  ``PIPELINE_ABORT`` suffix that follows one) are resubmitted *in
  submission order* after the server-suggested back-off, under a bumped
  pipeline generation.  The server sheds before executing and aborts the
  whole same-generation suffix, so the shed set is always a clean suffix
  of the submission order and the resubmission preserves per-key order
  -- a served replay stays digest-equivalent to an embedded one even
  when admission control engages.
* **Broken connections** reconnect and resubmit every unanswered request
  in order.  A write the server executed but whose response was lost may
  apply twice; ``put``/``delete``/``delete_range`` are contents-
  idempotent, so stored contents are unaffected (the tree may carry an
  extra superseded version until compaction, like any re-put).
* **Hard errors** (``BAD_REQUEST``, ``ENGINE_ERROR``) raise
  :class:`ServerError` -- they are deterministic rejections, never
  retried.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import AcheronError
from repro.server.protocol import (
    ErrCode,
    Frame,
    FrameDecoder,
    Op,
    ProtocolError,
    Resp,
    encode_frame,
)


class ServerError(AcheronError):
    """A structured error frame from the server."""

    def __init__(self, code: str, message: str, retry_after_ms: float | None = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.server_message = message
        self.retry_after_ms = retry_after_ms

    @property
    def is_shed(self) -> bool:
        return self.code in (ErrCode.RETRY_AFTER, ErrCode.PIPELINE_ABORT)


class ConnectionLost(AcheronError):
    """The TCP stream died (or timed out) mid-conversation."""


@dataclass(frozen=True)
class CallResult:
    """One completed request: its result plus both latency currencies."""

    result: Any
    #: Modeled device microseconds the server charged this request.
    cost_us: float
    #: Wall-clock microseconds from submission to response at the client.
    wall_us: float


@dataclass(frozen=True)
class RangeDeleteSummary:
    """Wire-shaped summary of a served secondary range delete."""

    method: str
    entries_deleted: int
    memtable_entries_deleted: int
    files_modified: int
    pages_dropped: int
    pages_rewritten: int


def _parse_address(address: str) -> tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise AcheronError(
            f"server address must be HOST:PORT, got {address!r}"
        )
    return host or "127.0.0.1", int(port)


class ClientConnection:
    """One TCP connection: framing, request ids, pipeline generations.

    Not thread-safe -- one thread drives one connection (acquire one per
    thread from the :class:`EngineClient` pool).
    """

    def __init__(
        self,
        address: str,
        timeout: float = 30.0,
        max_reconnects: int = 3,
        max_shed_retries: int = 64,
    ) -> None:
        self.address = address
        self.timeout = timeout
        self.max_reconnects = max_reconnects
        self.max_shed_retries = max_shed_retries
        self._host, self._port = _parse_address(address)
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder()
        self._next_request_id = 1
        self._generation = 0
        #: Retry observability, folded into EngineClient.retry_report().
        self.sheds_seen = 0
        self.reconnects = 0

    # -- raw transport --------------------------------------------------
    def connect(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self.timeout
            )
        except OSError as exc:
            raise ConnectionLost(f"connect to {self.address} failed: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._decoder = FrameDecoder()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _drop(self) -> None:
        self.close()
        self._decoder = FrameDecoder()

    def _send(self, data: bytes) -> None:
        assert self._sock is not None
        try:
            self._sock.sendall(data)
        except OSError as exc:
            self._drop()
            raise ConnectionLost(f"send to {self.address} failed: {exc}") from exc

    def _recv_frame(self) -> Frame:
        assert self._sock is not None
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                return frame
            try:
                data = self._sock.recv(65536)
            except socket.timeout as exc:
                self._drop()
                raise ConnectionLost(
                    f"no response from {self.address} within {self.timeout}s"
                ) from exc
            except OSError as exc:
                self._drop()
                raise ConnectionLost(f"recv from {self.address} failed: {exc}") from exc
            if not data:
                self._drop()
                raise ConnectionLost(f"{self.address} closed the connection")
            try:
                self._decoder.feed(data)
            except ProtocolError as exc:
                self._drop()
                raise ConnectionLost(
                    f"protocol error from {self.address}: {exc}"
                ) from exc

    # -- pipelined submission -------------------------------------------
    def pipeline(
        self,
        requests: list[tuple[int, Any]],
        window: int = 64,
    ) -> list[CallResult]:
        """Submit ``(opcode, payload)`` requests keeping up to ``window``
        in flight; return one :class:`CallResult` per request, in
        submission order.  Handles shed suffixes, back-off, and
        reconnects internally; raises :class:`ServerError` on the first
        hard error (after draining what was in flight) and
        :class:`ConnectionLost` when reconnect attempts are exhausted.
        """
        results: list[CallResult | None] = [None] * len(requests)
        todo = list(range(len(requests)))  # indices still unanswered, in order
        reconnects_left = self.max_reconnects
        stuck_rounds = 0  # consecutive rounds shed without any progress
        while todo:
            before = len(todo)
            try:
                self.connect()
                shed = self._pipeline_round(requests, results, todo, window)
            except ConnectionLost:
                self.reconnects += 1
                reconnects_left -= 1
                if reconnects_left < 0:
                    raise
                time.sleep(0.05)
                # Unanswered requests (tracked in todo) resubmit in order
                # over a fresh connection; see the module docstring for
                # why the duplicate-write window is contents-safe.
                continue
            todo = [i for i in todo if results[i] is None]
            if shed:
                self.sheds_seen += len(shed)
                stuck_rounds = 0 if len(todo) < before else stuck_rounds + 1
                if stuck_rounds > self.max_shed_retries:
                    raise ServerError(
                        ErrCode.RETRY_AFTER,
                        f"server shed every request for {stuck_rounds - 1} "
                        f"consecutive retry rounds",
                    )
                backoff_ms = max(s.retry_after_ms or 0.0 for s in shed.values())
                time.sleep(backoff_ms / 1000.0 if backoff_ms else 0.01)
                self._generation = (self._generation + 1) & 0xFFFF
        return results  # type: ignore[return-value]

    def _pipeline_round(
        self,
        requests: list[tuple[int, Any]],
        results: list[CallResult | None],
        todo: list[int],
        window: int,
    ) -> dict[int, ServerError]:
        """One send/recv pass over ``todo``; fills ``results`` for OK
        responses, returns ``{index: shed}`` for shed ones, raises the
        first hard error after the window drains."""
        pending: dict[int, int] = {}  # request_id -> index into requests
        sent_at: dict[int, float] = {}
        shed: dict[int, ServerError] = {}
        hard: ServerError | None = None
        cursor = 0
        while cursor < len(todo) or pending:
            # Once anything sheds, every later same-generation request is
            # dead on arrival (the server's pipeline-abort rule), so stop
            # feeding the doomed suffix and just drain what's in flight.
            while not shed and cursor < len(todo) and len(pending) < window:
                index = todo[cursor]
                cursor += 1
                rid = self._next_request_id
                self._next_request_id = (self._next_request_id % 0xFFFFFFFF) + 1
                kind, payload = requests[index]
                pending[rid] = index
                sent_at[rid] = time.perf_counter()
                self._send(encode_frame(kind, rid, payload, self._generation))
            if not pending:  # shed with the unsent suffix still in todo
                break
            frame = self._recv_frame()
            index = pending.pop(frame.request_id, None)
            if index is None:
                continue  # stale response from a pre-reconnect life
            wall_us = (time.perf_counter() - sent_at.pop(frame.request_id)) * 1e6
            if frame.kind == Resp.OK:
                result, cost_us = frame.payload
                results[index] = CallResult(result, float(cost_us), wall_us)
            else:
                err = _decode_error(frame)
                if err.is_shed:
                    shed[index] = err
                else:
                    hard = hard or err
        if hard is not None:
            raise hard
        return shed

    def call(self, kind: int, payload: Any) -> CallResult:
        """One request, one response (still shed/reconnect-safe)."""
        return self.pipeline([(kind, payload)], window=1)[0]


def _decode_error(frame: Frame) -> ServerError:
    payload = frame.payload
    if isinstance(payload, dict):
        return ServerError(
            str(payload.get("code", "unknown")),
            str(payload.get("message", "")),
            payload.get("retry_after_ms"),
        )
    return ServerError("unknown", repr(payload))


class EngineClient:
    """Pooled client for a served engine, mirroring the embedded API.

    ``pool_size`` bounds concurrent connections; threads borrow one with
    :meth:`connection` (or implicitly through the convenience methods).

    Usage::

        with EngineClient("127.0.0.1:7021") as client:
            client.put(1, "a")
            assert client.get(1) == "a"
            results = client.pipeline([(Op.PUT, (k, v, None)) for k, v in rows])
    """

    def __init__(
        self,
        address: str,
        pool_size: int = 4,
        timeout: float = 30.0,
        window: int = 64,
    ) -> None:
        if pool_size < 1:
            raise AcheronError(f"pool_size must be >= 1, got {pool_size}")
        self.address = address
        self.pool_size = pool_size
        self.timeout = timeout
        self.window = window
        self._idle: list[ClientConnection] = []
        self._created = 0
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    # -- pool -----------------------------------------------------------
    def acquire(self) -> ClientConnection:
        with self._available:
            while True:
                if self._closed:
                    raise AcheronError("client is closed")
                if self._idle:
                    return self._idle.pop()
                if self._created < self.pool_size:
                    self._created += 1
                    return ClientConnection(self.address, timeout=self.timeout)
                self._available.wait()

    def release(self, conn: ClientConnection) -> None:
        with self._available:
            if self._closed:
                conn.close()
                self._created -= 1
            else:
                self._idle.append(conn)
            self._available.notify()

    class _Borrowed:
        def __init__(self, client: "EngineClient") -> None:
            self._client = client
            self._conn: ClientConnection | None = None

        def __enter__(self) -> ClientConnection:
            self._conn = self._client.acquire()
            return self._conn

        def __exit__(self, *exc_info: object) -> None:
            assert self._conn is not None
            self._client.release(self._conn)

    def connection(self) -> "_Borrowed":
        """Borrow a connection for the duration of a ``with`` block."""
        return EngineClient._Borrowed(self)

    def close(self) -> None:
        with self._available:
            self._closed = True
            conns = self._idle
            self._idle = []
            self._available.notify_all()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "EngineClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- engine-shaped data plane ---------------------------------------
    def put(self, key: Any, value: Any, delete_key: int | None = None) -> None:
        with self.connection() as conn:
            conn.call(Op.PUT, (key, value, delete_key))

    def get(self, key: Any, default: Any = None) -> Any:
        with self.connection() as conn:
            found, value = conn.call(Op.GET, (key,)).result
        return value if found else default

    def contains(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, default=sentinel) is not sentinel

    def delete(self, key: Any) -> None:
        with self.connection() as conn:
            conn.call(Op.DELETE, (key,))

    def scan(
        self,
        lo: Any,
        hi: Any,
        limit: int | None = None,
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        with self.connection() as conn:
            rows = conn.call(Op.SCAN, (lo, hi, limit, bool(reverse))).result
        return iter(rows)

    def delete_range(
        self, lo: int, hi: int, method: str = "auto"
    ) -> RangeDeleteSummary:
        with self.connection() as conn:
            summary = conn.call(Op.DELETE_RANGE, (lo, hi, method)).result
        return RangeDeleteSummary(**summary)

    def apply_batch(self, ops: Iterable[tuple]) -> int:
        with self.connection() as conn:
            return conn.call(Op.BATCH, [tuple(op) for op in ops]).result

    def put_many(self, pairs: Iterable[tuple[Any, Any]]) -> int:
        return self.apply_batch(("put", k, v) for k, v in pairs)

    def stats(self) -> dict:
        """The served engine's stats dict, ``server`` section included."""
        with self.connection() as conn:
            return conn.call(Op.STATS, None).result

    def ping(self) -> dict:
        """Server info: protocol version, topology, engine clock tick."""
        with self.connection() as conn:
            return conn.call(Op.PING, None).result

    def pipeline(
        self, requests: list[tuple[int, Any]], window: int | None = None
    ) -> list[CallResult]:
        """Pipelined submission on one pooled connection."""
        with self.connection() as conn:
            return conn.pipeline(requests, window=window or self.window)

    def retry_report(self) -> dict:
        """Sheds observed and reconnects performed across the pool (the
        client-side mirror of the server's admission counters)."""
        with self._lock:
            conns = list(self._idle)
        return {
            "sheds_seen": sum(c.sheds_seen for c in conns),
            "reconnects": sum(c.reconnects for c in conns),
            "pooled_connections": len(conns),
        }
