"""The served engine: a master/executor socket server over the shards.

Process model (one Python process, thread-per-role -- the same threading
discipline the PR 4 write path and the PR 5 shard-affine workload pool
established):

* an **accept thread** owns the listening socket and spawns one reader
  thread per connection;
* **reader threads** parse frames off their socket
  (:class:`~repro.server.protocol.FrameDecoder`) and push them onto one
  intake queue -- they never touch the engine;
* the **master route loop** (the only consumer of the intake queue)
  validates each request, runs admission control, and routes it: shard-
  affine requests go to the executor worker *owning* that shard, multi-
  shard batches are scattered per shard, and global operations
  (cross-shard scans, secondary-delete fan-outs, stats) run on the master
  itself behind an executor barrier;
* **executor workers** each own a fixed subset of shards
  (``shard i -> worker i % W``, via
  :meth:`~repro.shard.partition.PartitionMap` routing) and execute
  requests against those shard trees directly -- **no cross-worker
  locking on the data path**: a shard's tree is only ever driven by its
  one worker (or by the master while every worker is provably idle),
  which is exactly the invariant the sharded engine's own multi-writer
  replay relies on.

Requests from one connection execute in arrival order (reader -> FIFO
intake -> FIFO worker queue, and one key always maps to one worker), so a
pipelined connection behaves like a serial client at each key -- the
property that makes served replays digest-equivalent to embedded ones.

**Admission control** (see :class:`AdmissionConfig`) sheds load with
structured ``RETRY_AFTER`` errors instead of queueing without bound:

* a per-connection in-flight cap (pipelining depth);
* per-worker queue-depth caps, tightened 4x for a shard the hot-shard
  detector has flagged (the PR 7 ``hot_shard_storm`` signal: one shard's
  share of routed writes within a sliding window);
* the PR 4 backpressure counters: each shard's background flush-queue
  depth is sampled on a cadence and writes to a shard at or past its
  stall threshold are shed at the door rather than stalling an executor.

A shed request *aborts the pipeline suffix*: every later in-flight
request of the same generation on that connection is shed too
(``PIPELINE_ABORT``), so the client can resubmit the suffix in order and
no acknowledged write is ever lost or reordered.  Writes are acknowledged
only after the shard tree applied them.

The server serves both a :class:`~repro.shard.engine.ShardedEngine` and a
bare single-tree :class:`~repro.core.engine.AcheronEngine` (one shard,
one executor).  Self-tuning controllers (auto-split, memory governor,
policy tuner) stay idle in served mode: they are router-thread machinery,
and the served data path deliberately bypasses the router's notebooks --
arm them on the embedded engine before serving if their layouts are
wanted.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.engine import AcheronEngine
from repro.errors import AcheronError, ConfigError
from repro.server.protocol import (
    ErrCode,
    Frame,
    FrameDecoder,
    Op,
    PROTOCOL_VERSION,
    ProtocolError,
    Resp,
    encode_frame,
    error_payload,
)
from repro.shard.partition import PartitionMap

_SECONDARY_METHODS = ("auto", "kiwi", "full_rewrite", "eager", "lazy")


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control thresholds (defaults sized for the test scales).

    ``max_inflight_per_conn``
        Pipelining depth one connection may have in flight (accepted but
        unanswered).  Beyond it, requests shed with ``RETRY_AFTER``.
    ``max_queue_depth``
        Cap on one executor worker's pending queue.  Writes routed at a
        worker past the cap shed; a shard flagged *hot* gets the cap
        divided by ``hot_tighten`` so a storm sheds before it monopolizes
        the worker.
    ``backpressure_depth``
        The PR 4 signal: when a shard tree's background flush queue is at
        or past this depth (sampled every ``sample_every`` routed
        writes), writes to that shard shed at the door instead of
        stalling an executor thread in the tree's own backpressure.
    ``hot_window_ops`` / ``hot_share``
        The PR 7 signal: a shard receiving at least ``hot_share`` of the
        routed writes within a ``hot_window_ops`` window (and more than
        one shard exists) is flagged hot until a window ends without it.
    ``retry_after_ms``
        Suggested client back-off carried in every shed response.
    """

    max_inflight_per_conn: int = 128
    max_queue_depth: int = 512
    hot_tighten: int = 4
    backpressure_depth: int = 6
    hot_window_ops: int = 1024
    hot_share: float = 0.5
    retry_after_ms: float = 25.0
    sample_every: int = 256


@dataclass(frozen=True)
class ServerConfig:
    """Socket/topology knobs for :class:`EngineServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port from .port
    #: Executor workers; None = one per shard (capped at 8).
    workers: int | None = None
    backlog: int = 64
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)


# ---------------------------------------------------------------------------
# per-connection state
# ---------------------------------------------------------------------------
class _Connection:
    """One accepted client connection (socket + pipeline bookkeeping)."""

    __slots__ = (
        "sock",
        "peer",
        "conn_id",
        "send_lock",
        "state_lock",
        "inflight",
        "shed_generation",
        "alive",
    )

    def __init__(self, sock: socket.socket, peer: str, conn_id: int) -> None:
        self.sock = sock
        self.peer = peer
        self.conn_id = conn_id
        self.send_lock = threading.Lock()
        self.state_lock = threading.Lock()
        self.inflight = 0
        #: Generation currently being shed (pipeline abort), or None.
        self.shed_generation: int | None = None
        self.alive = True

    def send_frame(self, data: bytes) -> bool:
        """Best-effort framed send; False (and dead) on any socket error."""
        with self.send_lock:
            if not self.alive:
                return False
            try:
                self.sock.sendall(data)
                return True
            except OSError:
                self.alive = False
                return False

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _BadRequest(Exception):
    """Internal: request payload failed validation (message for client)."""


#: Executor queue sentinel.
_STOP = object()


@dataclass
class _Job:
    """One unit of executor work: a request bound to one shard."""

    conn: _Connection
    frame: Frame
    shard: int
    #: For scattered batches: the shard's slice of the ops, plus the
    #: shared scatter state that aggregates the response.
    ops: list | None = None
    scatter: "_Scatter | None" = None


class _Scatter:
    """Aggregates a multi-shard batch back into one response."""

    __slots__ = ("lock", "remaining", "applied", "cost_us", "failed")

    def __init__(self, parts: int) -> None:
        self.lock = threading.Lock()
        self.remaining = parts
        self.applied = 0
        self.cost_us = 0.0
        self.failed: str | None = None

    def done(self, applied: int, cost_us: float, error: str | None) -> bool:
        """Fold one part in; True when this was the last part."""
        with self.lock:
            self.applied += applied
            self.cost_us += cost_us
            if error and self.failed is None:
                self.failed = error
            self.remaining -= 1
            return self.remaining == 0


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------
class EngineServer:
    """Serve an engine to many concurrent pipelined clients.

    ``engine`` may be a :class:`ShardedEngine` (each shard pinned to an
    executor worker) or a single :class:`AcheronEngine` (one shard, one
    worker).  The server takes over the engine's data path; drive the
    engine only through clients while serving.

    Usage::

        server = EngineServer(engine, ServerConfig(port=0)).start()
        ... EngineClient(f"127.0.0.1:{server.port}") ...
        server.stop()
    """

    def __init__(self, engine: Any, config: ServerConfig | None = None) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        shards = getattr(engine, "shards", None)
        if shards is not None:
            self._shards: list[AcheronEngine] = list(shards)
            self._pmap: PartitionMap = engine.partition_map
        else:
            self._shards = [engine]
            self._pmap = PartitionMap()
        workers = self.config.workers
        if workers is None:
            workers = min(len(self._shards), 8)
        if workers < 1:
            raise ConfigError(f"server workers must be >= 1, got {workers}")
        self._workers = min(workers, len(self._shards))
        #: Fixed shard -> executor ownership (see PartitionMap.executor_map).
        self._owners = self._pmap.executor_map(self._workers)
        self._adm = self.config.admission

        self._listener: socket.socket | None = None
        self._port: int | None = None
        self._intake: "queue.Queue[tuple]" = queue.Queue(maxsize=4096)
        self._queues: list["queue.Queue[Any]"] = [
            queue.Queue() for _ in range(self._workers)
        ]
        self._idle = threading.Condition()
        #: Dispatched-but-unfinished executor jobs.  Incremented by the
        #: master *before* enqueue and decremented by executors after
        #: execution, so "pending == 0" really means every worker is
        #: idle -- there is no popped-but-not-yet-flagged window for a
        #: barrier to slip through.
        self._pending = 0
        self._threads: list[threading.Thread] = []
        self._conns: dict[int, _Connection] = {}
        self._conn_lock = threading.Lock()
        self._next_conn_id = 0
        self._stopping = threading.Event()
        self._started = False

        # --- admission-control state (master-thread-only mutation) ---
        self._counters: dict[str, int] = {
            "accepted": 0,
            "completed": 0,
            "responses_failed": 0,
            "shed_inflight": 0,
            "shed_queue": 0,
            "shed_hot_shard": 0,
            "shed_backpressure": 0,
            "pipeline_aborts": 0,
            "bad_requests": 0,
            "engine_errors": 0,
            "protocol_errors": 0,
            "connections_opened": 0,
            "connections_closed": 0,
            "barrier_ops": 0,
            "scatter_batches": 0,
            "hot_windows": 0,
        }
        self._op_counts: dict[str, int] = {}
        self._stats_lock = threading.Lock()
        #: Rolling hot-shard window (routed writes per shard).
        self._window_writes: dict[int, int] = {}
        self._window_total = 0
        self._hot_shards: set[int] = set()
        #: Sampled PR 4 flush-queue depth per shard (refreshed on cadence).
        self._bp_depths: dict[int, int] = {}
        self._since_sample = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._port is None:
            raise AcheronError("server not started")
        return self._port

    @property
    def address(self) -> str:
        return f"{self.config.host}:{self.port}"

    def start(self) -> "EngineServer":
        if self._started:
            raise AcheronError("server already started")
        self._started = True
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(self.config.backlog)
        listener.settimeout(0.2)
        self._listener = listener
        self._port = listener.getsockname()[1]
        for w in range(self._workers):
            thread = threading.Thread(
                target=self._executor_loop, args=(w,), name=f"repro-exec-{w}"
            )
            thread.daemon = True
            thread.start()
            self._threads.append(thread)
        master = threading.Thread(target=self._master_loop, name="repro-master")
        master.daemon = True
        master.start()
        self._threads.append(master)
        acceptor = threading.Thread(target=self._accept_loop, name="repro-accept")
        acceptor.daemon = True
        acceptor.start()
        self._threads.append(acceptor)
        return self

    def stop(self, close_engine: bool = False) -> None:
        """Graceful shutdown: accepted requests finish (writes stay
        acknowledged-iff-applied), queued-but-unrouted ones answer
        ``SHUTTING_DOWN``, then sockets close and threads join."""
        if not self._started or self._stopping.is_set():
            if close_engine:
                self.engine.close()
            return
        self._stopping.set()
        self._intake.put(("stop",))
        for thread in self._threads:
            thread.join(timeout=10.0)
        with self._conn_lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            conn.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if close_engine:
            self.engine.close()

    def __enter__(self) -> "EngineServer":
        return self if self._started else self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # accept + reader threads
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:  # bounded sends so a dead client can't wedge an executor
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDTIMEO,
                    struct.pack("ll", 30, 0),
                )
            except OSError:  # pragma: no cover - platform-dependent
                pass
            with self._conn_lock:
                conn_id = self._next_conn_id
                self._next_conn_id += 1
                conn = _Connection(sock, f"{addr[0]}:{addr[1]}", conn_id)
                self._conns[conn_id] = conn
            with self._stats_lock:
                self._counters["connections_opened"] += 1
            reader = threading.Thread(
                target=self._reader_loop, args=(conn,), name=f"repro-read-{conn_id}"
            )
            reader.daemon = True
            reader.start()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _reader_loop(self, conn: _Connection) -> None:
        decoder = FrameDecoder()
        sock = conn.sock
        sock.settimeout(0.2)
        while conn.alive and not self._stopping.is_set():
            try:
                data = sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:  # orderly EOF
                break
            try:
                decoder.feed(data)
                for frame in decoder.drain():
                    if frame.kind not in Op.ALL:
                        raise ProtocolError(
                            "bad_kind", f"frame kind {frame.kind:#x} is not a request"
                        )
                    self._intake.put(("frame", conn, frame))
            except ProtocolError as exc:
                # Structured goodbye, then hang up: a desynchronized
                # stream has no trustworthy resync point.
                with self._stats_lock:
                    self._counters["protocol_errors"] += 1
                conn.send_frame(
                    encode_frame(
                        Resp.ERR, 0, error_payload(ErrCode.BAD_REQUEST, str(exc))
                    )
                )
                break
        conn.close()
        self._intake.put(("closed", conn))

    # ------------------------------------------------------------------
    # master route loop
    # ------------------------------------------------------------------
    def _master_loop(self) -> None:
        while True:
            item = self._intake.get()
            tag = item[0]
            if tag == "stop":
                break
            if tag == "closed":
                conn = item[1]
                with self._conn_lock:
                    self._conns.pop(conn.conn_id, None)
                with self._stats_lock:
                    self._counters["connections_closed"] += 1
                continue
            _, conn, frame = item
            if not conn.alive:
                continue
            try:
                self._route(conn, frame)
            except _BadRequest as exc:
                with self._stats_lock:
                    self._counters["bad_requests"] += 1
                self._respond_err(conn, frame, ErrCode.BAD_REQUEST, str(exc))
        # Drain: executors finish everything already accepted (their
        # queues), so every acknowledged write was applied; anything
        # still in the intake gets a structured shutdown error.
        for q in self._queues:
            q.put(_STOP)
        while True:
            try:
                item = self._intake.get_nowait()
            except queue.Empty:
                break
            if item[0] == "frame":
                _, conn, frame = item
                self._respond_err(
                    conn, frame, ErrCode.SHUTTING_DOWN, "server is stopping"
                )

    def _route(self, conn: _Connection, frame: Frame) -> None:
        kind = frame.kind
        payload = frame.payload
        if kind == Op.PING:
            self._count_op("ping")
            self._respond_ok(conn, frame, self._server_info(), 0.0)
            return

        # --- pipeline-abort suffix: one shed response sheds the tail ---
        with conn.state_lock:
            if conn.shed_generation == frame.generation:
                shed = True
            else:
                conn.shed_generation = None
                shed = False
        if shed:
            with self._stats_lock:
                self._counters["pipeline_aborts"] += 1
            self._respond_err(
                conn,
                frame,
                ErrCode.PIPELINE_ABORT,
                "an earlier request of this pipeline generation was shed",
                retry_after_ms=self._adm.retry_after_ms,
            )
            return

        # --- per-connection in-flight cap ---
        with conn.state_lock:
            over = conn.inflight >= self._adm.max_inflight_per_conn
        if over:
            self._shed(conn, frame, "shed_inflight", "connection in-flight cap reached")
            return

        if kind in (Op.PUT, Op.GET, Op.DELETE):
            self._route_point(conn, frame)
        elif kind == Op.SCAN:
            self._route_scan(conn, frame)
        elif kind == Op.BATCH:
            self._route_batch(conn, frame)
        elif kind == Op.DELETE_RANGE:
            self._count_op("delete_range")
            self._validate_delete_range(payload)
            self._run_barrier(conn, frame)
        elif kind == Op.STATS:
            self._count_op("stats")
            self._run_barrier(conn, frame)
        else:  # pragma: no cover - decoder already validated kinds
            raise _BadRequest(f"unhandled opcode {kind:#x}")

    # -- point ops ------------------------------------------------------
    def _route_point(self, conn: _Connection, frame: Frame) -> None:
        kind = frame.kind
        payload = frame.payload
        if not isinstance(payload, tuple) or not payload:
            raise _BadRequest("point op payload must be a non-empty tuple")
        if kind == Op.PUT and len(payload) != 3:
            raise _BadRequest("PUT payload must be (key, value, delete_key)")
        if kind in (Op.GET, Op.DELETE) and len(payload) != 1:
            raise _BadRequest("GET/DELETE payload must be (key,)")
        key = payload[0]
        if key is None:
            raise _BadRequest("key must not be None")
        try:
            shard = self._pmap.shard_for(key)
        except TypeError as exc:
            raise _BadRequest(f"unroutable key {key!r}: {exc}") from None
        self._count_op(
            {Op.PUT: "put", Op.GET: "get", Op.DELETE: "delete"}[kind]
        )
        is_write = kind in Op.WRITES
        if is_write:
            self._note_write(shard)
        if not self._admit(conn, frame, shard, is_write):
            return
        self._dispatch(_Job(conn, frame, shard))

    # -- scans ----------------------------------------------------------
    def _route_scan(self, conn: _Connection, frame: Frame) -> None:
        payload = frame.payload
        if not isinstance(payload, tuple) or len(payload) != 4:
            raise _BadRequest("SCAN payload must be (lo, hi, limit, reverse)")
        lo, hi, limit, reverse = payload
        if lo is None or hi is None:
            raise _BadRequest("scan bounds must not be None")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise _BadRequest("scan limit must be None or a non-negative int")
        self._count_op("scan")
        try:
            indices = list(self._pmap.overlapping(lo, hi))
        except TypeError as exc:
            raise _BadRequest(f"unroutable scan bounds: {exc}") from None
        if len(indices) == 1:
            # Shard-local: stays on the owning worker's thread.
            if not self._admit(conn, frame, indices[0], is_write=False):
                return
            self._dispatch(_Job(conn, frame, indices[0]))
        else:
            self._run_barrier(conn, frame)

    # -- batches --------------------------------------------------------
    def _route_batch(self, conn: _Connection, frame: Frame) -> None:
        payload = frame.payload
        if not isinstance(payload, list):
            raise _BadRequest("BATCH payload must be a list of op tuples")
        groups: dict[int, list[tuple]] = {}
        for op in payload:
            if not isinstance(op, tuple) or len(op) < 2:
                raise _BadRequest("batch ops must be ('put', k, v[, dk]) or ('delete', k)")
            verb = op[0]
            if verb == "put":
                if len(op) not in (3, 4):
                    raise _BadRequest("put op must be ('put', key, value[, delete_key])")
            elif verb == "delete":
                if len(op) != 2:
                    raise _BadRequest("delete op must be ('delete', key)")
            else:
                raise _BadRequest(f"unknown batch verb {verb!r}")
            try:
                groups.setdefault(self._pmap.shard_for(op[1]), []).append(op)
            except TypeError as exc:
                raise _BadRequest(f"unroutable key {op[1]!r}: {exc}") from None
        self._count_op("batch")
        if not groups:
            self._respond_ok(conn, frame, 0, 0.0)
            return
        for shard, ops in groups.items():
            self._note_write(shard, len(ops))
        # Admission for a batch: every target shard must admit it (the
        # batch is all-or-nothing at the door, so a retried batch never
        # half-applies around the shed).
        for shard in groups:
            if not self._admit(conn, frame, shard, is_write=True):
                return
        if len(groups) == 1:
            ((shard, ops),) = groups.items()
            self._dispatch(_Job(conn, frame, shard, ops=ops))
            return
        with self._stats_lock:
            self._counters["scatter_batches"] += 1
        # One logical request: account it once, then enqueue the parts
        # (accounting per part would leak conn.inflight, which only
        # decrements when the aggregated response goes out).
        with conn.state_lock:
            conn.inflight += 1
        with self._stats_lock:
            self._counters["accepted"] += 1
        scatter = _Scatter(len(groups))
        for shard, ops in groups.items():
            self._dispatch(
                _Job(conn, frame, shard, ops=ops, scatter=scatter), account=False
            )

    # -- admission ------------------------------------------------------
    def _note_write(self, shard: int, count: int = 1) -> None:
        """Feed the PR 7 hot-shard window and the PR 4 sampling cadence."""
        self._window_writes[shard] = self._window_writes.get(shard, 0) + count
        self._window_total += count
        self._since_sample += count
        if self._since_sample >= self._adm.sample_every:
            self._since_sample = 0
            self._bp_depths = {
                i: sh.tree.write_stats().get("queue_depth", 0)
                for i, sh in enumerate(self._shards)
            }
        if self._window_total >= self._adm.hot_window_ops:
            hot: set[int] = set()
            if len(self._shards) > 1:
                for index, writes in self._window_writes.items():
                    if writes / self._window_total >= self._adm.hot_share:
                        hot.add(index)
            if hot:
                with self._stats_lock:
                    self._counters["hot_windows"] += 1
            self._hot_shards = hot
            self._window_writes.clear()
            self._window_total = 0

    def _admit(
        self, conn: _Connection, frame: Frame, shard: int, is_write: bool
    ) -> bool:
        """True to enqueue; False after responding with a shed error."""
        adm = self._adm
        depth = self._queues[self._owners[shard]].qsize()
        cap = adm.max_queue_depth
        if is_write and shard in self._hot_shards:
            cap = max(1, cap // adm.hot_tighten)
            if depth >= cap:
                self._shed(
                    conn, frame, "shed_hot_shard",
                    f"shard {shard} is hot and its executor queue is full",
                )
                return False
        if depth >= cap:
            self._shed(
                conn, frame, "shed_queue",
                f"executor queue for shard {shard} is full",
            )
            return False
        if is_write and self._bp_depths.get(shard, 0) >= adm.backpressure_depth:
            # The sampled depth says stalled -- but the sample refreshes
            # on routed-write cadence, and a client whose writes are all
            # being shed barely advances that cadence.  Re-read the live
            # depth before actually shedding, or a drained flush queue
            # stays "stalled" forever (a stale-sample livelock).
            live = self._shards[shard].tree.write_stats().get("queue_depth", 0)
            self._bp_depths[shard] = live
            if live >= adm.backpressure_depth:
                self._shed(
                    conn, frame, "shed_backpressure",
                    f"shard {shard} flush queue is at its stall threshold",
                )
                return False
        return True

    def _shed(
        self, conn: _Connection, frame: Frame, counter: str, reason: str
    ) -> None:
        with self._stats_lock:
            self._counters[counter] += 1
        with conn.state_lock:
            conn.shed_generation = frame.generation
        self._respond_err(
            conn,
            frame,
            ErrCode.RETRY_AFTER,
            reason,
            retry_after_ms=self._adm.retry_after_ms,
        )

    # -- dispatch and barriers -----------------------------------------
    def _dispatch(self, job: _Job, account: bool = True) -> None:
        if account:
            with job.conn.state_lock:
                job.conn.inflight += 1
            with self._stats_lock:
                self._counters["accepted"] += 1
        with self._idle:
            self._pending += 1
        self._queues[self._owners[job.shard]].put(job)

    def _run_barrier(self, conn: _Connection, frame: Frame) -> None:
        """Execute a global op on the master with every worker idle."""
        with self._stats_lock:
            self._counters["barrier_ops"] += 1
            self._counters["accepted"] += 1
        with conn.state_lock:
            conn.inflight += 1
        with self._idle:
            self._idle.wait_for(lambda: self._pending == 0)
            # Every dispatched job has finished and the master (the only
            # dispatcher) is right here, so nothing can reach a worker
            # until this op finishes.
            self._execute(frame, shard=None, conn=conn)

    # -- responses ------------------------------------------------------
    def _respond_ok(
        self, conn: _Connection, frame: Frame, result: Any, cost_us: float
    ) -> None:
        ok = conn.send_frame(
            encode_frame(
                Resp.OK, frame.request_id, (result, cost_us), frame.generation
            )
        )
        if not ok:
            with self._stats_lock:
                self._counters["responses_failed"] += 1

    def _respond_err(
        self,
        conn: _Connection,
        frame: Frame,
        code: str,
        message: str,
        retry_after_ms: float | None = None,
    ) -> None:
        conn.send_frame(
            encode_frame(
                Resp.ERR,
                frame.request_id,
                error_payload(code, message, retry_after_ms),
                frame.generation,
            )
        )

    def _finish(self, conn: _Connection) -> None:
        with conn.state_lock:
            conn.inflight -= 1
        with self._stats_lock:
            self._counters["completed"] += 1

    # ------------------------------------------------------------------
    # executors
    # ------------------------------------------------------------------
    def _executor_loop(self, worker: int) -> None:
        q = self._queues[worker]
        while True:
            job = q.get()
            if job is _STOP:
                break
            try:
                self._execute(job.frame, job.shard, job.conn, job)
            finally:
                with self._idle:
                    self._pending -= 1
                    self._idle.notify_all()

    def _execute(
        self,
        frame: Frame,
        shard: int | None,
        conn: _Connection,
        job: _Job | None = None,
    ) -> None:
        """Run one request against its shard (or the whole engine) and
        respond.  Writes are acknowledged only after this returns from
        the tree -- a crash before the response loses nothing acked."""
        target = self.engine if shard is None else self._shards[shard]
        disk = target.disk.stats if shard is not None else self.engine.disk.stats
        before_us = disk.modeled_us
        try:
            result = self._apply(frame, target, job)
            error = None
        except _BadRequest as exc:
            result, error = None, ("bad", str(exc))
        except AcheronError as exc:
            result, error = None, ("engine", str(exc))
        except Exception as exc:  # noqa: BLE001 - fault barrier at the rim
            result, error = None, ("engine", f"{type(exc).__name__}: {exc}")
        cost_us = disk.modeled_us - before_us

        if job is not None and job.scatter is not None:
            last = job.scatter.done(
                result if isinstance(result, int) else 0,
                cost_us,
                error[1] if error else None,
            )
            if not last:
                return
            if job.scatter.failed is not None:
                with self._stats_lock:
                    self._counters["engine_errors"] += 1
                self._respond_err(
                    conn, frame, ErrCode.ENGINE_ERROR, job.scatter.failed
                )
            else:
                self._respond_ok(conn, frame, job.scatter.applied, job.scatter.cost_us)
            self._finish(conn)
            return

        if error is not None:
            code = ErrCode.BAD_REQUEST if error[0] == "bad" else ErrCode.ENGINE_ERROR
            with self._stats_lock:
                self._counters[
                    "bad_requests" if error[0] == "bad" else "engine_errors"
                ] += 1
            self._respond_err(conn, frame, code, error[1])
        else:
            self._respond_ok(conn, frame, result, cost_us)
        self._finish(conn)

    def _apply(self, frame: Frame, target: Any, job: _Job | None) -> Any:
        kind = frame.kind
        payload = frame.payload
        if kind == Op.PUT:
            key, value, delete_key = payload
            target.put(key, value, delete_key=delete_key)
            return None
        if kind == Op.GET:
            sentinel = object()
            value = target.get(payload[0], default=sentinel)
            return (False, None) if value is sentinel else (True, value)
        if kind == Op.DELETE:
            target.delete(payload[0])
            return None
        if kind == Op.SCAN:
            lo, hi, limit, reverse = payload
            return [(k, v) for k, v in target.scan(lo, hi, limit=limit, reverse=bool(reverse))]
        if kind == Op.BATCH:
            ops = job.ops if job is not None and job.ops is not None else payload
            return target.apply_batch(ops)
        if kind == Op.DELETE_RANGE:
            lo, hi, method = payload
            report = target.delete_range(lo, hi, method=method)
            return {
                "method": report.method,
                "entries_deleted": report.entries_deleted,
                "memtable_entries_deleted": report.memtable_entries_deleted,
                "files_modified": report.files_modified,
                "pages_dropped": report.pages_dropped,
                "pages_rewritten": report.pages_rewritten,
            }
        if kind == Op.STATS:
            stats = self.engine.stats()
            payload_dict = stats.to_dict()
            payload_dict["server"] = self.server_report()
            return payload_dict
        raise _BadRequest(f"unhandled opcode {kind:#x}")  # pragma: no cover

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_delete_range(payload: Any) -> None:
        if not isinstance(payload, tuple) or len(payload) != 3:
            raise _BadRequest("DELETE_RANGE payload must be (lo, hi, method)")
        lo, hi, method = payload
        if not isinstance(lo, int) or not isinstance(hi, int):
            raise _BadRequest("delete-key bounds must be ints")
        if method not in _SECONDARY_METHODS:
            raise _BadRequest(f"unknown secondary delete method {method!r}")

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _count_op(self, name: str) -> None:
        with self._stats_lock:
            self._op_counts[name] = self._op_counts.get(name, 0) + 1

    def _server_info(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "shards": len(self._shards),
            "workers": self._workers,
            "boundaries": list(self._pmap.to_list()),
            "tick": self.engine.clock.now(),
        }

    def server_report(self) -> dict:
        """JSON-safe admission/throughput counters (the ``server`` stats
        section; see :mod:`repro.metrics.server`)."""
        with self._stats_lock:
            counters = dict(self._counters)
            ops = dict(self._op_counts)
        shed = (
            counters["shed_inflight"]
            + counters["shed_queue"]
            + counters["shed_hot_shard"]
            + counters["shed_backpressure"]
        )
        with self._conn_lock:
            open_conns = len(self._conns)
        return {
            **counters,
            "shed_total": shed,
            "ops": ops,
            "workers": self._workers,
            "shards": len(self._shards),
            "connections_open": open_conns,
            "queue_depths": [q.qsize() for q in self._queues],
            "hot_shards": sorted(self._hot_shards),
            "admission": {
                "max_inflight_per_conn": self._adm.max_inflight_per_conn,
                "max_queue_depth": self._adm.max_queue_depth,
                "backpressure_depth": self._adm.backpressure_depth,
                "hot_window_ops": self._adm.hot_window_ops,
                "hot_share": self._adm.hot_share,
                "retry_after_ms": self._adm.retry_after_ms,
            },
        }

    def stats(self):
        """The engine's :class:`EngineStats` with the ``server`` section
        attached (mirrors what the wire ``STATS`` op returns)."""
        import dataclasses

        return dataclasses.replace(self.engine.stats(), server=self.server_report())


def wait_until_listening(
    address: str, timeout: float = 10.0, interval: float = 0.05
) -> None:
    """Block until a TCP connect to ``host:port`` succeeds (readiness
    probe for tests, the CLI smoke script, and CI)."""
    host, _, port = address.rpartition(":")
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, int(port)), timeout=interval + 0.2):
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise AcheronError(f"no server listening at {address} after {timeout}s")
            time.sleep(interval)
