"""The served engine's wire protocol: versioned frames over a byte stream.

Every message between :mod:`repro.server.client` and
:mod:`repro.server.core` is one **frame** -- a length-prefixed binary
record safe to parse out of an arbitrary TCP segmentation:

.. code-block:: text

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       4     length      u32 LE: bytes after this field
    4       2     magic       0xAC7E ("Acheron, served")
    6       1     version     protocol revision (PROTOCOL_VERSION)
    7       1     kind        opcode (requests) / response code
    8       4     request_id  u32 LE, client-assigned, echoed verbatim
    12      2     generation  u16 LE pipeline generation (see below)
    14      4     crc32       zlib.crc32 of the payload bytes
    18      ...   payload     kind-specific, tag-encoded (encode_value)

``length`` covers magic..payload (``HEADER_AFTER_LENGTH + payload``), so
a reader needs exactly one 4-byte read to know the frame boundary and the
magic sits *inside* the checked region -- a stream positioned at garbage
fails loudly on the next frame, never silently resynchronizes.

**Generations** make pipelining safe under admission control.  A client
may have many requests in flight on one connection; the server executes
them in arrival order.  When admission control sheds a request it also
sheds every *later* request of the same generation on that connection
(``PIPELINE_ABORT``), so the shed set is always a clean suffix of the
pipeline.  The client bumps its generation and resubmits the suffix in
order -- per-key operation order is preserved exactly, which is what
makes a served replay digest-equivalent to an embedded one even while
shedding.

**Payload encoding** is a small tag-based scheme (:func:`encode_value` /
:func:`decode_value`) covering the engine's data plane: ``None``, bools,
ints of any width, floats, strings, bytes, lists, tuples, and
string-keyed dicts.  It is deliberately *not* pickle: nothing executable
crosses the wire, and a corrupt payload raises :class:`ProtocolError`
instead of importing arbitrary classes.

The :class:`FrameDecoder` is partial-frame safe and total: ``feed`` any
byte soup and ``next_frame`` either returns a complete :class:`Frame`,
returns ``None`` (needs more bytes), or raises a structured
:class:`ProtocolError` -- never anything else, never an infinite loop.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import AcheronError

#: Bump when the frame layout or payload schema changes incompatibly.
PROTOCOL_VERSION = 1

#: First bytes of every frame after the length prefix.
MAGIC = 0xAC7E

#: Frames larger than this are refused by decoders (both sides): a
#: length prefix beyond the cap is treated as garbage, not an allocation
#: request.  Generous for the repo's workloads (a full-store scan of the
#: perfsuite arms is far below it).
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Bytes of header covered by the length prefix (magic..crc32).
HEADER_AFTER_LENGTH = 14
#: The fixed-size frame prefix: length + covered header.
_PREFIX = struct.Struct("<IHBBIHI")
PREFIX_BYTES = _PREFIX.size  # 18


# ---------------------------------------------------------------------------
# opcodes and response codes
# ---------------------------------------------------------------------------
class Op:
    """Request opcodes (the ``kind`` byte of a request frame)."""

    PING = 0x01
    PUT = 0x02
    GET = 0x03
    DELETE = 0x04
    DELETE_RANGE = 0x05
    SCAN = 0x06
    BATCH = 0x07
    STATS = 0x08

    #: Every request opcode, for validation.
    ALL = frozenset({PING, PUT, GET, DELETE, DELETE_RANGE, SCAN, BATCH, STATS})
    #: Opcodes that mutate the store (admission control treats these as
    #: the shape of load worth shedding under write backpressure).
    WRITES = frozenset({PUT, DELETE, DELETE_RANGE, BATCH})


class Resp:
    """Response codes (the ``kind`` byte of a response frame)."""

    OK = 0x40
    ERR = 0x41

    ALL = frozenset({OK, ERR})


class ErrCode:
    """Structured error codes carried in an ``ERR`` payload dict."""

    #: Malformed request payload / unknown opcode.
    BAD_REQUEST = "BAD_REQUEST"
    #: Admission control shed the request; honor ``retry_after_ms``.
    RETRY_AFTER = "RETRY_AFTER"
    #: Shed because an earlier same-generation request was shed (the
    #: pipeline-abort suffix); resubmit with a bumped generation.
    PIPELINE_ABORT = "PIPELINE_ABORT"
    #: The engine raised while executing (message carries details).
    ENGINE_ERROR = "ENGINE_ERROR"
    #: Server is stopping; reconnect-and-retry against a new instance.
    SHUTTING_DOWN = "SHUTTING_DOWN"


class ProtocolError(AcheronError):
    """A frame or payload violated the wire protocol.

    ``code`` is a short machine-readable reason (``"bad_magic"``,
    ``"bad_version"``, ``"oversized"``, ``"bad_crc"``, ``"bad_kind"``,
    ``"bad_payload"``, ``"truncated"``); the message carries the human
    detail.  Connection-fatal: after raising, a decoder refuses further
    input (a byte stream mid-garbage has no safe resync point).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_I64 = b"i"
_TAG_BIGINT = b"I"
_TAG_F64 = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: Nesting depth cap for decoded containers: deeper input is hostile,
#: not data (the engine's payloads are at most a few levels deep).
_MAX_DEPTH = 32


def encode_value(value: Any, out: bytearray | None = None) -> bytes:
    """Serialize ``value`` with the tag scheme (see module docstring)."""
    buf = bytearray() if out is None else out
    _encode(value, buf)
    return bytes(buf)


def _encode(value: Any, buf: bytearray) -> None:
    if value is None:
        buf += _TAG_NONE
    elif value is True:
        buf += _TAG_TRUE
    elif value is False:
        buf += _TAG_FALSE
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            buf += _TAG_I64
            buf += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "little", signed=True)
            buf += _TAG_BIGINT
            buf += _U32.pack(len(raw))
            buf += raw
    elif type(value) is float:
        buf += _TAG_F64
        buf += _F64.pack(value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        buf += _TAG_STR
        buf += _U32.pack(len(raw))
        buf += raw
    elif type(value) is bytes:
        buf += _TAG_BYTES
        buf += _U32.pack(len(value))
        buf += value
    elif type(value) is list:
        buf += _TAG_LIST
        buf += _U32.pack(len(value))
        for item in value:
            _encode(item, buf)
    elif type(value) is tuple:
        buf += _TAG_TUPLE
        buf += _U32.pack(len(value))
        for item in value:
            _encode(item, buf)
    elif type(value) is dict:
        buf += _TAG_DICT
        buf += _U32.pack(len(value))
        for key, item in value.items():
            if type(key) is not str:
                raise ProtocolError(
                    "bad_payload", f"dict keys must be str, got {type(key).__name__}"
                )
            _encode(key, buf)
            _encode(item, buf)
    else:
        raise ProtocolError(
            "bad_payload", f"unencodable type {type(value).__name__}"
        )


class _Reader:
    """Bounded cursor over one payload's bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise ProtocolError("bad_payload", "payload truncated mid-value")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def decode_value(data: bytes) -> Any:
    """Parse one value; raises :class:`ProtocolError` on any malformation
    (wrong tag, truncation, trailing bytes, hostile nesting)."""
    reader = _Reader(data)
    value = _decode(reader, 0)
    if reader.pos != len(data):
        raise ProtocolError(
            "bad_payload", f"{len(data) - reader.pos} trailing bytes after value"
        )
    return value


def _decode(r: _Reader, depth: int) -> Any:
    if depth > _MAX_DEPTH:
        raise ProtocolError("bad_payload", f"nesting deeper than {_MAX_DEPTH}")
    tag = r.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_I64:
        return _I64.unpack(r.take(8))[0]
    if tag == _TAG_BIGINT:
        return int.from_bytes(r.take(r.u32()), "little", signed=True)
    if tag == _TAG_F64:
        return _F64.unpack(r.take(8))[0]
    if tag == _TAG_STR:
        try:
            return r.take(r.u32()).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad_payload", f"invalid utf-8 string: {exc}") from None
    if tag == _TAG_BYTES:
        return r.take(r.u32())
    if tag in (_TAG_LIST, _TAG_TUPLE):
        count = r.u32()
        if count > len(r.data):  # each element costs >= 1 byte
            raise ProtocolError("bad_payload", f"container count {count} exceeds payload")
        items = [_decode(r, depth + 1) for _ in range(count)]
        return items if tag == _TAG_LIST else tuple(items)
    if tag == _TAG_DICT:
        count = r.u32()
        if count > len(r.data):
            raise ProtocolError("bad_payload", f"dict count {count} exceeds payload")
        out = {}
        for _ in range(count):
            key = _decode(r, depth + 1)
            if type(key) is not str:
                raise ProtocolError("bad_payload", "dict key is not a string")
            out[key] = _decode(r, depth + 1)
        return out
    raise ProtocolError("bad_payload", f"unknown value tag {tag!r}")


# ---------------------------------------------------------------------------
# frames
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Frame:
    """One decoded wire frame (payload already parsed to a value)."""

    kind: int
    request_id: int
    generation: int
    payload: Any

    @property
    def is_response(self) -> bool:
        return self.kind in Resp.ALL


def encode_frame(
    kind: int, request_id: int, payload: Any, generation: int = 0
) -> bytes:
    """One complete frame as bytes (header + tag-encoded payload)."""
    body = encode_value(payload)
    if HEADER_AFTER_LENGTH + len(body) > MAX_FRAME_BYTES:
        raise ProtocolError("oversized", f"payload of {len(body)} bytes exceeds cap")
    return _PREFIX.pack(
        HEADER_AFTER_LENGTH + len(body),
        MAGIC,
        PROTOCOL_VERSION,
        kind,
        request_id & 0xFFFFFFFF,
        generation & 0xFFFF,
        zlib.crc32(body),
    ) + body


def error_payload(
    code: str, message: str, retry_after_ms: float | None = None
) -> dict:
    """The canonical ``ERR`` payload dict."""
    payload = {"code": code, "message": message}
    if retry_after_ms is not None:
        payload["retry_after_ms"] = float(retry_after_ms)
    return payload


class FrameDecoder:
    """Incremental, partial-frame-safe frame parser for one stream.

    Usage::

        decoder.feed(sock.recv(65536))
        while (frame := decoder.next_frame()) is not None:
            handle(frame)

    Totality contract (hypothesis-tested): for *any* byte sequence fed in
    *any* segmentation, ``next_frame`` either returns a :class:`Frame`,
    returns ``None`` (a partial frame is buffered), or raises
    :class:`ProtocolError`.  After an error the decoder is poisoned and
    every later call re-raises -- a stream that desynchronized has no
    trustworthy resync point, so the connection must be torn down.
    """

    __slots__ = ("_buf", "_error", "_max_frame")

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buf = bytearray()
        self._error: ProtocolError | None = None
        self._max_frame = max_frame_bytes

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a complete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        if self._error is not None:
            raise self._error
        self._buf += data

    def _fail(self, code: str, message: str) -> ProtocolError:
        self._error = ProtocolError(code, message)
        self._buf.clear()
        raise self._error

    def next_frame(self) -> Frame | None:
        if self._error is not None:
            raise self._error
        if len(self._buf) < 4:
            return None
        (length,) = _U32.unpack_from(self._buf, 0)
        if length < HEADER_AFTER_LENGTH:
            self._fail("truncated", f"frame length {length} below header size")
        if 4 + length > self._max_frame:
            self._fail("oversized", f"frame of {length} bytes exceeds cap")
        if len(self._buf) < 4 + length:
            return None
        _, magic, version, kind, request_id, generation, crc = _PREFIX.unpack_from(
            self._buf, 0
        )
        body = bytes(self._buf[PREFIX_BYTES : 4 + length])
        if magic != MAGIC:
            self._fail("bad_magic", f"expected {MAGIC:#x}, got {magic:#x}")
        if version != PROTOCOL_VERSION:
            self._fail("bad_version", f"peer speaks v{version}, this is v{PROTOCOL_VERSION}")
        if kind not in Op.ALL and kind not in Resp.ALL:
            self._fail("bad_kind", f"unknown frame kind {kind:#x}")
        if zlib.crc32(body) != crc:
            self._fail("bad_crc", "payload checksum mismatch")
        try:
            payload = decode_value(body)
        except ProtocolError as exc:
            self._error = exc
            self._buf.clear()
            raise
        del self._buf[: 4 + length]
        return Frame(kind=kind, request_id=request_id, generation=generation, payload=payload)

    def drain(self) -> Iterator[Frame]:
        """Every complete frame currently buffered."""
        while (frame := self.next_frame()) is not None:
            yield frame
