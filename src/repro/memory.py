"""Adaptive memory governor: live write-buffer/block-cache arbitration.

Every shard of a :class:`~repro.shard.engine.ShardedEngine` is built with
the same frozen budgets -- ``memtable_entries`` write-buffer slots and
``cache_pages`` block-cache pages -- so a skewed workload wastes memory on
cold shards while hot shards flush early and thrash their caches: the
static-partitioning pathology the memory-walls line of work attacks
(*Breaking Down Memory Walls*, PAPERS.md).  This module supplies the two
pieces that fix it without touching the durability story:

:class:`MemoryBudget`
    A ledger of per-shard allocations drawn from a **fixed global pool**
    measured in entry units (one cache page is worth ``entries_per_page``
    entries, the natural exchange rate -- that is what a page holds).  The
    ledger is advisory runtime state: it is never persisted, never enters
    the manifest, and every reopen rebuilds allocations from the config
    defaults.  Its single hard invariant, enforced on every mutation and
    property-tested, is that the allocations never exceed the pool.

:class:`MemoryGovernor`
    A per-window controller (same cadence and shape as PR 7's
    :class:`~repro.shard.autosplit.AutoSplitController`) that reads
    observed per-shard signals -- window write counts, cache hit rates,
    memtable fill, tombstone density from the FADE tracker -- and
    reallocates the pool along two axes with a marginal-benefit model:

    * **across the write/read split**: both sides are priced in modeled
      page I/O per entry unit -- an extra cache page converts misses to
      hits (one page read saved each), an extra buffer entry spaces
      flushes out (~``write_amplification`` page writes per
      ``entries_per_page`` entries through the flush + compaction
      cascade).  Units flow toward the higher marginal benefit, a
      bounded fraction of the donor pool per window; shrinking a
      *working* cache is priced by the hits it would stop serving, so a
      converged (low-miss) cache is not raided.
    * **across shards**: within each pool, targets are proportional to
      each shard's marginal score.  For the cache that is the misses its
      pages could still convert -- weighted by the hit rate the shard
      demonstrates (uncacheable miss streams attract no pages) and
      discounted by tombstone density (a tombstone-dense shard earns less
      read benefit per cached page, the Lethe-style delete-awareness
      signal) -- plus the hits its current pages already serve, so a
      converged cache holds its allocation instead of having its own
      success raided.  For the write buffers it is flush frequency.
      Allocations move a damped ``step_fraction`` of the gap per window,
      so decisions converge instead of oscillating.

    Decisions are *applied* by the engine through live seams --
    :meth:`BlockCache.resize` and the tree's memtable soft limit -- both
    of which tolerate the concurrent write path: the cache re-shards
    under lock-free readers, and a shrunk memtable budget simply makes
    the per-op flush trigger fire earlier (the workers>0 frozen-queue
    protocol is untouched; the governor never rotates a memtable
    itself).

The governor is default-off and bit-identical when off: nothing in this
module is imported on the hot path unless armed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

__all__ = ["MemoryBudget", "MemoryGovernor", "MemoryGovernorConfig"]


@dataclass(frozen=True)
class MemoryGovernorConfig:
    """Tuning knobs for the adaptive memory governor."""

    #: Routed writes per evaluation window (the PR 7 auto-split cadence).
    window_ops: int = 4096
    #: Windows with fewer total writes than this are skipped entirely (a
    #: trickle carries too little signal to rebalance on).
    min_window_ops: int = 256
    #: Fraction of the (target - current) gap applied per window.  The
    #: damping that makes repeated decisions converge on a skew instead of
    #: slamming allocations back and forth.
    step_fraction: float = 0.5
    #: Max fraction of the donor pool's units crossing the write/read
    #: split in one window.
    pool_shift_fraction: float = 0.1
    #: Per-shard floors.  Clamped at bind time to the config defaults (a
    #: floor above the starting allocation would mean growing everything).
    #: ``min_memtable_entries`` is further clamped to >= 1 -- a memtable
    #: must hold at least one entry.
    min_cache_pages: int = 0
    min_memtable_entries: int = 16
    #: Max discount applied to a shard's read-benefit score at tombstone
    #: density 1.0 (Lethe-style delete-awareness: cached pages of
    #: tombstone-dense data serve fewer live reads).
    tombstone_discount: float = 0.5
    #: Weight on the write pool's marginal benefit: every buffered entry
    #: eventually costs ~``write_amplification`` page-writes per
    #: ``entries_per_page`` entries (flush + the compaction cascade), so a
    #: flush averted is worth this many page I/Os relative to the one page
    #: read a converted cache miss saves.
    write_amplification: float = 4.0

    def __post_init__(self) -> None:
        if self.window_ops < 1:
            raise ValueError(f"window_ops must be >= 1, got {self.window_ops}")
        if self.min_window_ops < 0:
            raise ValueError(
                f"min_window_ops must be >= 0, got {self.min_window_ops}"
            )
        if not 0.0 < self.step_fraction <= 1.0:
            raise ValueError(
                f"step_fraction must be in (0, 1], got {self.step_fraction}"
            )
        if not 0.0 <= self.pool_shift_fraction <= 1.0:
            raise ValueError(
                f"pool_shift_fraction must be in [0, 1], got "
                f"{self.pool_shift_fraction}"
            )
        if self.min_cache_pages < 0:
            raise ValueError(
                f"min_cache_pages must be >= 0, got {self.min_cache_pages}"
            )
        if self.min_memtable_entries < 1:
            raise ValueError(
                f"min_memtable_entries must be >= 1, got "
                f"{self.min_memtable_entries}"
            )
        if not 0.0 <= self.tombstone_discount <= 1.0:
            raise ValueError(
                f"tombstone_discount must be in [0, 1], got "
                f"{self.tombstone_discount}"
            )
        if self.write_amplification <= 0.0:
            raise ValueError(
                f"write_amplification must be > 0, got "
                f"{self.write_amplification}"
            )


class MemoryBudget:
    """Per-shard allocations over a fixed global pool of entry units.

    Built from the frozen config fields: each of ``shards`` shards starts
    at exactly ``config.memtable_entries`` buffer slots and
    ``config.cache_pages`` cache pages, so an unarmed engine and a
    freshly-armed one begin identical.  The pool total is frozen at
    construction; every reallocation must keep

        ``sum(memtable_entries) + sum(cache_pages) * entries_per_page
        <= total_units``

    which :meth:`check` enforces and the hypothesis suite hammers.
    """

    def __init__(
        self,
        shards: int,
        memtable_entries: int,
        cache_pages: int,
        entries_per_page: int,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if memtable_entries < 1:
            raise ValueError(
                f"memtable_entries must be >= 1, got {memtable_entries}"
            )
        if cache_pages < 0:
            raise ValueError(f"cache_pages must be >= 0, got {cache_pages}")
        self.entries_per_page = max(1, entries_per_page)
        self.default_memtable_entries = memtable_entries
        self.default_cache_pages = cache_pages
        self.memtable_entries = [memtable_entries] * shards
        self.cache_pages = [cache_pages] * shards
        self.total_units = shards * (
            memtable_entries + cache_pages * self.entries_per_page
        )

    @classmethod
    def from_config(cls, config: Any, shards: int) -> "MemoryBudget":
        """The ledger an engine's frozen config implies for ``shards``."""
        return cls(
            shards,
            config.memtable_entries,
            config.cache_pages,
            config.entries_per_page,
        )

    @property
    def shard_count(self) -> int:
        return len(self.memtable_entries)

    def used_units(self) -> int:
        return sum(self.memtable_entries) + sum(self.cache_pages) * (
            self.entries_per_page
        )

    def remaining_units(self) -> int:
        return self.total_units - self.used_units()

    def check(self) -> None:
        """Raise if the allocations violate the pool invariant."""
        used = self.used_units()
        if used > self.total_units:
            raise AssertionError(
                f"memory budget overcommitted: {used} units allocated of "
                f"{self.total_units}"
            )
        if any(e < 1 for e in self.memtable_entries):
            raise AssertionError(
                f"memtable budget below 1 entry: {self.memtable_entries}"
            )
        if any(p < 0 for p in self.cache_pages):
            raise AssertionError(f"negative cache budget: {self.cache_pages}")

    def set(self, index: int, memtable_entries: int, cache_pages: int) -> None:
        """Assign one shard's allocations; enforces the pool invariant."""
        self.memtable_entries[index] = memtable_entries
        self.cache_pages[index] = cache_pages
        self.check()

    def rebind(self, allocations: list[tuple[int, int]]) -> None:
        """Re-sync the ledger to live per-shard (entries, pages) state.

        Used when the shard count changes under the governor (an auto
        split replaces one shard with two built at config defaults): the
        pool total is recomputed from the config defaults at the new
        count, so the invariant stays meaningful.
        """
        self.memtable_entries = [entries for entries, _ in allocations]
        self.cache_pages = [pages for _, pages in allocations]
        self.total_units = len(allocations) * (
            self.default_memtable_entries
            + self.default_cache_pages * self.entries_per_page
        )
        # Live state may transiently exceed the implied pool (fresh
        # config-default shards beside governor-grown ones); shave the
        # largest cache allocations first -- advisory, cheapest to undo.
        while self.used_units() > self.total_units:
            worst = max(range(len(self.cache_pages)), key=self.cache_pages.__getitem__)
            if self.cache_pages[worst] > 0:
                self.cache_pages[worst] -= 1
                continue
            worst = max(
                range(len(self.memtable_entries)),
                key=self.memtable_entries.__getitem__,
            )
            self.memtable_entries[worst] -= 1
        self.check()

    def to_dict(self) -> dict[str, Any]:
        return {
            "total_units": self.total_units,
            "used_units": self.used_units(),
            "entries_per_page": self.entries_per_page,
            "memtable_entries": list(self.memtable_entries),
            "cache_pages": list(self.cache_pages),
        }


class MemoryGovernor:
    """Per-window marginal-benefit reallocation of a :class:`MemoryBudget`.

    The engine feeds routed writes through :meth:`note_writes` (exactly
    the auto-split intake) and, when a window closes, gathers per-shard
    signals and calls :meth:`evaluate`, then applies the returned
    decisions through the live seams.  All controller state is advisory
    and process-local; a crash or reopen simply starts from the config
    defaults again.
    """

    def __init__(
        self,
        config: MemoryGovernorConfig | None = None,
        budget: MemoryBudget | None = None,
    ) -> None:
        self.config = config or MemoryGovernorConfig()
        self.budget = budget
        self.window_counts: dict[int, int] = {}
        self._window_total = 0
        #: Cumulative (hits, misses) per shard at the last evaluation, so
        #: window deltas are computed here and the engine can pass plain
        #: cache-stat snapshots.
        self._last_reads: dict[int, tuple[int, int]] = {}
        #: Every applied decision, JSON-safe rows for the inspector.
        self.events: list[dict[str, Any]] = []
        self.windows_evaluated = 0
        self.decisions = 0
        self.cache_resizes = 0
        self.memtable_resizes = 0
        self.pool_shifts = 0
        self._lock = threading.Lock()

    def bind(self, budget: MemoryBudget) -> None:
        self.budget = budget

    # ------------------------------------------------------------------
    # signal intake
    # ------------------------------------------------------------------
    def note_writes(self, index: int, count: int = 1) -> bool:
        """Count routed writes; True when a window boundary was crossed."""
        self.window_counts[index] = self.window_counts.get(index, 0) + count
        self._window_total += count
        return self._window_total >= self.config.window_ops

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def evaluate(
        self, signals: dict[int, dict[str, Any]]
    ) -> list[dict[str, Any]]:
        """Score the closed window; return per-shard resize decisions.

        ``signals`` maps shard index to observed state: cumulative cache
        ``hits``/``misses`` (deltas are taken against the previous
        window here), ``memtable_fill`` in [0, 1], and
        ``tombstone_density`` in [0, 1] (buffered tombstone share, FADE's
        delete-pressure signal).  Returns rows of
        ``{"shard", "memtable_entries", "cache_pages"}`` -- the new
        allocations for every shard whose budget changed.  The ledger is
        updated before returning, so the caller only has to push the
        numbers into the live seams.
        """
        with self._lock:
            return self._evaluate_locked(signals)

    def _evaluate_locked(
        self, signals: dict[int, dict[str, Any]]
    ) -> list[dict[str, Any]]:
        cfg = self.config
        budget = self.budget
        counts, self.window_counts = self.window_counts, {}
        total, self._window_total = self._window_total, 0
        self.windows_evaluated += 1
        if budget is None or total < cfg.min_window_ops:
            return []
        nshards = budget.shard_count
        epp = budget.entries_per_page

        writes = [counts.get(i, 0) for i in range(nshards)]
        reads = [0] * nshards
        hits = [0] * nshards
        misses = [0] * nshards
        tombs = [0.0] * nshards
        for i in range(nshards):
            sig = signals.get(i, {})
            hits_now = int(sig.get("hits", 0))
            misses_now = int(sig.get("misses", 0))
            last_h, last_m = self._last_reads.get(i, (0, 0))
            dh = max(0, hits_now - last_h)
            dm = max(0, misses_now - last_m)
            self._last_reads[i] = (hits_now, misses_now)
            reads[i] = dh + dm
            hits[i] = dh
            misses[i] = dm
            tombs[i] = min(1.0, max(0.0, float(sig.get("tombstone_density", 0.0))))

        # Marginal scores.  Cache: a shard's claim on pages is the misses
        # an extra page could still convert to hits -- weighted by the hit
        # rate its current pages demonstrate (Laplace-smoothed so a cold
        # cache is not starved before it has evidence), because misses on
        # an uncacheable stream (uniform random reads over a span far
        # wider than any plausible cache) convert nothing no matter how
        # many pages they attract -- PLUS the hits its current pages
        # already serve.  The retention term is the per-shard analogue of
        # the pool-level ``cache_hold`` below: without it a cache that
        # reaches full coverage kills its own miss score and is raided by
        # the proportional apportionment, oscillating forever just under
        # convergence.  Tombstone-dense shards earn less read benefit per
        # cached page (the Lethe-style delete-awareness signal), so their
        # miss pressure is discounted.  Write buffer: flush frequency
        # writes/entries -- the shards flushing most often gain the most
        # amortization per extra entry.
        convertible = [
            misses[i]
            * (1.0 - cfg.tombstone_discount * tombs[i])
            * ((hits[i] + 1.0) / (reads[i] + 2.0))
            for i in range(nshards)
        ]
        cache_score = [convertible[i] + hits[i] for i in range(nshards)]
        write_score = [
            writes[i] / max(1, budget.memtable_entries[i]) for i in range(nshards)
        ]

        floor_entries = max(1, min(cfg.min_memtable_entries,
                                   budget.default_memtable_entries))
        floor_pages = min(cfg.min_cache_pages, budget.default_cache_pages)

        pool_entries = sum(budget.memtable_entries)
        pool_pages = sum(budget.cache_pages)

        # -- write/read split: shift units toward the higher marginal
        # benefit per entry unit of modeled page I/O.  Growing the cache
        # converts the window's *convertible* misses to hits (one page
        # *read* saved each -- uncacheable miss streams already weighted
        # out above); growing the write buffers spaces flushes out (each
        # buffered
        # entry eventually costs ~write_amplification page-writes per
        # entries_per_page entries through the flush + compaction
        # cascade).  Shrinking a *working* cache is priced by the hits it
        # would stop serving, not by its misses -- the asymmetry that
        # keeps a converged cache from being raided the moment its miss
        # rate (by then low, because it converged) dips below the write
        # score.
        total_misses = sum(convertible)
        total_hits = sum(hits)
        total_writes = sum(writes)
        cache_gain = total_misses / max(1, pool_pages * epp)
        cache_hold = total_hits / max(1, pool_pages * epp)
        write_gain = (
            cfg.write_amplification * total_writes / max(1, pool_entries * epp)
        )
        if cfg.pool_shift_fraction > 0.0:
            if cache_gain > write_gain * 1.25:
                # Reads are starved relative to the write buffers: convert
                # buffer entries into cache pages.
                donatable = max(0, pool_entries - nshards * floor_entries)
                shift_pages = min(
                    int(cfg.pool_shift_fraction * pool_entries) // epp,
                    donatable // epp,
                )
                if shift_pages > 0:
                    pool_entries -= shift_pages * epp
                    pool_pages += shift_pages
                    self.pool_shifts += 1
            elif write_gain > max(cache_gain, cache_hold) * 1.25:
                donatable = max(0, pool_pages - nshards * floor_pages)
                shift_pages = min(
                    max(1, int(cfg.pool_shift_fraction * pool_pages)), donatable
                )
                if shift_pages > 0:
                    pool_pages -= shift_pages
                    pool_entries += shift_pages * epp
                    self.pool_shifts += 1

        new_pages = self._apportion(
            budget.cache_pages, cache_score, pool_pages, floor_pages
        )
        new_entries = self._apportion(
            budget.memtable_entries, write_score, pool_entries, floor_entries
        )

        decisions: list[dict[str, Any]] = []
        for i in range(nshards):
            if (
                new_pages[i] == budget.cache_pages[i]
                and new_entries[i] == budget.memtable_entries[i]
            ):
                continue
            if new_pages[i] != budget.cache_pages[i]:
                self.cache_resizes += 1
            if new_entries[i] != budget.memtable_entries[i]:
                self.memtable_resizes += 1
            decisions.append(
                {
                    "shard": i,
                    "memtable_entries": new_entries[i],
                    "cache_pages": new_pages[i],
                }
            )
        budget.memtable_entries = new_entries
        budget.cache_pages = new_pages
        budget.check()
        if decisions:
            self.decisions += 1
            self.events.append(
                {
                    "event": "reallocate",
                    "window": self.windows_evaluated,
                    "window_writes": total,
                    "shards": [d["shard"] for d in decisions],
                    "memtable_entries": list(new_entries),
                    "cache_pages": list(new_pages),
                }
            )
        return decisions

    def _apportion(
        self,
        current: list[int],
        scores: list[float],
        pool: int,
        floor: int,
    ) -> list[int]:
        """Damped move from ``current`` toward score-proportional targets.

        Targets are ``floor + headroom * score/sum(scores)``; each shard
        moves ``step_fraction`` of its gap, clamped to its floor, and
        rounding overshoot is shaved from the largest allocations so the
        result never exceeds ``pool`` (it may undershoot -- the invariant
        is one-sided).
        """
        n = len(current)
        if pool < n * floor:
            # The pool cannot cover the floors (tiny configs): leave the
            # current allocations alone rather than violate either bound.
            return list(current)
        weight = sum(scores)
        step = self.config.step_fraction
        if weight <= 0.0:
            # No signal this window: keep the current proportions -- but a
            # pool shift may have shrunk this pool, so the shave below must
            # still run or the two pools together overcommit the budget.
            out = [max(floor, c) for c in current]
        else:
            headroom = pool - n * floor
            out = []
            for i in range(n):
                target = floor + headroom * (scores[i] / weight)
                moved = current[i] + step * (target - current[i])
                out.append(max(floor, int(round(moved))))
        excess = sum(out) - pool
        while excess > 0:
            above = [i for i in range(n) if out[i] > floor]
            if not above:
                break
            worst = max(above, key=out.__getitem__)
            shave = min(excess, out[worst] - floor)
            out[worst] -= shave
            excess -= shave
        return out

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-safe snapshot for ``EngineStats.memory`` / the inspector."""
        budget = self.budget
        return {
            "windows_evaluated": self.windows_evaluated,
            "decisions": self.decisions,
            "cache_resizes": self.cache_resizes,
            "memtable_resizes": self.memtable_resizes,
            "pool_shifts": self.pool_shifts,
            "budget": budget.to_dict() if budget is not None else {},
            "events": list(self.events[-16:]),
        }
