"""Workload specifications and the operation model.

A :class:`WorkloadSpec` describes an operation mix the way the paper's
evaluation parameterizes its workloads: total operation count, per-kind
weights (the central knob being the *delete fraction*), key distribution,
and range shapes.  A spec plus a seed fully determines the stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import WorkloadError


class OpKind(enum.Enum):
    """One operation the engine can be asked to perform."""

    INSERT = "insert"  # put of a never-used key
    UPDATE = "update"  # put of a live key
    POINT_DELETE = "point_delete"  # tombstone for a live key
    POINT_QUERY = "point_query"  # get of a live key (expected hit)
    EMPTY_QUERY = "empty_query"  # get of a key that never existed
    RANGE_QUERY = "range_query"  # scan of a key interval
    SECONDARY_RANGE_DELETE = "secondary_range_delete"  # delete on delete key


@dataclass(frozen=True)
class Operation:
    """One concrete operation.

    ``key`` is the sort key for point ops, the low bound for range ops;
    ``key_hi`` the high bound.  For secondary range deletes the bounds are
    *delete-key* (tick) values.
    """

    kind: OpKind
    key: Any = None
    key_hi: Any = None
    value: Any = None


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible workload description.

    ``weights`` maps :class:`OpKind` to relative frequency; kinds missing
    from the map never occur.  ``preload`` keys are inserted before the
    mixed phase begins (building the initial tree the way the paper's
    experiments do).
    """

    operations: int = 10_000
    preload: int = 5_000
    weights: dict[OpKind, float] = field(
        default_factory=lambda: {
            OpKind.INSERT: 0.50,
            OpKind.UPDATE: 0.20,
            OpKind.POINT_DELETE: 0.10,
            OpKind.POINT_QUERY: 0.15,
            OpKind.EMPTY_QUERY: 0.03,
            OpKind.RANGE_QUERY: 0.02,
        }
    )
    distribution: str = "uniform"
    zipf_theta: float = 0.99
    #: Range queries span this many consecutive key slots.
    range_span: int = 128
    #: Secondary range deletes target the oldest this-fraction of the
    #: current delete-key (time) domain.
    secondary_delete_window: float = 0.05
    #: Fraction of INSERTs that *resurrect* a previously deleted key
    #: instead of minting a fresh one.  Resurrection is what supersedes a
    #: pending tombstone (the delete becomes moot); 0 disables it.
    reinsert_fraction: float = 0.0
    value_template: str = "v{key}"
    seed: int = 0xACE

    def __post_init__(self) -> None:
        if self.operations < 0 or self.preload < 0:
            raise WorkloadError("operation and preload counts must be >= 0")
        if not self.weights:
            raise WorkloadError("a workload needs at least one operation kind")
        total = sum(self.weights.values())
        if total <= 0:
            raise WorkloadError("workload weights must sum to a positive value")
        for kind, weight in self.weights.items():
            if not isinstance(kind, OpKind):
                raise WorkloadError(f"weight key {kind!r} is not an OpKind")
            if weight < 0:
                raise WorkloadError(f"negative weight for {kind}: {weight}")
        if self.range_span < 1:
            raise WorkloadError(f"range_span must be >= 1, got {self.range_span}")
        if not 0.0 < self.secondary_delete_window <= 1.0:
            raise WorkloadError(
                "secondary_delete_window must be in (0, 1], got "
                f"{self.secondary_delete_window}"
            )
        if not 0.0 <= self.reinsert_fraction <= 1.0:
            raise WorkloadError(
                f"reinsert_fraction must be in [0, 1], got {self.reinsert_fraction}"
            )

    def with_delete_fraction(self, fraction: float) -> "WorkloadSpec":
        """The paper's main sweep knob: rescale so point deletes make up
        ``fraction`` of the mixed phase, other kinds keeping their ratios."""
        if not 0.0 <= fraction < 1.0:
            raise WorkloadError(f"delete fraction must be in [0, 1), got {fraction}")
        others = {k: w for k, w in self.weights.items() if k is not OpKind.POINT_DELETE}
        other_total = sum(others.values())
        if other_total <= 0:
            raise WorkloadError("cannot rescale: no non-delete operations in the mix")
        scale = (1.0 - fraction) / other_total
        new_weights = {k: w * scale for k, w in others.items()}
        if fraction > 0:
            new_weights[OpKind.POINT_DELETE] = fraction
        return WorkloadSpec(
            operations=self.operations,
            preload=self.preload,
            weights=new_weights,
            distribution=self.distribution,
            zipf_theta=self.zipf_theta,
            range_span=self.range_span,
            secondary_delete_window=self.secondary_delete_window,
            reinsert_fraction=self.reinsert_fraction,
            value_template=self.value_template,
            seed=self.seed,
        )
