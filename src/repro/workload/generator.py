"""Turning a :class:`~repro.workload.spec.WorkloadSpec` into operations.

The generator models the evolving key population: inserts mint fresh keys,
deletes retire live ones, queries target live keys (or guaranteed-missing
ones for empty queries).  Liveness is tracked with the classic
list-plus-swap-remove trick so every draw is O(1).

Keys are integers spread over a sparse domain (``key = slot * STRIDE``) so
empty queries can target in-between values that provably never existed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.workload.distributions import make_key_picker
from repro.workload.spec import Operation, OpKind, WorkloadSpec

#: Live keys are multiples of this; empty queries probe ``key + 1``.
KEY_STRIDE = 4


class WorkloadGenerator:
    """Stateful generator of one spec's operation stream."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self._picker = make_key_picker(spec.distribution, self._rng, spec.zipf_theta)
        self._live: list[int] = []  # key slots currently live
        self._graveyard: list[int] = []  # deleted slots, most recent last
        self._next_slot = 0
        self._ops_emitted = 0
        kinds = sorted(spec.weights, key=lambda k: k.value)
        weights = np.array([spec.weights[k] for k in kinds], dtype=np.float64)
        self._kinds = kinds
        self._probs = weights / weights.sum()

    # ------------------------------------------------------------------
    # population bookkeeping
    # ------------------------------------------------------------------
    def _mint_slot(self) -> int:
        slot = self._next_slot
        self._next_slot += 1
        self._live.append(slot)
        return slot

    def _pick_live_index(self) -> int:
        return self._picker.pick(len(self._live))

    def _retire_index(self, index: int) -> int:
        slot = self._live[index]
        self._live[index] = self._live[-1]
        self._live.pop()
        self._graveyard.append(slot)
        return slot

    def _resurrect_slot(self) -> int:
        """Re-insert the most recently deleted key (hot-key churn shape).

        Resurrecting a key whose tombstone is still pending is what makes
        that tombstone *superseded* rather than persisted.
        """
        slot = self._graveyard.pop()
        self._live.append(slot)
        return slot

    @property
    def live_count(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def preload_operations(self) -> Iterator[Operation]:
        """The initial pure-insert phase."""
        for _ in range(self.spec.preload):
            slot = self._mint_slot()
            yield self._insert_op(slot)

    def mixed_operations(self) -> Iterator[Operation]:
        """The measured phase, following the spec's weights."""
        for _ in range(self.spec.operations):
            yield self._next_mixed()

    def operations(self) -> Iterator[Operation]:
        """Preload followed by the mixed phase."""
        yield from self.preload_operations()
        yield from self.mixed_operations()

    def _next_mixed(self) -> Operation:
        kind = self._kinds[int(self._rng.choice(len(self._kinds), p=self._probs))]
        # Kinds that need a live population degrade to an insert while the
        # population is empty (can happen under extreme delete fractions).
        needs_live = kind in (
            OpKind.UPDATE,
            OpKind.POINT_DELETE,
            OpKind.POINT_QUERY,
            OpKind.RANGE_QUERY,
        )
        if needs_live and not self._live:
            kind = OpKind.INSERT
        self._ops_emitted += 1
        if kind is OpKind.INSERT:
            resurrect = (
                self.spec.reinsert_fraction > 0
                and self._graveyard
                and self._rng.random() < self.spec.reinsert_fraction
            )
            slot = self._resurrect_slot() if resurrect else self._mint_slot()
            return self._insert_op(slot)
        if kind is OpKind.UPDATE:
            slot = self._live[self._pick_live_index()]
            return self._insert_op(slot, kind=OpKind.UPDATE)
        if kind is OpKind.POINT_DELETE:
            slot = self._retire_index(self._pick_live_index())
            return Operation(OpKind.POINT_DELETE, key=slot * KEY_STRIDE)
        if kind is OpKind.POINT_QUERY:
            slot = self._live[self._pick_live_index()]
            return Operation(OpKind.POINT_QUERY, key=slot * KEY_STRIDE)
        if kind is OpKind.EMPTY_QUERY:
            slot = int(self._rng.integers(0, max(1, self._next_slot)))
            return Operation(OpKind.EMPTY_QUERY, key=slot * KEY_STRIDE + 1)
        if kind is OpKind.RANGE_QUERY:
            slot = self._live[self._pick_live_index()]
            lo = slot * KEY_STRIDE
            return Operation(OpKind.RANGE_QUERY, key=lo, key_hi=lo + self.spec.range_span * KEY_STRIDE)
        if kind is OpKind.SECONDARY_RANGE_DELETE:
            # Bounds are resolved against the engine clock at run time; the
            # generator emits the *window fraction* in key/key_hi as a
            # placeholder resolved by the runner.
            return Operation(OpKind.SECONDARY_RANGE_DELETE, key=0, key_hi=0)
        raise WorkloadError(f"unhandled operation kind {kind}")  # pragma: no cover

    def _insert_op(self, slot: int, kind: OpKind = OpKind.INSERT) -> Operation:
        key = slot * KEY_STRIDE
        return Operation(kind, key=key, value=self.spec.value_template.format(key=key))


def generate_operations(spec: WorkloadSpec) -> list[Operation]:
    """Materialize the full stream of one spec (preload + mixed)."""
    return list(WorkloadGenerator(spec).operations())
