"""Operation-trace recording and replay.

Benchmark workloads here are generated, but real evaluations also replay
captured production traces.  This module gives operation streams a durable
form: a trace file is a text format, one operation per line, with a
checksummed header -- diff-able, greppable, and stable across versions.

Format::

    #acheron-trace v1 count=<n> crc=<hex>
    put <key> <value> [dkey=<int>]
    upd <key> <value>
    del <key>
    get <key>
    miss <key>
    range <lo> <hi>
    sdel <lo> <hi>

Keys and values are URL-quoted so arbitrary strings survive the line
format; integer keys are written bare and recovered as ints.  The CRC
covers the body, so a truncated or edited trace is detected on load.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Any, Iterable
from urllib.parse import quote, unquote

from repro.errors import CorruptionError, WorkloadError
from repro.workload.spec import Operation, OpKind

_MAGIC = "#acheron-trace v1"

_KIND_TO_VERB = {
    OpKind.INSERT: "put",
    OpKind.UPDATE: "upd",
    OpKind.POINT_DELETE: "del",
    OpKind.POINT_QUERY: "get",
    OpKind.EMPTY_QUERY: "miss",
    OpKind.RANGE_QUERY: "range",
    OpKind.SECONDARY_RANGE_DELETE: "sdel",
}
_VERB_TO_KIND = {verb: kind for kind, verb in _KIND_TO_VERB.items()}


def _encode_token(value: Any) -> str:
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    if isinstance(value, str):
        return "s:" + quote(value, safe="")
    raise WorkloadError(
        f"traces support int and str keys/values, got {type(value).__name__}"
    )


def _decode_token(token: str) -> Any:
    if token.startswith("s:"):
        return unquote(token[2:])
    try:
        return int(token)
    except ValueError as exc:
        raise CorruptionError(f"malformed trace token {token!r}") from exc


def _encode_line(op: Operation) -> str:
    verb = _KIND_TO_VERB.get(op.kind)
    if verb is None:  # pragma: no cover - all kinds mapped
        raise WorkloadError(f"cannot record operation kind {op.kind}")
    if op.kind in (OpKind.INSERT, OpKind.UPDATE):
        return f"{verb} {_encode_token(op.key)} {_encode_token(op.value)}"
    if op.kind in (OpKind.RANGE_QUERY, OpKind.SECONDARY_RANGE_DELETE):
        return f"{verb} {_encode_token(op.key or 0)} {_encode_token(op.key_hi or 0)}"
    return f"{verb} {_encode_token(op.key)}"


def _decode_line(line: str, line_no: int) -> Operation:
    tokens = line.split(" ")
    kind = _VERB_TO_KIND.get(tokens[0])
    if kind is None:
        raise CorruptionError(f"trace line {line_no}: unknown verb {tokens[0]!r}")
    try:
        if kind in (OpKind.INSERT, OpKind.UPDATE):
            return Operation(kind, key=_decode_token(tokens[1]), value=_decode_token(tokens[2]))
        if kind in (OpKind.RANGE_QUERY, OpKind.SECONDARY_RANGE_DELETE):
            return Operation(
                kind, key=_decode_token(tokens[1]), key_hi=_decode_token(tokens[2])
            )
        return Operation(kind, key=_decode_token(tokens[1]))
    except IndexError as exc:
        raise CorruptionError(f"trace line {line_no}: missing fields") from exc


def record_trace(operations: Iterable[Operation], path: str | Path) -> int:
    """Write ``operations`` to ``path``; returns how many were recorded."""
    lines = [_encode_line(op) for op in operations]
    body = "\n".join(lines)
    crc = zlib.crc32(body.encode("utf-8"))
    header = f"{_MAGIC} count={len(lines)} crc={crc:08x}"
    Path(path).write_text(header + "\n" + body + ("\n" if body else ""))
    return len(lines)


def load_trace(path: str | Path) -> list[Operation]:
    """Read a trace; raises :class:`CorruptionError` on any damage."""
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines or not lines[0].startswith(_MAGIC):
        raise CorruptionError(f"{path} is not an acheron trace")
    header_fields = dict(
        part.split("=", 1) for part in lines[0][len(_MAGIC) :].split() if "=" in part
    )
    try:
        count = int(header_fields["count"])
        expected_crc = int(header_fields["crc"], 16)
    except (KeyError, ValueError) as exc:
        raise CorruptionError(f"{path}: malformed trace header") from exc
    body_lines = lines[1:]
    if len(body_lines) != count:
        raise CorruptionError(
            f"{path}: header promises {count} operations, found {len(body_lines)}"
        )
    body = "\n".join(body_lines)
    if zlib.crc32(body.encode("utf-8")) != expected_crc:
        raise CorruptionError(f"{path}: trace body fails its checksum")
    return [_decode_line(line, i + 2) for i, line in enumerate(body_lines)]
