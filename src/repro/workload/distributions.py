"""Key-popularity distributions.

A *key picker* chooses an index into the current live-key population.  The
three shapes the evaluation uses:

* :class:`UniformKeyPicker` -- every live key equally likely (the paper's
  default workload assumption);
* :class:`ZipfianKeyPicker` -- the YCSB-style skewed distribution, where a
  few keys absorb most operations.  Implemented by inverse-CDF sampling
  over the exact Zipf probabilities (numpy ``searchsorted`` on a
  precomputed cumulative table), re-usable across population sizes by
  rescaling ranks;
* :class:`HotspotKeyPicker` -- a fraction of operations targets a small
  hot set, the rest spread uniformly.

All pickers draw from a seeded :class:`numpy.random.Generator`, so a
workload is a pure function of its spec.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

#: Size of the precomputed Zipf rank table.  Ranks are rescaled onto the
#: live population, so the table bounds resolution, not population size.
_ZIPF_TABLE_SIZE = 100_000


class UniformKeyPicker:
    """Uniform choice over ``population`` items."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def pick(self, population: int) -> int:
        if population <= 0:
            raise WorkloadError("cannot pick from an empty population")
        return int(self._rng.integers(0, population))


class ZipfianKeyPicker:
    """Zipf(theta) choice over ranks, rescaled to the live population.

    ``theta`` is the Zipf exponent (YCSB uses 0.99; larger is more
    skewed).  Rank 0 is the hottest item.
    """

    def __init__(self, rng: np.random.Generator, theta: float = 0.99) -> None:
        if theta <= 0:
            raise WorkloadError(f"zipf theta must be positive, got {theta}")
        self._rng = rng
        self.theta = theta
        ranks = np.arange(1, _ZIPF_TABLE_SIZE + 1, dtype=np.float64)
        weights = ranks**-theta
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def pick(self, population: int) -> int:
        if population <= 0:
            raise WorkloadError("cannot pick from an empty population")
        u = self._rng.random()
        rank = int(np.searchsorted(self._cdf, u, side="left"))
        # Rescale table rank onto the live population.
        return min(population - 1, rank * population // _ZIPF_TABLE_SIZE)


class HotspotKeyPicker:
    """``hot_fraction`` of picks land uniformly in the hottest
    ``hot_set_fraction`` of the population; the rest are uniform overall."""

    def __init__(
        self,
        rng: np.random.Generator,
        hot_fraction: float = 0.9,
        hot_set_fraction: float = 0.1,
    ) -> None:
        if not 0.0 < hot_fraction <= 1.0:
            raise WorkloadError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
        if not 0.0 < hot_set_fraction <= 1.0:
            raise WorkloadError(
                f"hot_set_fraction must be in (0, 1], got {hot_set_fraction}"
            )
        self._rng = rng
        self.hot_fraction = hot_fraction
        self.hot_set_fraction = hot_set_fraction

    def pick(self, population: int) -> int:
        if population <= 0:
            raise WorkloadError("cannot pick from an empty population")
        if self._rng.random() < self.hot_fraction:
            hot = max(1, int(population * self.hot_set_fraction))
            return int(self._rng.integers(0, hot))
        return int(self._rng.integers(0, population))


def make_key_picker(
    name: str,
    rng: np.random.Generator,
    zipf_theta: float = 0.99,
):
    """Build a picker by name: ``uniform``, ``zipfian``, or ``hotspot``."""
    if name == "uniform":
        return UniformKeyPicker(rng)
    if name == "zipfian":
        return ZipfianKeyPicker(rng, theta=zipf_theta)
    if name == "hotspot":
        return HotspotKeyPicker(rng)
    raise WorkloadError(f"unknown key distribution {name!r}")
