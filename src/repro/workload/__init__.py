"""Workload generation and execution.

Deterministic, seeded operation streams in the mixes the paper's
evaluation sweeps: inserts, updates, point deletes, point queries (hit and
empty), range queries, and secondary range deletes, over uniform or
Zipfian key popularity.  :mod:`repro.workload.runner` applies a stream to
an engine while attributing device I/O to each operation kind.
"""

from repro.workload.adversarial import (
    ADVERSARIES,
    HOT_SET_SLOTS,
    build_adversary,
    craft_bloom_defeating_keys,
    hot_set_keys,
)
from repro.workload.distributions import (
    HotspotKeyPicker,
    UniformKeyPicker,
    ZipfianKeyPicker,
    make_key_picker,
)
from repro.workload.spec import Operation, OpKind, WorkloadSpec
from repro.workload.generator import WorkloadGenerator, generate_operations
from repro.workload.runner import OpKindStats, WorkloadResult, run_workload
from repro.workload.trace import load_trace, record_trace

__all__ = [
    "ADVERSARIES",
    "HOT_SET_SLOTS",
    "HotspotKeyPicker",
    "OpKind",
    "OpKindStats",
    "Operation",
    "UniformKeyPicker",
    "WorkloadGenerator",
    "WorkloadResult",
    "WorkloadSpec",
    "ZipfianKeyPicker",
    "build_adversary",
    "craft_bloom_defeating_keys",
    "generate_operations",
    "hot_set_keys",
    "load_trace",
    "record_trace",
    "make_key_picker",
    "run_workload",
]
