"""Applying an operation stream to an engine, with per-kind accounting.

The runner is the measurement harness every benchmark builds on: it
executes operations against an :class:`~repro.core.engine.AcheronEngine`
(or a bare tree) and attributes device I/O -- pages read/written and
modeled microseconds -- to each operation kind by reading the disk's raw
counters before and after every call (three integer reads; measurement
does not perturb the experiment).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.workload.spec import Operation, OpKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import AcheronEngine


@dataclass
class OpKindStats:
    """Aggregated cost of all executed operations of one kind."""

    count: int = 0
    pages_read: int = 0
    pages_written: int = 0
    modeled_us: float = 0.0
    results_returned: int = 0  # hits for queries, rows for ranges

    @property
    def pages_read_per_op(self) -> float:
        return self.pages_read / self.count if self.count else 0.0

    @property
    def modeled_us_per_op(self) -> float:
        return self.modeled_us / self.count if self.count else 0.0


@dataclass
class WorkloadResult:
    """The outcome of one workload execution."""

    per_kind: dict[OpKind, OpKindStats] = field(default_factory=dict)
    operations: int = 0
    wall_seconds: float = 0.0
    #: Served-mode extras (``run_workload(connect=...)`` only): client
    #: count, per-request wall latencies in microseconds, and the
    #: client-side shed/reconnect counters.  None for embedded replays.
    served: dict | None = None

    def kind(self, kind: OpKind) -> OpKindStats:
        return self.per_kind.setdefault(kind, OpKindStats())

    @property
    def total_modeled_us(self) -> float:
        return sum(s.modeled_us for s in self.per_kind.values())

    def modeled_throughput_ops_per_s(self) -> float:
        """Operations per second of *modeled device time* -- the
        throughput figure the benchmark tables report."""
        total_s = self.total_modeled_us / 1e6
        return self.operations / total_s if total_s else float("inf")


#: Operation kinds that the engine's batch API can absorb.
_BATCHABLE = frozenset({OpKind.INSERT, OpKind.UPDATE, OpKind.POINT_DELETE})


def run_workload(
    engine: "AcheronEngine",
    operations: Iterable[Operation],
    secondary_delete_window: float = 0.05,
    ingest_batch: int | None = None,
    writers: int | None = None,
    secondary_delete_method: str = "auto",
    connect: str | None = None,
    clients: int | None = None,
) -> WorkloadResult:
    """Execute ``operations`` against ``engine`` with per-kind accounting.

    ``secondary_delete_window``: a SECONDARY_RANGE_DELETE op targets the
    oldest this-fraction of the elapsed time domain (resolved against the
    engine clock at execution, matching the "purge old data" use case).

    ``secondary_delete_method``: forwarded to
    :meth:`AcheronEngine.delete_range` for every secondary delete --
    ``"lazy"`` records an O(1) range-tombstone fence instead of
    rewriting files eagerly.

    ``ingest_batch``: when set (>= 2), consecutive operations of the same
    ingest kind (insert/update/point-delete) are grouped into batches of at
    most this size and applied through :meth:`AcheronEngine.apply_batch`.
    The engine guarantees batch application is behaviourally identical to
    per-op application, so results (including simulated I/O) are unchanged;
    only the Python-level overhead drops.  Per-kind attribution is exact
    because each batch is homogeneous in kind.

    ``writers``: when set (>= 2), consecutive *ingest* operations (any mix
    of insert/update/point-delete) are replayed by this many concurrent
    writer threads, partitioned so every key's operations stay on one
    thread in stream order -- final engine contents match the serial
    replay exactly.  Against a :class:`~repro.shard.engine.ShardedEngine`
    the pool is *shard-affine*: keys route by the engine's partition map
    (``shard_for(key) % writers``), so each shard tree is only ever
    touched by one writer thread and the replay is safe even when the
    per-shard trees run serial write paths.  Single-tree engines shard by
    key hash instead.  Non-ingest operations act as barriers (the pool
    drains, the op runs on the calling thread).  Meant for engines opened
    with ``workers > 1`` (or sharded engines); a *serial* single-tree
    engine is replayed sequentially -- per-key order still holds, so
    contents are identical, only the concurrency is gone.  Exception:
    a **fault-injected** engine is refused with :class:`WorkloadError`
    rather than silently degraded -- fault schedules are visit-ordered,
    so a silently serial (or thread-racing) replay would fire them at
    different points than the caller armed them for.  Takes precedence
    over ``ingest_batch``.

    ``connect``: when set (``"HOST:PORT"``), the stream replays against a
    live :class:`~repro.server.core.EngineServer` at that address instead
    of an embedded engine -- pass ``engine=None``.  ``clients`` (default
    1) concurrent connections replay consecutive ingest chunks with the
    same shard-affine partitioning ``writers`` uses (the server's
    partition map decides, fetched via ping), each connection pipelining
    its lane; non-ingest operations are barriers executed on the calling
    thread.  Per-key order therefore matches the serial replay and final
    served contents are digest-equivalent to the embedded ones.  Modeled
    microseconds come from the per-request server-side cost in each
    response (exact per-kind attribution); page counts are not carried
    over the wire and stay 0.  Wall latencies and client-side
    shed/reconnect counters land in :attr:`WorkloadResult.served`.
    """
    result = WorkloadResult()
    started = time.perf_counter()
    if connect is not None:
        if engine is not None:
            raise WorkloadError(
                "run_workload(connect=...) drives a remote server; pass "
                "engine=None (an embedded engine cannot apply remotely)"
            )
        _run_served(
            connect,
            operations,
            secondary_delete_window,
            max(1, clients or 1),
            result,
            secondary_delete_method,
        )
        result.wall_seconds = time.perf_counter() - started
        return result
    if clients is not None:
        raise WorkloadError("run_workload(clients=...) requires connect=...")
    if writers is not None and writers >= 2:
        if getattr(engine, "faults", None) is not None:
            raise WorkloadError(
                f"run_workload(writers={writers}) refused: the engine is "
                "fault-injected, and multi-writer replay would reorder "
                "fault-point visits (or silently fall back to serial on a "
                "serial tree).  Replay fault-injected engines with "
                "writers=None."
            )
        _run_multi(
            engine,
            operations,
            secondary_delete_window,
            writers,
            result,
            secondary_delete_method,
        )
    elif ingest_batch is not None and ingest_batch >= 2:
        _run_batched(
            engine,
            operations,
            secondary_delete_window,
            ingest_batch,
            result,
            secondary_delete_method,
        )
    else:
        for op in operations:
            _run_one(engine, op, secondary_delete_window, result, secondary_delete_method)
    result.wall_seconds = time.perf_counter() - started
    return result


def _run_one(
    engine: "AcheronEngine",
    op: Operation,
    window: float,
    result: WorkloadResult,
    method: str = "auto",
) -> None:
    stats = engine.disk.stats
    before_read = stats.pages_read
    before_written = stats.pages_written
    before_us = stats.modeled_us
    returned = _apply(engine, op, window, method)
    agg = result.kind(op.kind)
    agg.count += 1
    agg.pages_read += stats.pages_read - before_read
    agg.pages_written += stats.pages_written - before_written
    agg.modeled_us += stats.modeled_us - before_us
    agg.results_returned += returned
    result.operations += 1


def _run_batched(
    engine: "AcheronEngine",
    operations: Iterable[Operation],
    window: float,
    batch_size: int,
    result: WorkloadResult,
    method: str = "auto",
) -> None:
    pending: list[Operation] = []

    def drain() -> None:
        if not pending:
            return
        kind = pending[0].kind
        stats = engine.disk.stats
        before_read = stats.pages_read
        before_written = stats.pages_written
        before_us = stats.modeled_us
        if kind is OpKind.POINT_DELETE:
            engine.apply_batch(("delete", op.key) for op in pending)
        else:
            engine.put_many((op.key, op.value) for op in pending)
        agg = result.kind(kind)
        agg.count += len(pending)
        agg.pages_read += stats.pages_read - before_read
        agg.pages_written += stats.pages_written - before_written
        agg.modeled_us += stats.modeled_us - before_us
        result.operations += len(pending)
        pending.clear()

    for op in operations:
        if op.kind in _BATCHABLE:
            if pending and (pending[0].kind is not op.kind or len(pending) >= batch_size):
                drain()
            pending.append(op)
            continue
        drain()
        _run_one(engine, op, window, result, method)
    drain()


def _run_multi(
    engine: "AcheronEngine",
    operations: Iterable[Operation],
    window: float,
    writers: int,
    result: WorkloadResult,
    method: str = "auto",
) -> None:
    """Replay with ``writers`` concurrent ingest threads.

    Consecutive ingest operations form a chunk; each chunk is partitioned
    across ``writers`` threads -- shard-affine for sharded engines (the
    partition map decides, so one shard tree never sees two threads), by
    key hash otherwise -- so all operations on one key stay on one thread
    in stream order and last-writer-wins outcomes match the serial replay
    exactly.  Non-ingest operations are barriers: the pool joins, the op
    runs on the calling thread, then the next chunk begins.

    I/O attribution is *pooled per chunk*: with background flushes and
    compactions overlapping many writers there is no per-op device
    delta to read, so the chunk's total delta is split across its
    operation kinds in proportion to their counts (modeled microseconds
    exactly; pages by largest-remainder so totals still reconcile).
    Throughput derived from these numbers is *ack* throughput -- the
    engine may still be draining background work when the replay ends;
    callers wanting at-rest figures should follow with
    ``engine.tree.write_barrier()`` and measure the extra wall time.
    """
    import threading

    pending: list[Operation] = []
    partition_map = getattr(engine, "partition_map", None)
    if partition_map is not None:
        route = lambda key: partition_map.shard_for(key) % writers  # noqa: E731
    else:
        route = lambda key: hash(key) % writers  # noqa: E731
    # A serial single-tree write path is not thread-safe; such engines
    # are replayed sequentially (documented in run_workload).  Sharded
    # engines always run threaded: shard-affinity guarantees each shard
    # tree is owned by exactly one thread, serial write path or not.
    tree = getattr(engine, "tree", None)
    threaded = partition_map is not None or (
        tree is not None and tree.write_path is not None
    )

    def drain() -> None:
        if not pending:
            return
        shards: list[list[tuple]] = [[] for _ in range(writers)]
        counts: dict[OpKind, int] = {}
        for op in pending:
            if op.kind is OpKind.POINT_DELETE:
                shards[route(op.key)].append(("delete", op.key))
            else:
                shards[route(op.key)].append(("put", op.key, op.value))
            counts[op.kind] = counts.get(op.kind, 0) + 1
        stats = engine.disk.stats
        before_read = stats.pages_read
        before_written = stats.pages_written
        before_us = stats.modeled_us
        errors: list[BaseException] = []

        def writer(ops: list[tuple]) -> None:
            try:
                engine.apply_batch(ops)
            except BaseException as exc:  # surfaced to the caller below
                errors.append(exc)

        if not threaded:
            # Serial tree: its write path is not thread-safe, so apply
            # the shards sequentially.  Per-key order still holds (each
            # key lives in exactly one shard), so final contents match.
            for shard in shards:
                if shard:
                    engine.apply_batch(shard)
        else:
            threads = [
                threading.Thread(target=writer, args=(shard,), name=f"repro-writer-{i}")
                for i, shard in enumerate(shards)
                if shard
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
        delta_read = stats.pages_read - before_read
        delta_written = stats.pages_written - before_written
        delta_us = stats.modeled_us - before_us
        total = len(pending)
        remaining_read, remaining_written = delta_read, delta_written
        kinds = sorted(counts, key=lambda k: counts[k])
        for i, kind in enumerate(kinds):
            share = counts[kind]
            agg = result.kind(kind)
            agg.count += share
            agg.modeled_us += delta_us * (share / total)
            if i == len(kinds) - 1:  # largest kind absorbs the remainder
                agg.pages_read += remaining_read
                agg.pages_written += remaining_written
            else:
                part_read = delta_read * share // total
                part_written = delta_written * share // total
                agg.pages_read += part_read
                agg.pages_written += part_written
                remaining_read -= part_read
                remaining_written -= part_written
        result.operations += total
        pending.clear()

    for op in operations:
        if op.kind in _BATCHABLE:
            pending.append(op)
            continue
        drain()
        _run_one(engine, op, window, result, method)
    drain()


def _run_served(
    address: str,
    operations: Iterable[Operation],
    window: float,
    clients: int,
    result: WorkloadResult,
    method: str = "auto",
) -> None:
    """Replay against a live server with ``clients`` pipelined connections.

    Mirrors :func:`_run_multi`'s structure one-for-one -- consecutive
    ingest chunks partition shard-affinely across client connections (the
    server's partition map routes, so one shard's keys stay on one
    connection in stream order), non-ingest operations barrier on the
    calling thread -- which is what keeps a served replay
    digest-equivalent to an embedded one.  Attribution is exact, not
    pooled: every response carries the modeled microseconds its request
    cost on the server.
    """
    import threading

    from repro.server.client import EngineClient
    from repro.server.protocol import Op
    from repro.shard.partition import PartitionMap

    latencies: list[float] = []
    modeled: list[float] = []
    served: dict = {"address": address, "clients": clients}
    with EngineClient(address, pool_size=clients) as client:
        info = client.ping()  # readiness + topology in one round trip
        pmap = PartitionMap(list(info["boundaries"]))
        conns = [client.acquire() for _ in range(clients)]
        pending: list[Operation] = []
        try:

            def drain() -> None:
                if not pending:
                    return
                lanes: list[list[tuple[OpKind, tuple[int, object]]]] = [
                    [] for _ in range(clients)
                ]
                for op in pending:
                    if op.kind is OpKind.POINT_DELETE:
                        request = (Op.DELETE, (op.key,))
                    else:
                        request = (Op.PUT, (op.key, op.value, None))
                    lanes[pmap.shard_for(op.key) % clients].append((op.kind, request))
                outcomes: list[list | None] = [None] * clients
                errors: list[BaseException] = []

                def lane_worker(index: int) -> None:
                    try:
                        outcomes[index] = conns[index].pipeline(
                            [request for _, request in lanes[index]]
                        )
                    except BaseException as exc:  # surfaced below
                        errors.append(exc)

                busy = [i for i in range(clients) if lanes[i]]
                if len(busy) == 1:
                    lane_worker(busy[0])
                else:
                    threads = [
                        threading.Thread(
                            target=lane_worker, args=(i,), name=f"repro-client-{i}"
                        )
                        for i in busy
                    ]
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                if errors:
                    raise errors[0]
                for lane, outcome in zip(lanes, outcomes):
                    if outcome is None:
                        continue
                    for (kind, _), call in zip(lane, outcome):
                        agg = result.kind(kind)
                        agg.count += 1
                        agg.modeled_us += call.cost_us
                        latencies.append(call.wall_us)
                        modeled.append(call.cost_us)
                result.operations += len(pending)
                pending.clear()

            def barrier_op(op: Operation) -> None:
                conn = conns[0]
                kind = op.kind
                if kind is OpKind.POINT_QUERY or kind is OpKind.EMPTY_QUERY:
                    call = conn.call(Op.GET, (op.key,))
                    returned = 1 if call.result[0] else 0
                elif kind is OpKind.RANGE_QUERY:
                    call = conn.call(Op.SCAN, (op.key, op.key_hi, None, False))
                    returned = len(call.result)
                elif kind is OpKind.SECONDARY_RANGE_DELETE:
                    now = conn.call(Op.PING, None).result["tick"]
                    hi = max(0, int(now * window))
                    call = conn.call(Op.DELETE_RANGE, (0, hi, method))
                    returned = call.result["entries_deleted"]
                else:  # pragma: no cover - _BATCHABLE ops never reach here
                    raise ValueError(f"unhandled operation kind {kind}")
                agg = result.kind(kind)
                agg.count += 1
                agg.modeled_us += call.cost_us
                agg.results_returned += returned
                latencies.append(call.wall_us)
                modeled.append(call.cost_us)
                result.operations += 1

            for op in operations:
                if op.kind in _BATCHABLE:
                    pending.append(op)
                    continue
                drain()
                barrier_op(op)
            drain()
            served["sheds_seen"] = sum(c.sheds_seen for c in conns)
            served["reconnects"] = sum(c.reconnects for c in conns)
        finally:
            for conn in conns:
                client.release(conn)
    served["latencies_us"] = latencies
    served["modeled_latencies_us"] = modeled
    result.served = served


def _apply(
    engine: "AcheronEngine", op: Operation, window: float, method: str = "auto"
) -> int:
    """Execute one operation; returns how many results it produced."""
    kind = op.kind
    if kind is OpKind.INSERT or kind is OpKind.UPDATE:
        engine.put(op.key, op.value)
        return 0
    if kind is OpKind.POINT_DELETE:
        engine.delete(op.key)
        return 0
    if kind is OpKind.POINT_QUERY or kind is OpKind.EMPTY_QUERY:
        sentinel = object()
        return 0 if engine.get(op.key, default=sentinel) is sentinel else 1
    if kind is OpKind.RANGE_QUERY:
        return sum(1 for _ in engine.scan(op.key, op.key_hi))
    if kind is OpKind.SECONDARY_RANGE_DELETE:
        now = engine.clock.now()
        hi = max(0, int(now * window))
        report = engine.delete_range(0, hi, method=method)
        return report.entries_deleted
    raise ValueError(f"unhandled operation kind {kind}")  # pragma: no cover
