"""Seeded adversarial workload generators.

*LSM Trees in Adversarial Environments* shows that an adversary who
controls the key stream can attack exactly the structures our benign
benchmarks celebrate: Bloom filters (pre-compute false positives against
the public hash scheme), the block cache (one-hit-wonder and
negative-lookup floods), the shard router (concentrate every write on one
range), and FADE's ``D_th`` ledger (tombstone churn).  This module builds
those attacks as ordinary :class:`~repro.workload.spec.Operation` streams
-- seeded, deterministic, and runnable through
:func:`~repro.workload.runner.run_workload` and the CLI -- so the
perfsuite can measure each defense against the *same* stream its
undefended counterpart faces.

Every builder shares one signature::

    build(seed=..., preload=..., operations=..., **knobs) -> list[Operation]

and is registered in :data:`ADVERSARIES` under its attack name.  The hot
set convention: attacks that measure cache residency treat the first
:data:`HOT_SET_SLOTS` preloaded slots as the victim working set (see
:func:`hot_set_keys`); harnesses probe those keys after the flood to
measure what survived.

The bloom-defeat crafting is honest about the threat model: the attacker
knows the *public* hash scheme (the repo's own
:class:`~repro.filters.bloom.BloomFilter` with ``salt=None``) and the
engine's flush batching, but not a defended tree's secret salt -- so the
crafted stream is identical for defended and undefended arms, and the
salt's whole value is that the same stream stops working.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import WorkloadError
from repro.filters.bloom import BloomFilter
from repro.workload.generator import KEY_STRIDE
from repro.workload.spec import Operation, OpKind

#: Default size of the cache-residency victim working set (see
#: :func:`hot_set_keys`).
HOT_SET_SLOTS = 16


def hot_set_keys(preload: int, count: int = HOT_SET_SLOTS) -> list[int]:
    """The victim working-set keys for the cache-flood attacks.

    ``count`` preloaded slots spaced evenly across ``[0, preload)`` -- far
    enough apart (with the default ``entries_per_page``) that every hot
    key lives on its own page, so "the hot set stayed resident" is a
    per-page claim the harness can measure by probing these keys and
    counting page reads.
    """
    stride = max(1, preload // count)
    return [(i * stride) * KEY_STRIDE for i in range(count)]


def _preload_ops(preload: int, value_template: str = "v{key}") -> list[Operation]:
    """Sequential inserts of slots ``0..preload-1`` (deterministic layout:
    with a memtable of ``M`` entries, flush ``i`` holds exactly slots
    ``[i*M, (i+1)*M)`` -- the knowledge the bloom-defeat crafting uses)."""
    ops = []
    for slot in range(preload):
        key = slot * KEY_STRIDE
        ops.append(
            Operation(OpKind.INSERT, key=key, value=value_template.format(key=key))
        )
    return ops


# ---------------------------------------------------------------------------
# bloom defeat
# ---------------------------------------------------------------------------
def craft_bloom_defeating_keys(
    rng: np.random.Generator,
    preload: int,
    memtable_entries: int,
    bits_per_key: float,
) -> list[int]:
    """Absent keys guaranteed to pass an *unsalted* engine's file filters.

    The attacker replays the engine's own construction offline: sequential
    preload + a ``memtable_entries`` buffer means file ``i`` holds exactly
    key slots ``[i*M, (i+1)*M)``, so its filter can be rebuilt locally
    (``salt=None`` -- the public scheme) and probed with every absent key
    inside the file's key span (non-multiples of :data:`KEY_STRIDE`, which
    also fall inside the file's fence range, so only the filter stands
    between the query and a page read).  Every key returned is a certain
    false positive against the unsalted filter; against a salted filter
    the same keys degrade to the baseline FP rate.
    """
    crafted: list[int] = []
    for start in range(0, preload, memtable_entries):
        slots = range(start, min(start + memtable_entries, preload))
        if len(slots) < 2:
            continue
        sim = BloomFilter.build([s * KEY_STRIDE for s in slots], bits_per_key)
        lo = slots[0] * KEY_STRIDE
        hi = slots[-1] * KEY_STRIDE
        candidates = [k for k in range(lo + 1, hi) if k % KEY_STRIDE]
        rng.shuffle(candidates)
        crafted.extend(k for k in candidates if sim.might_contain(k))
    return crafted


def bloom_defeat(
    seed: int = 0xBAD,
    preload: int = 4096,
    operations: int = 8192,
    memtable_entries: int = 512,
    bits_per_key: float = 10.0,
    **_: Any,
) -> list[Operation]:
    """Empty-point queries pre-computed to pass every unsalted filter.

    Degradation metric: the filter's observed FP rate
    (``lookup_probes / (lookup_probes + lookup_skips_bloom)``) -- ~1.0
    undefended, the configured FP budget under a salted tree.
    """
    rng = np.random.default_rng(seed)
    ops = _preload_ops(preload)
    crafted = craft_bloom_defeating_keys(rng, preload, memtable_entries, bits_per_key)
    if not crafted:
        raise WorkloadError(
            "bloom_defeat found no false positives to craft (preload too small?)"
        )
    for i in range(operations):
        ops.append(Operation(OpKind.EMPTY_QUERY, key=crafted[i % len(crafted)]))
    return ops


# ---------------------------------------------------------------------------
# cache floods
# ---------------------------------------------------------------------------
def _establish_hot_set(keys: list[int], rounds: int = 4) -> list[Operation]:
    """Repeated point queries that make the hot set cache-resident (and,
    on a hardened cache, frequency-credited)."""
    ops = []
    for _ in range(rounds):
        for key in keys:
            ops.append(Operation(OpKind.POINT_QUERY, key=key))
    return ops


def empty_flood(
    seed: int = 0xBAD,
    preload: int = 4096,
    operations: int = 8192,
    memtable_entries: int = 512,
    bits_per_key: float = 10.0,
    hot: int = HOT_SET_SLOTS,
    hot_every: int = 256,
    **_: Any,
) -> list[Operation]:
    """An empty-point-query storm aimed at evicting the cache's hot set.

    The flood keys are bloom-defeating (see :func:`bloom_defeat`) so each
    one forces a page read on an undefended tree; the page is cached
    purely to answer "not found", displacing the hot set.  Every
    ``hot_every``-th operation re-touches a hot key -- rarely enough that
    recency alone cannot protect the hot pages against the intervening
    flood, which is the point of the attack.  Defense: the
    negative-lookup guard drops the flood's pages on admission; the salt
    removes the page reads entirely.
    """
    rng = np.random.default_rng(seed)
    hot_keys = hot_set_keys(preload, hot)
    ops = _preload_ops(preload)
    ops.extend(_establish_hot_set(hot_keys))
    crafted = craft_bloom_defeating_keys(rng, preload, memtable_entries, bits_per_key)
    if not crafted:
        raise WorkloadError("empty_flood could not craft its bloom-defeating keys")
    hot_i = flood_i = 0
    for i in range(operations):
        if hot_every and i % hot_every == hot_every - 1:
            ops.append(Operation(OpKind.POINT_QUERY, key=hot_keys[hot_i % hot]))
            hot_i += 1
        else:
            ops.append(
                Operation(OpKind.EMPTY_QUERY, key=crafted[flood_i % len(crafted)])
            )
            flood_i += 1
    return ops


def one_hit_flood(
    seed: int = 0xBAD,
    preload: int = 4096,
    operations: int = 8192,
    hot: int = HOT_SET_SLOTS,
    hot_every: int = 32,
    **_: Any,
) -> list[Operation]:
    """A one-hit-wonder flood: each cold live key is queried exactly once.

    Every flood query is a legitimate hit on a distinct cold key, so its
    page is read and admitted -- and never touched again.  On an
    unhardened cache the flood both fills capacity and drives the
    frequency filter's halving decay until the hot set's admission credit
    is gone.  The doorkeeper defense gives first-touch keys no credit and
    no decay pressure, so the hot set stays resident.

    Note the cache works at *page* granularity: with the default
    ``entries_per_page`` a flood over a small key space revisits the same
    pages often enough to make them legitimately warm, which no frequency
    policy can (or should) reject.  Use a ``preload`` much larger than
    ``capacity * entries_per_page`` so the flood's page touches stay
    one-hit-ish -- the perfsuite spec uses 32k keys against a 48-page
    cache.
    """
    rng = np.random.default_rng(seed)
    if preload <= hot * 2:
        raise WorkloadError(f"preload ({preload}) must exceed twice the hot set ({hot})")
    hot_keys = hot_set_keys(preload, hot)
    hot_slots = {k // KEY_STRIDE for k in hot_keys}
    ops = _preload_ops(preload)
    ops.extend(_establish_hot_set(hot_keys))
    cold = np.array([s for s in range(preload) if s not in hot_slots])
    rng.shuffle(cold)
    hot_i = flood_i = 0
    for i in range(operations):
        if hot_every and i % hot_every == hot_every - 1:
            ops.append(Operation(OpKind.POINT_QUERY, key=hot_keys[hot_i % hot]))
            hot_i += 1
        else:
            slot = int(cold[flood_i % len(cold)])
            ops.append(Operation(OpKind.POINT_QUERY, key=slot * KEY_STRIDE))
            flood_i += 1
    return ops


# ---------------------------------------------------------------------------
# hot-shard write storm
# ---------------------------------------------------------------------------
def hot_shard_storm(
    seed: int = 0xBAD,
    preload: int = 4096,
    operations: int = 8192,
    storm_span: int | None = None,
    **_: Any,
) -> list[Operation]:
    """A write storm concentrated on the lowest slice of the key space.

    After a uniform preload, every storm write updates a key inside
    ``[0, storm_span)`` slots (default: the first eighth of the preload)
    -- with a range-partitioned deployment, all of it lands on one shard.
    Undefended, that shard's pipeline absorbs ~100% of the write load;
    with auto-split armed, the persistent hot window triggers a
    crash-recoverable split and the storm's range is served by two trees.
    """
    rng = np.random.default_rng(seed)
    span = storm_span or max(2, preload // 8)
    ops = _preload_ops(preload)
    slots = rng.integers(0, span, size=operations)
    for i in range(operations):
        key = int(slots[i]) * KEY_STRIDE
        ops.append(Operation(OpKind.UPDATE, key=key, value=f"storm{key}"))
    return ops


# ---------------------------------------------------------------------------
# tombstone churn
# ---------------------------------------------------------------------------
def tombstone_churn(
    seed: int = 0xBAD,
    preload: int = 4096,
    operations: int = 8192,
    **_: Any,
) -> list[Operation]:
    """Delete/insert churn that presses the FADE ``D_th`` deadline.

    Oldest-first deletes maximize every tombstone's age before its level
    compacts; the interleaved fresh inserts keep the tree growing so the
    tombstones keep riding shallow levels (the worst case for the
    paper's deadline).  Degradation metric: deadline violations and the
    oldest pending tombstone age vs ``D_th`` -- a FADE tree holds them at
    zero / bounded at extra compaction cost, a baseline tree does not.
    """
    ops = _preload_ops(preload)
    live = list(range(preload))
    next_slot = preload
    delete_i = 0
    for i in range(operations):
        if i % 2 == 0 and delete_i < len(live):
            # Oldest live slot first: its tombstone has the longest
            # remaining life to overstay.
            slot = live[delete_i]
            delete_i += 1
            ops.append(Operation(OpKind.POINT_DELETE, key=slot * KEY_STRIDE))
        else:
            key = next_slot * KEY_STRIDE
            next_slot += 1
            ops.append(Operation(OpKind.INSERT, key=key, value=f"v{key}"))
    return ops


#: name -> builder.  All builders share the (seed, preload, operations,
#: **knobs) signature and ignore unknown keyword knobs.
ADVERSARIES: dict[str, Callable[..., list[Operation]]] = {
    "bloom_defeat": bloom_defeat,
    "empty_flood": empty_flood,
    "one_hit_flood": one_hit_flood,
    "hot_shard_storm": hot_shard_storm,
    "tombstone_churn": tombstone_churn,
}


def build_adversary(
    name: str,
    seed: int = 0xBAD,
    preload: int = 4096,
    operations: int = 8192,
    **knobs: Any,
) -> list[Operation]:
    """Build the named attack stream (see :data:`ADVERSARIES`)."""
    try:
        builder = ADVERSARIES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown adversary {name!r}; known: {', '.join(sorted(ADVERSARIES))}"
        ) from None
    return builder(seed=seed, preload=preload, operations=operations, **knobs)
