"""Operational tooling: the store doctor and the command-line interface."""

from repro.tools.doctor import DoctorReport, diagnose_store

__all__ = ["DoctorReport", "diagnose_store"]
