"""Operational tooling: the store doctor and the command-line interface."""

from repro.tools.doctor import (
    DoctorReport,
    diagnose_store,
    examine_read_path,
    examine_write_path,
)

__all__ = [
    "DoctorReport",
    "diagnose_store",
    "examine_read_path",
    "examine_write_path",
]
