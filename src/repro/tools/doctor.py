"""The store doctor: offline integrity checking for durable directories.

``diagnose_store(path)`` inspects a directory written by a durable engine
and verifies, without mutating anything:

1. the manifest is readable and carries a valid config;
2. every SSTable the manifest references exists and decodes cleanly
   (checksums verified page by page);
3. no orphan SSTables sit outside the manifest (warning, not error --
   a crash between file write and manifest swap legitimately leaves one);
4. runs are key-partitioned and file metadata is internally consistent;
5. the version invariant holds across levels (shallower copies of a key
   are newer);
6. the WAL replays (a torn tail is normal; interior corruption is not).

``scrub_store(path)`` is the cheaper, checksum-first sibling: it verifies
the whole-file checksum of **every** SSTable on disk (referenced or not),
validates the manifest's integrity envelope (epoch + CRC), and replays the
WAL -- without decoding entries or checking cross-file invariants.  It is
what a periodic background scrubber would run: a bit-flipped file is
*reported*, never silently served.

The result is a :class:`DoctorReport` -- render it with ``.render()`` or
check ``.healthy``.  Used by ``python -m repro.cli verify`` / ``scrub``
and directly via ``python -m repro.tools.doctor <diagnose|scrub> DIR``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.config import LSMConfig
from repro.errors import AcheronError, ConfigError, CorruptionError, StorageError
from repro.lsm.page import DeleteTile, Page
from repro.lsm.run import SSTableFile
from repro.storage.filestore import FileStore
from repro.storage.wal import WriteAheadLog


@dataclass
class DoctorReport:
    """Findings of one :func:`diagnose_store` pass."""

    directory: str
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    checks_passed: list[str] = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def passed(self, check: str) -> None:
        self.checks_passed.append(check)

    def render(self) -> str:
        lines = [f"store doctor: {self.directory}"]
        for check in self.checks_passed:
            lines.append(f"  [ok]   {check}")
        for warning in self.warnings:
            lines.append(f"  [warn] {warning}")
        for error in self.errors:
            lines.append(f"  [FAIL] {error}")
        verdict = "HEALTHY" if self.healthy else "CORRUPT"
        extras = ", ".join(f"{k}={v}" for k, v in self.stats.items())
        lines.append(f"  => {verdict}" + (f" ({extras})" if extras else ""))
        return "\n".join(lines)


def diagnose_store(directory: str | Path) -> DoctorReport:
    """Run every integrity check against ``directory`` (read-only).

    A sharded root (marked by ``SHARDS.json``) is diagnosed shard by
    shard: the root manifest is validated first, then every shard
    directory gets the full single-tree diagnosis, findings merged under
    a ``shard-NN:`` prefix.
    """
    from repro.shard.manifest import is_sharded_root

    if is_sharded_root(directory):
        return _check_sharded(directory, diagnose_store, "diagnose")
    report = DoctorReport(directory=str(directory))
    store = FileStore(directory)

    manifest = _check_manifest(store, report)
    if manifest is None:
        return report

    files_by_level = _check_sstables(store, manifest, report)
    _check_runs(files_by_level, report)
    _check_version_invariant(manifest, files_by_level, report)
    _check_wal(store, report)
    return report


def _check_manifest(store: FileStore, report: DoctorReport) -> dict | None:
    try:
        manifest = store.read_manifest()
    except CorruptionError as exc:
        report.error(f"manifest unreadable: {exc}")
        return None
    if manifest is None:
        report.error("no manifest: not an initialized store")
        return None
    report.passed("manifest readable")
    for key in ("levels", "next_file_id", "seqno", "clock"):
        if key not in manifest:
            report.error(f"manifest missing field {key!r}")
            return None
    if "config" in manifest:
        try:
            config = LSMConfig.from_dict(manifest["config"])
            report.passed("recorded config valid")
        except ConfigError as exc:
            report.error(f"recorded config invalid: {exc}")
        else:
            _check_bloom_salt(config, manifest, report)
    else:
        report.warn("manifest records no config (pre-1.0 store)")
    return manifest


def _check_bloom_salt(
    config: LSMConfig, manifest: dict, report: DoctorReport
) -> None:
    """Verify the persisted bloom salt matches the recorded config.

    A salted store that loses its salt silently rebuilds every filter
    under a fresh key on reopen -- correct, but it discards the very
    secret the defense depends on, so the doctor surfaces it.
    """
    salt_hex = manifest.get("bloom_salt")
    if config.bloom_salted:
        if not salt_hex:
            report.warn(
                "config opts into salted blooms but the manifest records no "
                "bloom_salt (reopen will rekey every filter)"
            )
            return
        try:
            salt = bytes.fromhex(salt_hex)
        except (TypeError, ValueError):
            report.error(f"bloom_salt is not valid hex: {salt_hex!r}")
            return
        if len(salt) < 8:
            report.warn(
                f"bloom_salt is only {len(salt)} bytes (crafted-key "
                "resistance wants >= 8)"
            )
        else:
            report.passed(f"bloom salt persisted ({len(salt)} bytes)")
    elif salt_hex:
        report.warn(
            "manifest records a bloom_salt but the config has salting off "
            "(stale key from a previously defended store)"
        )


def _check_sstables(
    store: FileStore, manifest: dict, report: DoctorReport
) -> dict[int, list[list[SSTableFile]]]:
    """Load every referenced SSTable; returns {level: [run file lists]}."""
    files_by_level: dict[int, list[list[SSTableFile]]] = {}
    referenced: set[int] = set()
    broken = 0
    for level_offset, run_lists in enumerate(manifest["levels"]):
        level_index = level_offset + 1
        files_by_level[level_index] = []
        for file_ids in run_lists:
            run_files: list[SSTableFile] = []
            for file_id in file_ids:
                referenced.add(file_id)
                try:
                    tiles_entries, meta = store.read_sstable(file_id)
                    tiles = [
                        DeleteTile([Page(page) for page in pages])
                        for pages in tiles_entries
                    ]
                    file = SSTableFile(
                        file_id,
                        tiles,
                        bloom=_NullBloom(),
                        created_at=meta.get("created_at", 0),
                    )
                    file.check_invariants()
                    run_files.append(file)
                except (AcheronError, AssertionError, ValueError) as exc:
                    broken += 1
                    report.error(f"sstable {file_id} (L{level_index}): {exc}")
            files_by_level[level_index].append(run_files)
    if not broken:
        report.passed(f"all {len(referenced)} referenced sstables decode and self-check")
    orphans = [fid for fid in store.list_sstable_ids() if fid not in referenced]
    if orphans:
        report.warn(f"{len(orphans)} orphan sstable(s) not in the manifest: {orphans}")
    else:
        report.passed("no orphan sstables")
    report.stats["sstables"] = len(referenced)
    report.stats["entries"] = sum(
        f.entry_count for runs in files_by_level.values() for run in runs for f in run
    )
    return files_by_level


def _check_runs(
    files_by_level: dict[int, list[list[SSTableFile]]], report: DoctorReport
) -> None:
    bad = 0
    for level_index, runs in files_by_level.items():
        for run_files in runs:
            ordered = sorted(run_files, key=lambda f: f.min_key)
            for left, right in zip(ordered, ordered[1:]):
                if right.min_key <= left.max_key:
                    bad += 1
                    report.error(
                        f"L{level_index}: files {left.file_id} and {right.file_id} "
                        "overlap within one run"
                    )
    if not bad:
        report.passed("runs are key-partitioned")


def _check_version_invariant(
    manifest: dict,
    files_by_level: dict[int, list[list[SSTableFile]]],
    report: DoctorReport,
) -> None:
    """Shallower versions of a key must be newer, and no seqno may exceed
    the manifest's recorded high-water mark."""
    best_seqno: dict[Any, int] = {}
    max_seen = 0
    violations = 0
    for level_index in sorted(files_by_level):
        level_best: dict[Any, int] = {}
        for run_files in files_by_level[level_index]:
            for file in run_files:
                for entry in file.iter_all_entries():
                    max_seen = max(max_seen, entry.seqno)
                    prev = best_seqno.get(entry.key)
                    if prev is not None and entry.seqno >= prev:
                        violations += 1
                    existing = level_best.get(entry.key)
                    if existing is None or entry.seqno > existing:
                        level_best[entry.key] = entry.seqno
        best_seqno.update(level_best)
    if violations:
        report.error(f"{violations} cross-level version-order violations")
    else:
        report.passed("cross-level version ordering holds")
    if max_seen > manifest["seqno"]:
        report.error(
            f"entry seqno {max_seen} exceeds the manifest's high-water mark "
            f"{manifest['seqno']}"
        )
    else:
        report.passed("sequence-number high-water mark consistent")


def _check_wal(store: FileStore, report: DoctorReport) -> None:
    try:
        entries = list(WriteAheadLog.replay(store.wal_path))
    except CorruptionError as exc:
        report.error(f"WAL corrupt before its tail: {exc}")
        return
    report.passed(f"WAL replays ({len(entries)} buffered entries)")
    report.stats["wal_entries"] = len(entries)


class _NullBloom:
    """Stand-in filter for offline inspection (always 'maybe')."""

    size_bytes = 0
    probes = 0

    def might_contain(self, key: Any) -> bool:  # pragma: no cover - trivial
        return True


# ---------------------------------------------------------------------------
# live read-path examination
# ---------------------------------------------------------------------------
def examine_read_path(tree: Any, name: str = "tree") -> DoctorReport:
    """Read-path health of a *live* tree: cache + pruning effectiveness.

    The offline checks above verify durable bytes; this one verifies the
    read path is doing its job at runtime.  It surfaces the cache section
    and per-level pruning counters in ``report.stats`` and warns on the
    symptoms of a misconfigured read path: a sized cache that never hits,
    an eviction storm (more evictions than hits -- capacity too small for
    the working set), and Bloom filters that never skip a probed run.
    Advisory only: warnings never mark the report unhealthy.
    """
    from repro.metrics.readpath import read_path_report

    report = DoctorReport(directory=name)
    snapshot = read_path_report(tree)
    cache = snapshot["cache"]
    report.stats["cache"] = cache
    report.stats["read_path"] = snapshot["levels"]
    report.stats["lookup_prune_rate"] = snapshot["lookup_prune_rate"]

    lookups = cache["hits"] + cache["misses"]
    if cache["capacity_pages"] == 0:
        report.warn("block cache disabled (capacity 0): every read pays device I/O")
    elif lookups and cache["hit_rate"] == 0.0:
        report.warn(f"cache never hit across {lookups} lookups")
    else:
        report.passed(
            f"cache serving (hit rate {cache['hit_rate']:.1%} over {lookups} lookups)"
        )
    if cache["evictions"] > cache["hits"] and cache["evictions"] > 0:
        report.warn(
            f"eviction storm: {cache['evictions']} evictions vs {cache['hits']} "
            "hits (capacity likely below the working set)"
        )
    probes = snapshot["lookup_run_probes"]
    skips = snapshot["lookup_run_skips"]
    if probes + skips:
        report.passed(
            f"pruning active: {skips} of {probes + skips} run visits skipped "
            "without I/O"
        )
        bloom_skips = sum(r["lookup_skips_bloom"] for r in snapshot["levels"])
        if probes and not bloom_skips:
            report.warn("bloom filters never skipped a run (bits_per_key too low?)")
    return report


# ---------------------------------------------------------------------------
# live attack-surface examination
# ---------------------------------------------------------------------------
def examine_attack_surface(engine: Any, name: str = "engine") -> DoctorReport:
    """Adversarial posture of a *live* engine: which defenses are armed.

    The robustness sibling of :func:`examine_read_path`.  It reports, per
    defense, whether the engine is exposed to the attack classes in
    :mod:`repro.workload.adversarial`: unsalted blooms (bloom-defeating
    key streams can be crafted offline), unhardened cache admission
    (one-hit-wonder and empty-point floods evict the working set), and --
    for sharded engines -- a disabled auto-split controller (write storms
    pin one shard's flush queue).  Advisory only: an undefended engine is
    a configuration choice, not corruption, so warnings never mark the
    report unhealthy.
    """
    report = DoctorReport(directory=name)
    trees = (
        [shard.tree for shard in engine.shards]
        if hasattr(engine, "shards")
        else [engine.tree]
    )

    salted = [t.bloom_salt is not None for t in trees]
    if all(salted):
        salts = {t.bloom_salt for t in trees}
        report.passed(
            f"bloom filters salted ({len(salts)} distinct key(s) across "
            f"{len(trees)} tree(s))"
        )
        if len(trees) > 1 and len(salts) == 1:
            report.warn(
                "every shard shares one bloom salt: a key leaked from one "
                "shard defeats all of them"
            )
    else:
        report.warn(
            "bloom filters unsalted: absent-key streams defeating them can "
            "be crafted offline (set bloom_salted=True)"
        )

    cache_stats = [t.cache.stats() for t in trees]
    report.stats["cache"] = cache_stats[0] if len(cache_stats) == 1 else cache_stats
    if all(s["hardened"] for s in cache_stats):
        dk = sum(s["doorkeeper_rejections"] for s in cache_stats)
        neg = sum(s["negative_guard_drops"] for s in cache_stats)
        report.passed(
            f"cache admission hardened ({dk} doorkeeper rejections, "
            f"{neg} negative-lookup drops)"
        )
    else:
        report.warn(
            "cache admission unhardened: one-hit floods evict the working "
            "set unchecked (set cache_hardened=True)"
        )

    if hasattr(engine, "auto_split_events"):
        events = engine.auto_split_events
        report.stats["auto_split_events"] = events
        if getattr(engine, "_autosplit", None) is None:
            report.warn(
                "hot-shard auto-split disabled: a write storm concentrates "
                "on one shard until a manual rebalance (pass auto_split=...)"
            )
        else:
            splits = sum(1 for e in events if e["event"] == "split")
            refusals = len(events) - splits
            report.passed(
                f"hot-shard auto-split armed ({splits} splits, "
                f"{refusals} refusals so far)"
            )
    return report


# ---------------------------------------------------------------------------
# live memory examination
# ---------------------------------------------------------------------------
def examine_memory(engine: Any, name: str = "engine") -> DoctorReport:
    """Memory posture of a *live* engine: budgets, seams, governor state.

    Verifies the invariants the adaptive memory governor relies on --
    per-shard allocations within the global pool, write-buffer budgets
    >= 1 entry, and each block cache's shard layout matching what its
    *current* capacity implies (a resize across the shard threshold must
    re-shard, not keep the build-time split).  Advisory beyond those
    invariants: an ungoverned engine (static config budgets) is a
    configuration choice, so it only warns.
    """
    from repro.storage.cache import _DEFAULT_SHARDS, _SHARD_THRESHOLD

    report = DoctorReport(directory=name)
    trees = (
        [shard.tree for shard in engine.shards]
        if hasattr(engine, "shards")
        else [engine.tree]
    )

    bad_layout = []
    for i, tree in enumerate(trees):
        cache = tree.cache
        want = _DEFAULT_SHARDS if cache.capacity >= _SHARD_THRESHOLD else 1
        expected = 1
        while expected < min(want, max(1, cache.capacity)):
            expected *= 2
        if cache.shard_count != expected:
            bad_layout.append(
                f"shard {i}: cache capacity {cache.capacity} implies "
                f"{expected} shard(s), has {cache.shard_count}"
            )
    if bad_layout:
        for line in bad_layout:
            report.error(f"stale cache shard layout -- {line}")
    else:
        report.passed(
            f"cache shard layouts match their live capacities "
            f"({len(trees)} tree(s))"
        )

    if any(t.memtable_budget < 1 for t in trees):
        report.error("write-buffer budget below 1 entry")
    else:
        report.passed("write-buffer budgets >= 1 entry")

    report.stats["budgets"] = [
        {
            "memtable_entries": t.memtable_budget,
            "cache_pages": t.cache.capacity,
            "cache_resizes": t.cache.resizes,
        }
        for t in trees
    ]

    governor = getattr(engine, "_governor", None)
    if governor is None:
        report.warn(
            "memory governor disabled: budgets are the static config "
            "constants; a skewed workload starves hot shards "
            "(pass memory_governor=...)"
        )
        return report
    summary = governor.summary()
    report.stats["governor"] = summary
    budget = governor.budget
    if budget is not None:
        try:
            budget.check()
        except AssertionError as exc:
            report.error(f"memory budget invariant violated: {exc}")
        else:
            report.passed(
                f"global budget honored ({budget.used_units()} of "
                f"{budget.total_units} units allocated)"
            )
        drift = [
            i
            for i, tree in enumerate(trees)
            if i < budget.shard_count
            and (
                tree.memtable_budget != budget.memtable_entries[i]
                or tree.cache.capacity != budget.cache_pages[i]
            )
        ]
        if drift:
            report.warn(
                f"ledger/live drift on shard(s) {drift}: allocations were "
                "changed outside the governor (or a decision is mid-apply)"
            )
        else:
            report.passed("ledger matches live allocations on every shard")
    report.passed(
        f"memory governor armed ({summary['windows_evaluated']} windows, "
        f"{summary['decisions']} decisions, {summary['cache_resizes']} cache + "
        f"{summary['memtable_resizes']} buffer resizes)"
    )
    return report


# ---------------------------------------------------------------------------
# live compaction-policy examination
# ---------------------------------------------------------------------------
def examine_policy(engine: Any, name: str = "engine", window_ops: int = 4096) -> DoctorReport:
    """Compaction-policy posture of a *live* engine: layout vs policy.

    The policy sibling of :func:`examine_memory`.  A live policy switch
    from tiering to leveling does not rewrite the tree eagerly -- the
    multi-run levels the old policy left behind drain through ordinary
    ``LEVEL_COLLAPSE`` compactions.  That transition should complete
    within roughly one tuner window of operations; a tree that still
    has multi-run levels under a leveling policy *longer* than that is
    stuck mid-transition (maintenance starved, or a switch applied to a
    read-mostly shard that never triggers compaction).  Advisory only:
    warnings never mark the report unhealthy, because a lingering
    transition is a performance smell, not a correctness violation.
    """
    from repro.config import CompactionStyle
    from repro.metrics.shape import tree_shape

    report = DoctorReport(directory=name)
    trees = (
        [shard.tree for shard in engine.shards]
        if hasattr(engine, "shards")
        else [engine.tree]
    )

    report.stats["policies"] = [
        {
            "policy": t.config.policy.value,
            "switches": t.policy_switches,
            "last_switch_tick": t.last_policy_switch_tick,
        }
        for t in trees
    ]

    lingering = []
    transitioning = 0
    for i, tree in enumerate(trees):
        if tree.config.policy is not CompactionStyle.LEVELING:
            continue
        multi = [s.index for s in tree_shape(tree) if s.runs > 1]
        if not multi:
            continue
        transitioning += 1
        age = (
            None
            if tree.last_policy_switch_tick is None
            else tree.clock.now() - tree.last_policy_switch_tick
        )
        if age is None or age > window_ops:
            since = "no switch recorded" if age is None else f"{age} ticks ago"
            lingering.append(
                f"shard {i}: leveling policy but level(s) {multi} hold "
                f"multiple runs (switched {since})"
            )
    if lingering:
        for line in lingering:
            report.warn(
                f"stuck mid-transition -- {line}; compaction is not "
                "draining the tiered layout (run maintain()/compact_all())"
            )
    elif transitioning:
        report.passed(
            f"{transitioning} tree(s) mid tiering->leveling transition, "
            f"all within the {window_ops}-op window"
        )
    else:
        report.passed(
            f"every tree's layout matches its policy ({len(trees)} tree(s))"
        )

    tuner = getattr(engine, "_tuner", None)
    if tuner is None:
        report.warn(
            "policy tuner disabled: compaction policies are the static "
            "config/override constants; a drifting workload keeps paying "
            "the wrong policy's I/O (pass policy_tuner=...)"
        )
        return report
    summary = tuner.summary()
    report.stats["tuner"] = summary
    report.passed(
        f"policy tuner armed ({summary['windows_evaluated']} windows, "
        f"{summary['switches']} switches)"
    )
    return report


# ---------------------------------------------------------------------------
# live write-path examination
# ---------------------------------------------------------------------------
def examine_write_path(tree: Any, name: str = "tree") -> DoctorReport:
    """Write-path health of a *live* tree: pipeline and backpressure.

    The mirror of :func:`examine_read_path` for the ingest side.  It
    surfaces the flush/compaction pipeline report in ``report.stats``
    and warns on the symptoms of a misconfigured write path: writers
    spending measurable time in hard stalls (the background pool cannot
    keep up -- too few workers or the memtable too small), and a flush
    pipeline that never batches (workers adding coordination cost
    without absorbing any rotations).  Advisory only: warnings never
    mark the report unhealthy.
    """
    from repro.metrics.writepath import write_path_report

    report = DoctorReport(directory=name)
    snapshot = write_path_report(tree)
    report.stats["write_path"] = snapshot

    mode = snapshot["mode"]
    if mode == "serial":
        report.passed(
            f"serial write path ({snapshot['flush_jobs']} inline flushes, "
            f"{snapshot['compaction_jobs']} inline compactions)"
        )
        return report

    report.passed(
        f"concurrent write path: {snapshot['workers']} workers, "
        f"{snapshot['flush_jobs']} flush jobs over {snapshot['rotations']} "
        f"rotations, {snapshot['compaction_jobs']} compaction jobs"
    )
    if snapshot["hard_stalls"]:
        report.warn(
            f"writers hard-stalled {snapshot['hard_stalls']} times "
            f"({snapshot['stall_seconds']:.3f}s total): background pool "
            "cannot keep up (raise workers or memtable_entries)"
        )
    elif snapshot["soft_delays"]:
        report.passed(
            f"backpressure stayed soft ({snapshot['soft_delays']} delays, "
            f"{snapshot['stall_seconds']:.3f}s)"
        )
    if snapshot["flush_jobs"] and snapshot["flush_batching"] <= 1.0 and snapshot[
        "rotations"
    ] > snapshot["flush_jobs"]:
        report.warn(
            "flush pipeline never batched (1 memtable per job): rotations "
            "are outpacing a flusher that never falls behind enough to "
            "coalesce -- concurrency is buying latency only"
        )
    inflight = snapshot["compaction_inflight"]
    if inflight:
        report.warn(
            f"{inflight} compaction jobs still in flight (call write_barrier() "
            "before examining if an at-rest view was intended)"
        )
    return report


# ---------------------------------------------------------------------------
# scrub: checksum-first media verification
# ---------------------------------------------------------------------------
def scrub_store(directory: str | Path) -> DoctorReport:
    """Checksum every SSTable on disk and validate the manifest.

    Read-only.  Unlike :func:`diagnose_store` this walks *all* files in
    the directory (a corrupt orphan is still worth reporting: it may be
    the only copy of a crashed flush) and verifies the embedded
    whole-file checksums rather than decoding entries.  A sharded root
    iterates every shard directory, so one scrub pass covers the whole
    deployment.
    """
    from repro.shard.manifest import is_sharded_root

    if is_sharded_root(directory):
        return _check_sharded(directory, scrub_store, "scrub")
    report = DoctorReport(directory=str(directory))
    store = FileStore(directory)

    referenced: set[int] = set()
    try:
        manifest = store.read_manifest()
    except CorruptionError as exc:
        report.error(f"manifest fails verification: {exc}")
        manifest = None
    else:
        if manifest is None:
            report.error("no manifest: not an initialized store")
        else:
            epoch = store.manifest_epoch
            report.passed(
                "manifest checksum valid"
                + (f" (epoch {epoch})" if epoch is not None else " (no epoch: pre-epoch store)")
            )
            report.stats["manifest_epoch"] = epoch
            if "config" in manifest:
                try:
                    _check_bloom_salt(
                        LSMConfig.from_dict(manifest["config"]), manifest, report
                    )
                except ConfigError:
                    pass  # diagnose reports invalid configs; scrub is media-only
            referenced = {
                fid
                for run_lists in manifest.get("levels", [])
                for file_ids in run_lists
                for fid in file_ids
            }

    checksums: dict[int, int] = {}
    bad = 0
    for file_id in store.list_sstable_ids():
        label = "referenced" if file_id in referenced else "orphan"
        try:
            checksums[file_id] = store.checksum_sstable(file_id)
        except (CorruptionError, StorageError) as exc:
            bad += 1
            report.error(f"sstable {file_id} ({label}): {exc}")
    if not bad:
        report.passed(f"all {len(checksums)} sstable checksums verify")
    for file_id in sorted(referenced):
        if not store.sstable_path(file_id).exists():
            report.error(f"sstable {file_id} referenced by the manifest is missing")
    report.stats["sstables_scrubbed"] = len(checksums)
    report.stats["sstable_checksums"] = {str(k): v for k, v in sorted(checksums.items())}

    try:
        entries = list(WriteAheadLog.replay(store.wal_path))
    except CorruptionError as exc:
        report.error(f"WAL corrupt before its tail: {exc}")
    else:
        report.passed(f"WAL replays ({len(entries)} buffered entries)")
    return report


# ---------------------------------------------------------------------------
# sharded stores
# ---------------------------------------------------------------------------
def _check_sharded(directory: str | Path, per_shard, verb: str) -> DoctorReport:
    """Validate a sharded root, then run ``per_shard`` on every shard
    directory, merging findings under a per-shard prefix."""
    from repro.shard.manifest import ShardRootStore, validate_layout

    report = DoctorReport(directory=str(directory))
    store = ShardRootStore(directory)
    try:
        layout = store.read_manifest()
    except CorruptionError as exc:
        report.error(f"shard manifest fails verification: {exc}")
        return report
    if layout is None:  # pragma: no cover - is_sharded_root gates entry
        report.error("no shard manifest: not an initialized sharded store")
        return report
    try:
        pmap = validate_layout(layout)
    except CorruptionError as exc:
        report.error(f"shard manifest malformed: {exc}")
        return report
    dirs = [str(name) for name in layout["shard_dirs"]]
    report.passed(f"shard manifest valid ({pmap.shards} shards)")
    report.stats["shards"] = pmap.shards
    if layout.get("pending_fanout"):
        f = layout["pending_fanout"]
        report.warn(
            f"interrupted secondary-delete fan-out dkey=[{f['lo']}, {f['hi']}] "
            "pending (a writable open will replay it)"
        )
    if layout.get("pending_split"):
        s = layout["pending_split"]
        report.warn(
            f"interrupted shard split (stage {s['stage']!r}, shard "
            f"{s['source']}) pending (a writable open will resume it)"
        )

    for name in dirs:
        shard_dir = Path(directory) / name
        if not shard_dir.is_dir():
            if layout.get("pending_split") and name == layout["pending_split"].get(
                "new_dir"
            ):
                # Stage-"copy" crash window: the target never became part
                # of the map, and recovery recreates it from scratch.
                report.warn(f"{name}: directory missing (mid-copy split target)")
            else:
                report.error(f"{name}: shard directory missing")
            continue
        sub = per_shard(shard_dir)
        for message in sub.checks_passed:
            report.passed(f"{name}: {message}")
        for message in sub.warnings:
            report.warn(f"{name}: {message}")
        for message in sub.errors:
            report.error(f"{name}: {message}")
        for key, value in sub.stats.items():
            report.stats[f"{name}.{key}"] = value
    report.passed(f"{verb} covered {len(dirs)} shard directories")
    return report


def examine_shards(engine: Any, name: str = "sharded-engine") -> DoctorReport:
    """Shard-level health of a *live* sharded engine.

    The sharding sibling of :func:`examine_read_path`: it surfaces the
    per-shard breakdown (range, size, FADE/``D_th`` compliance) in
    ``report.stats`` and warns on the operational symptoms a shard layer
    introduces: a ``D_th`` violation on any shard, heavy size skew (the
    rebalancer's trigger condition persisting), and empty shards.
    Advisory only, except ``D_th`` violations, which are errors -- they
    break the paper's headline contract.
    """
    report = DoctorReport(directory=name)
    stats = engine.stats()
    rows = stats.shards or []
    report.stats["shards"] = rows
    if not rows:
        report.warn("engine reports no shards")
        return report
    report.passed(f"{len(rows)} shards reporting")

    violators = [r for r in rows if not r["compliant"]]
    if violators:
        for r in violators:
            report.error(
                f"shard {r['index']} {r['range']}: D_th violated "
                f"({r['violations']} violations, oldest pending age "
                f"{r['oldest_pending_age']})"
            )
    else:
        report.passed("per-shard D_th compliance holds on every shard")

    sizes = [r["entries_on_disk"] + r["buffered_entries"] for r in rows]
    total = sum(sizes)
    if total:
        mean = total / len(sizes)
        worst = max(range(len(sizes)), key=sizes.__getitem__)
        skew = sizes[worst] / mean if mean else 0.0
        report.stats["size_skew"] = round(skew, 2)
        if skew > 2.0:
            report.warn(
                f"size skew {skew:.1f}x: shard {rows[worst]['index']} holds "
                f"{sizes[worst]} of {total} entries (rebalance() would split it)"
            )
        else:
            report.passed(f"size skew {skew:.1f}x within the 2.0x rebalance threshold")
        empties = [r["index"] for r, size in zip(rows, sizes) if size == 0]
        if empties:
            report.warn(f"empty shard(s): {empties}")
    return report


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.tools.doctor <diagnose|scrub> DIRECTORY``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.tools.doctor",
        description="offline integrity checking for durable store directories",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    diag = sub.add_parser("diagnose", help="full structural diagnosis")
    diag.add_argument("directory")
    scrub = sub.add_parser("scrub", help="checksum every sstable + validate the manifest")
    scrub.add_argument("directory")
    args = parser.parse_args(argv)
    runner = diagnose_store if args.command == "diagnose" else scrub_store
    report = runner(args.directory)
    print(report.render())
    return 0 if report.healthy else 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    import sys

    sys.exit(main())
