"""LSM-tree substrate: memtable, runs, levels, iterators, compaction.

This package implements a complete log-structured merge tree in Python.
The paper's contributions (FADE, KiWi) live in :mod:`repro.core` and are
expressed as configurations/policies of this substrate rather than as a
separate engine, so baseline-vs-Acheron comparisons share every code path.
"""

from repro.lsm.entry import Entry, EntryKind
from repro.lsm.memtable import Memtable
from repro.lsm.tree import LSMTree

__all__ = ["Entry", "EntryKind", "Memtable", "LSMTree"]
