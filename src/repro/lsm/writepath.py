"""The concurrent write path: pipelined flush, parallel compaction, backpressure.

Serially, every flush and every compaction runs inline on the ingest
thread: a ``put`` that fills the memtable pays for the whole flush *and*
the merge cascade it triggers before it returns.  This module moves that
work behind the ingest thread:

* **Pipelined flush** -- a full memtable is *rotated* into an immutable
  queue (``frozen``, newest first) and replaced with a fresh one; a single
  background flush worker drains the queue.  Writers only block when the
  queue hits its depth bound.  The worker flushes the *whole* queue as one
  job, merging the frozen memtables newest-wins before building files --
  so a backed-up queue costs one merged flush, not K serial ones.
* **Parallel compaction** -- a pump plans tasks with the existing
  planner/FADE scheduler, but filtered by the set of *reserved* levels:
  every in-flight job owns ``task.involved_levels``, so concurrent merges
  are always level-disjoint and FADE's expiry priority is preserved among
  the non-busy levels.  The expensive merge phase
  (:func:`~repro.lsm.compaction.merge_task`) runs lock-free on a bounded
  worker pool; the install phase
  (:func:`~repro.lsm.compaction.install_task`) and all planning run under
  one structure lock.
* **Published snapshots** -- after every structural install the controller
  rebuilds ``published``: an immutable ``((level, (run, ...)), ...)``
  tuple.  Readers grab one reference (a single atomic load under the GIL)
  and see a complete, consistent tree version; a half-installed level is
  never observable.  Stale snapshots stay valid because runs, files, and
  pages are immutable and file ids are never reused.
* **Backpressure** -- rotation applies a soft delay (a real sleep, which
  also yields the interpreter to the background workers) once the frozen
  queue or level 1 pass their soft thresholds, and a hard stall (condition
  wait) at the hard bounds.  Both are counted and timed.

Durability notes: writers append to the WAL *before* rotating, so every
acknowledged write is durable the moment the call returns.  The WAL is
**not** truncated per background flush (newer acknowledged entries still
live only in the log); recovery relies on the ``flushed_seqno`` replay
filter, and the log is truncated only at full quiesce (``flush()`` /
``close()``).  A worker exception -- including an injected
:class:`~repro.storage.faults.SimulatedCrash` -- is captured as the
*background error* and re-raised on the next write, barrier, or close
(the RocksDB ``bg_error`` discipline), so the crash matrix sees faults
fired inside workers exactly like inline ones.

Determinism: the controller only exists for ``workers > 1``.  With
``workers=1`` (the default) the tree takes the untouched serial code
paths, bit-identical to the pre-concurrency engine.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import deque
from contextlib import contextmanager
from operator import attrgetter
from time import perf_counter, sleep
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.filters.bloom import _key_bytes, hash_pair, key_hash_pair
from repro.lsm.compaction import execute_task, install_task, merge_task
from repro.lsm.entry import Entry, EntryKind
from repro.lsm.fence import RangeFence, file_fully_shadowed, shadow_check
from repro.lsm.iterator import scan_fused
from repro.lsm.memtable import Memtable
from repro.lsm.run import Run, build_files
from repro.storage.disk import CATEGORY_FLUSH

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree

_ENTRY_KEY = attrgetter("key")
_ENTRY_SEQNO = attrgetter("seqno")
_ENTRY_PAIR = attrgetter("key", "value")

#: Frozen-queue depth (per worker) at which writers take the soft delay.
SOFT_QUEUE_DEPTH_PER_WORKER = 3
#: Frozen-queue depth (per worker) at which writers hard-stall (rotation
#: refuses to grow the queue past this).
MAX_FROZEN_PER_WORKER = 4
#: Level-1 run count that triggers the soft delay (scaled by workers,
#: floored at the serial-era thresholds of 8/16).
L0_SOFT_RUNS_PER_WORKER = 4
#: The soft delay: long enough to hand the GIL to a background worker,
#: short enough to be invisible at ack granularity.
SOFT_DELAY_SECONDS = 0.0005
#: The flusher waits (briefly) for this many frozen memtables *per
#: worker* before building a flush.  Batching is where the concurrent
#: win comes from: K memtables merged newest-wins in one pass produce
#: one level-1 run, so downstream collapses run once instead of K times
#: -- measured write amplification drops ~2x at 4 workers.
FLUSH_BATCH_PER_WORKER = 2
#: How long the flusher will hold out for more memtables (seconds).
#: Bounded so a trickling writer never sees unbounded flush latency;
#: barriers bypass the hold-out entirely (``_barrier_waiters``).
FLUSH_BATCH_WAIT_SECONDS = 0.05


class _LockedListener:
    """Serializes delete-lifecycle callbacks from writer + worker threads."""

    __slots__ = ("_inner", "_lock")

    def __init__(self, inner: Any, lock: threading.Lock) -> None:
        self._inner = inner
        self._lock = lock

    def tombstone_registered(self, entry: Entry, now: int) -> None:
        with self._lock:
            self._inner.tombstone_registered(entry, now)

    def tombstone_superseded(self, entry: Entry, now: int) -> None:
        with self._lock:
            self._inner.tombstone_superseded(entry, now)

    def tombstone_persisted(self, entry: Entry, now: int) -> None:
        with self._lock:
            self._inner.tombstone_persisted(entry, now)

    def __getattr__(self, name: str) -> Any:  # stats() etc. pass through
        return getattr(self._inner, name)


class WriteStats:
    """Write-path observability counters (see ``repro.metrics.writepath``)."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self.rotations = 0
        self.flush_jobs = 0
        self.flush_memtables = 0
        self.flush_entries = 0
        self.flush_wall_seconds = 0.0
        self.flush_max_seconds = 0.0
        self.compaction_jobs = 0
        self.compaction_wall_seconds = 0.0
        self.compaction_max_seconds = 0.0
        self.queue_peak = 0
        self.inflight_peak = 0
        self.soft_delays = 0
        self.hard_stalls = 0
        self.stall_seconds = 0.0
        self.pages_written_by_worker: dict[str, int] = {}

    def note_worker_pages(self, worker: str, pages: int) -> None:
        if pages:
            by = self.pages_written_by_worker
            by[worker] = by.get(worker, 0) + pages


class WritePathController:
    """Owns the background flush/compaction machinery of one tree.

    Locking order (outermost first): ``write_lock`` (writer
    serialization) -> ``_mu`` (structure + scheduler state).  Background
    threads only ever take ``_mu``; a writer waiting inside ``_mu`` can
    therefore always be woken by a background install.  Readers take no
    lock at all: they load ``self.frozen`` and ``self.published`` once
    (atomic tuple loads) and work on immutable state.
    """

    def __init__(self, tree: "LSMTree", workers: int) -> None:
        if workers < 2:
            raise ValueError("the write-path controller requires workers >= 2")
        self.tree = tree
        self.workers = workers
        self.stats = WriteStats(workers)
        #: Immutable memtables awaiting flush, newest first.
        self.frozen: tuple[Memtable, ...] = ()
        #: The published tree version: ((level, (run, ...)), ...).
        self.published: tuple = ()
        self.write_lock = threading.RLock()
        self._mu = threading.RLock()
        self._cv = threading.Condition(self._mu)
        self._job_queue: deque = deque()
        self._reserved: set[int] = set()
        self._active_jobs = 0
        self._flush_waiting = False
        self._manifest_dirty = False
        self._shutdown = False
        self._error: BaseException | None = None
        self._inline_ident: int | None = None
        self._threads: list[threading.Thread] = []
        # Tunables (instance-level so tests can tighten them).  Queue
        # depths and the flush batch scale with the worker count: more
        # workers means a deeper pipeline is needed to keep them from
        # stalling each other, and a bigger batch amortizes better.
        self.soft_queue_depth = SOFT_QUEUE_DEPTH_PER_WORKER * workers
        self.max_frozen = MAX_FROZEN_PER_WORKER * workers
        self.l0_soft_runs = max(8, L0_SOFT_RUNS_PER_WORKER * workers)
        self.l0_hard_runs = 2 * self.l0_soft_runs
        self.soft_delay = SOFT_DELAY_SECONDS
        self.flush_batch_target = max(4, FLUSH_BATCH_PER_WORKER * workers)
        self.flush_batch_wait = FLUSH_BATCH_WAIT_SECONDS
        # Deadline-aware cap: a tombstone makes no persistence progress
        # while its memtable sits in the frozen queue, so batching delay
        # (batch_target * memtable_entries ticks of ingest) must stay a
        # small fraction of D_th.  Tight thresholds relative to the
        # memtable size flush promptly; production-scale thresholds
        # leave batching untouched.
        d_th = tree.config.delete_persistence_threshold
        if d_th:
            budget = max(1, d_th // (8 * tree.config.memtable_entries))
            self.flush_batch_target = min(self.flush_batch_target, budget)
        #: Barriers in progress; the flusher skips its batching wait so
        #: quiescence is never held up for the sake of coalescing.
        self._barrier_waiters = 0
        #: Test hook: while True the flush worker leaves the queue alone
        #: (used to pin a flush in flight and probe reader visibility).
        self.hold_flushes = False

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self) -> None:
        tree = self.tree
        tree.disk.make_thread_safe()
        tree.file_ids.make_thread_safe()
        if tree.listener is not None and not isinstance(tree.listener, _LockedListener):
            tree.listener = _LockedListener(tree.listener, threading.Lock())
        with self._mu:
            self._republish()
        flush_thread = threading.Thread(
            target=self._flush_loop, name="repro-flush", daemon=True
        )
        self._threads.append(flush_thread)
        for i in range(self.workers):
            self._threads.append(
                threading.Thread(
                    target=self._compaction_loop,
                    name=f"repro-compact-{i}",
                    daemon=True,
                )
            )
        for thread in self._threads:
            thread.start()

    def close(self) -> None:
        """Drain, quiesce, stop the workers; re-raise any background error."""
        tree = self.tree
        flush_remaining = tree._store is not None and not tree._read_only
        with self.write_lock:
            if self._error is None:
                if flush_remaining and len(tree.memtable._map):
                    self._rotate()
                try:
                    self.barrier()
                except BaseException:
                    pass  # surfaced below, after the threads are stopped
            self._stop_threads()
            self.raise_background_error()
            if (
                tree._wal is not None
                and not self.frozen
                and not len(tree.memtable._map)
            ):
                tree._wal.truncate()

    def abort(self) -> None:
        """Stop the workers without surfacing errors (crash-test abandon)."""
        if self._error is None:
            with self._cv:
                if self._error is None:
                    self._error = EngineAbortedError("write path aborted")
                self._cv.notify_all()
        self._stop_threads()

    def _stop_threads(self) -> None:
        with self._cv:
            self._shutdown = True
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._threads = []

    def raise_background_error(self) -> None:
        error = self._error
        if error is not None and not isinstance(error, EngineAbortedError):
            raise error

    def owns_inline(self) -> bool:
        """True when the calling thread holds :meth:`exclusive` (inline mode)."""
        return self._inline_ident == threading.get_ident()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Quiesce the background machinery and run the caller inline.

        Used by operations that mutate structure with serial code
        (KiWi range deletes, full compaction): writers are blocked, the
        flush queue and all jobs drain, and tree methods called by this
        thread take their serial bodies.  On exit the new structure is
        republished and the pump restarted.
        """
        self.raise_background_error()
        with self.write_lock:
            self.barrier()
            prev = self._inline_ident  # nestable: restore, don't clear
            self._inline_ident = threading.get_ident()
            try:
                yield
            finally:
                self._inline_ident = prev
                with self._cv:
                    self._republish()
                    self._pump_locked()
                    self._cv.notify_all()

    # ==================================================================
    # write path (called by the tree under no lock; we take write_lock)
    # ==================================================================
    def apply_batch(self, ops: Iterable[tuple]) -> int:
        """The concurrent twin of :meth:`LSMTree.apply_batch`.

        Same per-op semantics and counters; the differences are (a) all
        writers serialize on ``write_lock``, (b) a full memtable *rotates*
        instead of flushing inline, and (c) every entry is appended to the
        WAL before its memtable is handed to the background flush (the
        replay filter drops the duplicates after the flush lands), so
        acknowledged writes are always durable.
        """
        self.raise_background_error()
        tree = self.tree
        with self.write_lock:
            wal = tree._wal
            pending: list[Entry] = []
            memtable = tree.memtable
            listener = tree.listener
            clock = tree.clock
            counters = tree.counters
            config = tree.config
            fade = tree._fade
            make_put = Entry.put
            make_tombstone = Entry.tombstone
            clock_now = clock.now
            clock_tick = clock.tick
            memtable_add = memtable.add
            mt_map = memtable._map
            capacity = memtable.capacity
            put_bytes = config.entry_bytes(is_tombstone=False)
            tombstone_bytes = config.entry_bytes(is_tombstone=True)
            puts = deletes = ingested = 0
            count = 0
            try:
                for op in ops:
                    kind = op[0]
                    now = clock_now()
                    seqno = tree._seqno + 1
                    tree._seqno = seqno
                    if kind == "put":
                        entry = make_put(
                            op[1],
                            op[2],
                            seqno,
                            now,
                            op[3] if len(op) > 3 else None,
                        )
                        puts += 1
                        ingested += put_bytes
                    elif kind == "delete":
                        entry = make_tombstone(op[1], seqno, now)
                        deletes += 1
                        ingested += tombstone_bytes
                        if listener is not None:
                            listener.tombstone_registered(entry, now)
                    else:
                        raise ValueError(f"unknown batch op kind {kind!r}")
                    if wal is not None:
                        pending.append(entry)
                    displaced = memtable_add(entry)
                    if (
                        displaced is not None
                        and displaced.is_tombstone
                        and listener is not None
                    ):
                        listener.tombstone_superseded(displaced, now)
                    clock_tick()
                    count += 1
                    rotate = len(mt_map) >= capacity
                    if not rotate and fade is not None and memtable.first_tombstone_time is not None:
                        deadline = fade.buffer_deadline(
                            memtable.first_tombstone_time,
                            tree.deepest_nonempty_level(),
                        )
                        rotate = clock_now() >= deadline
                    if rotate:
                        # Acked entries must be in the log before their
                        # memtable leaves the writer's hands.
                        if wal is not None and pending:
                            wal.append_many(pending)
                            pending.clear()
                        self._rotate()
                        self._throttle()
                        self.raise_background_error()
                        memtable = tree.memtable
                        memtable_add = memtable.add
                        mt_map = memtable._map
                        # Re-hoist the fill bound: the rotation may have
                        # installed a memtable sized from a retargeted
                        # governor budget (no-op when the governor is off).
                        capacity = memtable.capacity
            finally:
                counters["puts"] += puts
                counters["deletes"] += deletes
                counters["ingested_bytes"] += ingested
                if wal is not None and pending:
                    wal.append_many(pending)
            return count

    def _rotate(self) -> None:
        """Freeze the active memtable (write_lock held by the caller).

        Order matters for lock-free readers: the memtable enters
        ``frozen`` *before* ``tree.memtable`` is rebound, so a concurrent
        lookup sees the old table in at least one of the two places (a
        brief double-sighting is harmless -- same entries).
        """
        tree = self.tree
        memtable = tree.memtable
        if not len(memtable._map):
            return
        stats = self.stats
        with self._cv:
            self.frozen = (memtable,) + self.frozen
            stats.rotations += 1
            depth = len(self.frozen)
            if depth > stats.queue_peak:
                stats.queue_peak = depth
            self._cv.notify_all()
        # Replacements are sized from the live soft limit (equal to
        # config.memtable_entries unless the memory governor retargeted
        # it), so a budget change lands at the next rotation without ever
        # touching the frozen-queue protocol.
        tree.memtable = Memtable(tree.memtable_budget)

    def _throttle(self) -> None:
        """Backpressure after a rotation (write_lock held by the caller)."""
        tree = self.tree
        stats = self.stats
        levels = tree._levels
        l1_runs = len(levels[0].runs) if levels else 0
        depth = len(self.frozen)
        if depth < self.max_frozen and l1_runs < self.l0_hard_runs:
            if depth >= self.soft_queue_depth or l1_runs >= self.l0_soft_runs:
                stats.soft_delays += 1
                stats.stall_seconds += self.soft_delay
                sleep(self.soft_delay)  # yields the GIL to the workers
            return
        started = perf_counter()
        stats.hard_stalls += 1
        with self._cv:
            while self._error is None and (
                len(self.frozen) >= self.max_frozen
                or (len(levels[0].runs) if levels else 0) >= self.l0_hard_runs
            ):
                self._cv.wait(0.05)
        stats.stall_seconds += perf_counter() - started

    def append_range_fence(self, lo: Any, hi: Any) -> RangeFence:
        """The concurrent twin of the serial fence append: still O(1).

        Unlike eager range deletes, no :meth:`exclusive` quiesce is
        needed -- the fence is one WAL append plus one manifest rewrite
        under the writer lock, and becomes visible to lock-free readers
        the instant ``tree._fences`` is rebound (readers load the fence
        tuple before any snapshot, so visibility is never late).
        """
        self.raise_background_error()
        tree = self.tree
        with self.write_lock:
            fence = RangeFence(lo, hi, tree._seqno + 1, tree.clock.now())
            tree._seqno = fence.seqno
            if tree._wal is not None:
                tree._wal.append(fence.to_entry())
            with self._cv:
                tree._install_fence(fence)
                tree._persist_manifest()
                self._pump_locked()
                self._cv.notify_all()
        return fence

    def set_policy(self, style: Any) -> bool:
        """The concurrent twin of the serial policy switch.

        No :meth:`exclusive` quiesce: the switch rebinds the tree's
        config (old and new differ only in ``policy``, so a racing
        reader or in-flight job sees a coherent object either way) and
        republishes the manifest under the writer lock + ``_cv`` -- the
        same exclusion every plan runs under, so the next ``_pump_locked``
        below already plans with the new triggers.  Transition
        compactions (tiering -> leveling run collapses) flow through the
        ordinary background executor with FADE priority preserved.
        """
        self.raise_background_error()
        tree = self.tree
        with self.write_lock:
            with self._cv:
                changed = tree._apply_policy_switch(style)
                if changed:
                    self._pump_locked()
                    self._cv.notify_all()
        return changed

    # ==================================================================
    # read path (no locks; immutable snapshots)
    # ==================================================================
    def get_entry(self, key: Any) -> Entry | None:
        """Point lookup over active memtable -> frozen queue -> snapshot.

        The on-disk descent mirrors :meth:`LSMTree.get_entry` exactly
        (range fences -> Bloom probe with one hash pair per lookup ->
        cache-first single-page fast path) so modeled page reads and the
        per-level skip/probe accounting agree between serial and
        concurrent mode on identical workloads.
        """
        tree = self.tree
        # The fence snapshot is loaded *before* frozen/published.  Fence
        # retirement republishes the post-resolution structure before it
        # drops a fence, so this load order guarantees a reader never
        # pairs a retired-fence view with a snapshot that still holds the
        # entries that fence shadowed.
        fences = tree._fences
        check = shadow_check(fences)
        entry = tree.memtable.get(key)
        if entry is not None:
            if check is None or not check(entry):
                return entry
            # Fence-shadowed: an older out-of-window version may survive
            # in the frozen queue or on disk -- keep descending.
        for memtable in self.frozen:
            entry = memtable.get(key)
            if entry is not None:
                if check is None or not check(entry):
                    return entry
        reader = tree._reader
        hashed = None
        cache_get = tree.cache.get
        single_page = tree.config.pages_per_tile == 1
        for level, runs in self.published:
            pinned = level.index == 1
            for run in runs:  # newest first
                files = run.files
                if key < files[0].min_key or key > files[-1].max_key:
                    level.lookup_skips_range += 1
                    continue
                fence = run.file_fence
                idx = bisect_right(fence.mins, key) - 1
                if idx < 0 or key > fence.maxes[idx]:
                    level.lookup_skips_range += 1
                    continue
                file = files[idx]
                if check is not None and file_fully_shadowed(file, fences):
                    # Every PUT in this file is fence-shadowed: skip the
                    # Bloom probe and the page descent entirely.
                    level.lookup_skips_fence += 1
                    continue
                if hashed is None:
                    try:
                        hashed = key_hash_pair(key, tree.bloom_salt)
                    except TypeError:  # unhashable key: digest directly
                        hashed = hash_pair(_key_bytes(key), tree.bloom_salt)
                if not file.bloom.might_contain_hashed(hashed[0], hashed[1]):
                    level.lookup_skips_bloom += 1
                    continue
                level.lookup_probes += 1
                if single_page:
                    tile_fence = file.tile_fence
                    tidx = bisect_right(tile_fence.mins, key) - 1
                    if tidx < 0 or key > tile_fence.maxes[tidx]:
                        continue  # filter false positive, key between tiles
                    pages = file.tiles[tidx].pages
                    if len(pages) != 1:  # layout drift (recovered file)
                        found = file.get(key, reader, pinned, tidx)
                    else:
                        page = cache_get(file.file_id, tidx)
                        if page is None:
                            tree.disk.read_pages(1, reader.category)
                            page = pages[0]
                            tree.cache.put(file.file_id, tidx, page, pinned)
                        else:
                            level.lookup_cache_direct += 1
                        found = page.get(key)
                else:
                    found = file.get(key, reader, pinned)
                if found is not None:
                    if check is not None and check(found):
                        # Shadowed by a fence that outlives this version;
                        # an older survivor may exist deeper down.
                        continue
                    level.lookup_serves += 1
                    return found
        return None

    def scan(
        self,
        lo: Any,
        hi: Any,
        limit: int | None = None,
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Fused range scan over the full concurrent view.

        The active memtable is snapshotted under ``write_lock`` (skip-list
        links are not safe to traverse mid-insert); each frozen memtable
        and the published runs are immutable and need no lock.  Shadow
        resolution is by seqno inside :func:`scan_fused`, so each source's
        relative order is irrelevant.
        """
        tree = self.tree
        reader = tree._reader
        sources: list = []
        with self.write_lock:
            fences = tree._fences  # before frozen/published (see get_entry)
            buffered = list(tree.memtable.range(lo, hi))
            frozen = self.frozen
            published = self.published
        if buffered:
            if reverse:
                buffered.reverse()
            sources.append((buffered,))
        for memtable in frozen:
            chunk = list(memtable.range(lo, hi))
            if chunk:
                if reverse:
                    chunk.reverse()
                sources.append((chunk,))
        for level, runs in published:
            for run in runs:
                if run.max_key < lo or run.min_key > hi:
                    level.scan_runs_pruned += 1
                    continue
                sources.append(run.scan_blocks(lo, hi, reader, reverse))
        if not sources:
            return iter(())
        return map(
            _ENTRY_PAIR,
            scan_fused(
                sources, limit=limit, reverse=reverse, drop=shadow_check(fences)
            ),
        )

    # ==================================================================
    # quiesce points
    # ==================================================================
    def barrier(self) -> None:
        """Block until the flush queue is empty and no job is in flight.

        Also drives the pump one more round at quiescence so anything the
        last install unlocked (including due FADE expiries) runs before
        the barrier reports clean.  Raises the background error, if any.
        """
        self.raise_background_error()
        with self._cv:
            self._barrier_waiters += 1
            self._cv.notify_all()  # wake a flusher out of its batching wait
            try:
                while self._error is None:
                    if not self.frozen and self._active_jobs == 0:
                        self._pump_locked()
                        if self._active_jobs == 0 and not self.frozen:
                            break
                        continue
                    self._cv.wait(0.05)
            finally:
                self._barrier_waiters -= 1
        self.raise_background_error()

    def flush(self) -> None:
        """The concurrent :meth:`LSMTree.flush`: rotate, drain, rotate WAL."""
        self.raise_background_error()
        tree = self.tree
        with self.write_lock:
            self._rotate()
            self.barrier()
            # Everything acknowledged is now durable through published
            # manifests; the log can finally rotate (the per-flush
            # truncation of serial mode is unsafe while newer acked
            # entries still live only in the log).
            if (
                tree._wal is not None
                and not self.frozen
                and not len(tree.memtable._map)
            ):
                tree._wal.truncate()

    def advance_time(self, ticks: int) -> None:
        """Concurrent :meth:`LSMTree.advance_time`: deadline-stepped drain.

        The logical clock only moves here and on ingest, and the write
        lock is held throughout, so draining at each deadline stop makes
        expiry compactions run at exactly the tick they are due -- the
        same schedule the serial engine produces.
        """
        tree = self.tree
        self.raise_background_error()
        if ticks < 0:
            raise ValueError(f"cannot advance time backwards ({ticks})")
        with self.write_lock:
            # Drain the backlog first so every deadline below is computed
            # against a structurally current tree (the clock is frozen, so
            # this costs no simulated time).
            self.barrier()
            target = tree.clock.now() + ticks
            while True:
                now = tree.clock.now()
                if now >= target:
                    break
                stop = target
                fade = tree._fade
                if fade is not None:
                    next_deadline = fade.next_deadline()
                    if next_deadline is not None and now < next_deadline < stop:
                        stop = next_deadline
                    first = tree.memtable.first_tombstone_time
                    if first is not None:
                        buffer_deadline = fade.buffer_deadline(
                            first, tree.deepest_nonempty_level()
                        )
                        if now < buffer_deadline < stop:
                            stop = buffer_deadline
                tree.clock.advance_to(stop)
                fade_due = tree._fade_deadline_due()
                if tree.memtable.is_full:
                    self._rotate()
                elif (
                    fade is not None
                    and tree._fences
                    and fade.fence_overdue(tree.clock.now())
                    and tree._buffer_shadowable()
                ):
                    # A fence past D_th whose shadowed data still sits in
                    # the buffer: rotate so the flush filters it out and
                    # the fence can retire (maintain()'s forced-flush
                    # branch, concurrent edition).
                    self._rotate()
                elif fade is not None and tree.memtable.first_tombstone_time is not None:
                    deadline = fade.buffer_deadline(
                        tree.memtable.first_tombstone_time,
                        tree.deepest_nonempty_level(),
                    )
                    if tree.clock.now() >= deadline:
                        self._rotate()
                if self.frozen or fade_due:
                    self.barrier()

    # ==================================================================
    # flush worker
    # ==================================================================
    def _flush_loop(self) -> None:
        tree = self.tree
        while True:
            with self._cv:
                while (
                    (not self.frozen or self.hold_flushes)
                    and not self._shutdown
                    and self._error is None
                ):
                    self._cv.wait(0.05 if self.hold_flushes else None)
                if self._error is not None:
                    return
                if not self.frozen:
                    return  # shutdown, queue drained
                if self._shutdown and self.hold_flushes:
                    return
                # Hold out briefly for a fuller batch: merging K memtables
                # in one pass replaces K flushes + K collapse rounds.
                # Skipped when anything is waiting on quiescence.
                if (
                    len(self.frozen) < self.flush_batch_target
                    and not self._shutdown
                    and self._barrier_waiters == 0
                ):
                    deadline = perf_counter() + self.flush_batch_wait
                    while (
                        len(self.frozen) < self.flush_batch_target
                        and not self._shutdown
                        and self._barrier_waiters == 0
                        and self._error is None
                    ):
                        remaining = deadline - perf_counter()
                        if remaining <= 0:
                            break
                        self._cv.wait(remaining)
                    if self._error is not None:
                        return
                batch = self.frozen  # whole queue, newest first
            started = perf_counter()
            try:
                files, entry_count, flushed_seqno = self._build_flush(batch)
            except BaseException as exc:  # noqa: BLE001 - background error
                with self._cv:
                    if self._error is None:
                        self._error = exc
                    self._cv.notify_all()
                return
            with self._cv:
                self._flush_waiting = True
                while 1 in self._reserved and self._error is None:
                    self._cv.wait(0.05)
                self._flush_waiting = False
                if self._error is not None:
                    self._cv.notify_all()
                    return
                try:
                    self._install_flush(batch, files, flushed_seqno)
                except BaseException as exc:  # noqa: BLE001
                    if self._error is None:
                        self._error = exc
                    self._cv.notify_all()
                    return
                wall = perf_counter() - started
                stats = self.stats
                stats.flush_jobs += 1
                stats.flush_memtables += len(batch)
                stats.flush_entries += entry_count
                stats.flush_wall_seconds += wall
                if wall > stats.flush_max_seconds:
                    stats.flush_max_seconds = wall
                stats.note_worker_pages(
                    threading.current_thread().name,
                    sum(f.page_count for f in files),
                )
                self._cv.notify_all()
                self._pump_locked()

    def _build_flush(self, batch: tuple) -> tuple:
        """Merge the frozen queue newest-wins and build level-1 files.

        Runs outside every lock: the frozen memtables are immutable and
        the disk/file-id/listener shims are thread-safe.  A tombstone
        superseded *across* memtables in the batch is reported exactly as
        the memtable itself reports same-table displacement.
        """
        tree = self.tree
        listener = tree.listener
        now = tree.clock.now()
        tombstone_kind = EntryKind.TOMBSTONE
        # Newest-wins via C-level dict merges: each memtable's sidecar
        # index already holds exactly one (latest) entry per key, so one
        # dict.update per memtable replaces the per-entry Python loop.
        # Only the delete-lifecycle bookkeeping (tombstones superseded
        # across memtables) needs per-entry attention, and only for
        # tombstone-bearing tables.
        merged: dict = {}
        tombstone_keys: set = set()
        for memtable in reversed(batch):  # oldest -> newest
            index = memtable._map._index
            if listener is not None:
                if tombstone_keys:
                    for key in tombstone_keys.intersection(index):
                        listener.tombstone_superseded(merged[key], now)
                    tombstone_keys.difference_update(index)
                if memtable.tombstone_count:
                    for key, entry in index.items():
                        if entry.kind is tombstone_kind:
                            tombstone_keys.add(key)
            merged.update(index)
        flushed_seqno = max(
            (
                max(map(_ENTRY_SEQNO, mt._map._index.values()), default=0)
                for mt in batch
            ),
            default=0,
        )
        entries = sorted(merged.values(), key=_ENTRY_KEY)
        # Lazy range deletes: drop fence-shadowed entries instead of
        # writing them out (the flush-time twin of eager's memtable
        # purge).  flushed_seqno above was computed over *all* drained
        # entries, so WAL replay still filters them correctly.
        check = shadow_check(tree._fences)
        if check is not None:
            entries = [e for e in entries if not check(e)]
        if not entries:
            return [], 0, flushed_seqno
        files = build_files(
            entries, tree.config, tree.file_ids, now, salt=tree.bloom_salt
        )
        tree.disk.write_pages(sum(f.page_count for f in files), CATEGORY_FLUSH)
        for file in files:
            tree._persist_file(file)
        return files, len(entries), flushed_seqno

    def _install_flush(self, batch: tuple, files: list, flushed_seqno: int) -> None:
        """Publish the flushed run (``_mu`` held by the caller)."""
        tree = self.tree
        if files:  # every survivor may have been fence-shadowed
            tree.level(1).add_newest_run(Run(files))
            for file in files:
                tree._register_file(file, 1)
        tree.flush_count += 1
        if flushed_seqno > tree._flushed_seqno:
            tree._flushed_seqno = flushed_seqno
        tree._persist_manifest()
        # Publish the new snapshot *before* trimming the frozen queue.
        # Readers load memtable -> frozen -> published in that order, so
        # this order guarantees every flushed entry is visible in at
        # least one of the two at every instant; trimming first opens a
        # window where an acknowledged write is in neither.  The
        # transient double-sighting (frozen + new level-1 run) is
        # harmless for the same reason _rotate's handoff is: frozen is
        # consulted first on lookups, and scans resolve by seqno.
        self._republish()
        self.frozen = self.frozen[: len(self.frozen) - len(batch)]
        # Fence retirement comes *after* the republish + trim: readers
        # load fences before snapshots, so a fence may only disappear
        # once no published (or still-frozen) entry needs it.  The audit
        # includes the remaining frozen memtables -- their sidecar
        # indexes are plain dicts, safe to snapshot under the GIL.
        if tree._fences and tree._retire_resolved_fences(
            [list(mt._map._index.values()) for mt in self.frozen]
        ):
            tree._persist_manifest()

    # ==================================================================
    # compaction scheduler
    # ==================================================================
    def _pump_locked(self) -> None:
        """Plan and dispatch level-disjoint jobs (``_mu`` held).

        Trivial moves (pure metadata) execute inline -- dispatching them
        would cost more than doing them.  Planning happens under the same
        lock as every install, so the planner always sees a consistent
        structure; reserved levels (plus level 1 while a flush waits to
        install) are masked out.
        """
        if self._error is not None or self._shutdown:
            return
        tree = self.tree
        executed_trivial = False
        while self._active_jobs < self.workers:
            busy = self._reserved
            if self._flush_waiting:
                busy = busy | {1}
            frozen_busy = frozenset(busy)
            task = tree._planner.plan(tree, frozen_busy)
            if task is None and tree._fade is not None:
                task = tree._fade.plan(tree, frozen_busy)
            if task is None:
                break
            if task.trivial_move:
                event = execute_task(task, tree)
                tree.compaction_log.append(event)
                self.stats.compaction_jobs += 1
                executed_trivial = True
                continue
            levels = set(task.involved_levels)
            self._reserved |= levels
            self._active_jobs += 1
            if self._active_jobs > self.stats.inflight_peak:
                self.stats.inflight_peak = self._active_jobs
            self._job_queue.append((task, levels, tree.clock.now()))
            self._cv.notify_all()
        if executed_trivial:
            tree._persist_manifest()
            self._republish()
        # An overdue fence that no longer shadows anything can't be
        # planned into a compaction (there is nothing to rewrite) -- when
        # the pipeline is idle, retire it here so quiescence converges
        # (the concurrent twin of maintain()'s resolved-fence branch).
        fade = tree._fade
        if (
            tree._fences
            and fade is not None
            and not self._reserved
            and self._active_jobs == 0
            and fade.fence_overdue(tree.clock.now())
            and tree._retire_resolved_fences(
                [list(mt._map._index.values()) for mt in self.frozen]
            )
        ):
            tree._persist_manifest()

    def _compaction_loop(self) -> None:
        tree = self.tree
        worker = threading.current_thread().name
        while True:
            with self._cv:
                while not self._job_queue and not self._shutdown:
                    self._cv.wait()
                if self._job_queue:
                    task, levels, now = self._job_queue.popleft()
                    if self._error is not None:
                        # Poisoned engine: release the reservation and
                        # drain the queue without touching the tree.
                        self._reserved -= levels
                        self._active_jobs -= 1
                        self._cv.notify_all()
                        continue
                else:
                    return  # shutdown, no queued work
            started = perf_counter()
            try:
                merged = merge_task(task, tree, now=now)
            except BaseException as exc:  # noqa: BLE001 - background error
                with self._cv:
                    if self._error is None:
                        self._error = exc
                    self._reserved -= levels
                    self._active_jobs -= 1
                    self._cv.notify_all()
                continue
            with self._cv:
                if self._error is None:
                    try:
                        event = install_task(task, tree, merged)
                        tree.compaction_log.append(event)
                        tree._persist_manifest()
                        self._republish()
                        # Retire-after-republish: see _install_flush.
                        if tree._fences and tree._retire_resolved_fences(
                            [
                                list(mt._map._index.values())
                                for mt in self.frozen
                            ]
                        ):
                            tree._persist_manifest()
                        wall = perf_counter() - started
                        stats = self.stats
                        stats.compaction_jobs += 1
                        stats.compaction_wall_seconds += wall
                        if wall > stats.compaction_max_seconds:
                            stats.compaction_max_seconds = wall
                        stats.note_worker_pages(worker, merged.pages_written)
                    except BaseException as exc:  # noqa: BLE001
                        if self._error is None:
                            self._error = exc
                self._reserved -= levels
                self._active_jobs -= 1
                self._cv.notify_all()
                if self._error is None:
                    self._pump_locked()

    # ==================================================================
    # snapshots & stats
    # ==================================================================
    def _republish(self) -> None:
        """Rebuild the immutable version readers navigate (``_mu`` held)."""
        self.published = tuple(
            (level, tuple(level.runs)) for level in self.tree._levels
        )

    def report(self) -> dict[str, Any]:
        stats = self.stats
        return {
            "mode": "concurrent",
            "workers": stats.workers,
            "rotations": stats.rotations,
            "queue_depth": len(self.frozen),
            "queue_peak": stats.queue_peak,
            "flush_jobs": stats.flush_jobs,
            "flush_memtables": stats.flush_memtables,
            "flush_entries": stats.flush_entries,
            "flush_wall_ms": stats.flush_wall_seconds * 1000.0,
            "flush_max_ms": stats.flush_max_seconds * 1000.0,
            "compaction_jobs": stats.compaction_jobs,
            "compaction_inflight": self._active_jobs,
            "compaction_inflight_peak": stats.inflight_peak,
            "compaction_wall_ms": stats.compaction_wall_seconds * 1000.0,
            "compaction_max_ms": stats.compaction_max_seconds * 1000.0,
            "soft_delays": stats.soft_delays,
            "hard_stalls": stats.hard_stalls,
            "stall_seconds": stats.stall_seconds,
            "pages_written_by_worker": dict(stats.pages_written_by_worker),
        }


class EngineAbortedError(RuntimeError):
    """Internal sentinel: the controller was abandoned mid-crash-test."""
