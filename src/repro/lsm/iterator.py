"""Merge iterators: the shared machinery of scans and compactions.

Both a range scan and a compaction do the same thing -- combine several
sort-key-ordered streams and resolve multiple versions of a key to the
newest one.  They differ only in what happens to the losers and to winning
tombstones:

* a **scan** silently skips shadowed versions and suppresses winning
  tombstones (a deleted key is invisible);
* a **compaction** reports every shadowed entry (so the persistence tracker
  learns when a tombstone was superseded) and may drop winning tombstones
  when writing the bottommost level (the *purge* that persists a delete).

``merge_resolve`` implements the shared core; thin wrappers specialize it.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator

from repro.lsm.entry import Entry, EntryKind

#: Callback fired with (loser, winner) whenever a version is shadowed.
ShadowCallback = Callable[[Entry, Entry], None]

_TOMBSTONE = EntryKind.TOMBSTONE
_MISSING = object()


def merge_resolve(
    sources: list[Iterable[Entry]],
    on_shadowed: ShadowCallback | None = None,
) -> Iterator[Entry]:
    """K-way merge of key-ordered streams, newest version per key wins.

    Each source must be ascending in sort key with unique keys *within*
    itself (true for memtable drains, files, and runs).  Across sources,
    versions of the same key are resolved by sequence number: the largest
    ``seqno`` wins and every other version is reported to ``on_shadowed``.
    """
    if not sources:
        return
    if len(sources) == 1:
        yield from sources[0]
        return
    if len(sources) == 2:
        # Nearly every compaction merges exactly two streams (the moved
        # file and its overlap, or a flush and the level-1 run), so the
        # general heap -- with its per-entry tuple key -- is bypassed for
        # a direct two-pointer merge.
        yield from _merge_resolve_2(sources[0], sources[1], on_shadowed)
        return

    merged: Iterable[Entry]
    if all(type(s) is list for s in sources):
        # Compaction hands over materialized lists: concatenating and
        # timsorting beats a Python-level k-way heap merge (the comparison
        # loop runs in C and exploits the pre-sorted runs).  ``(key,
        # -seqno)`` pairs are unique, so the result is exactly the heap
        # merge's order.
        flat: list[Entry] = []
        for s in sources:
            flat.extend(s)
        flat.sort(key=lambda e: (e.key, -e.seqno))
        merged = flat
    else:
        merged = heapq.merge(*sources, key=lambda e: (e.key, -e.seqno))
    current: Entry | None = None
    for entry in merged:
        if current is None or entry.key != current.key:
            if current is not None:
                yield current
            current = entry
        else:
            # Same key, smaller seqno: shadowed by `current`.
            if on_shadowed is not None:
                on_shadowed(entry, current)
    if current is not None:
        yield current


def merge_resolve_list(
    sources: list[Iterable[Entry]],
    on_shadowed: ShadowCallback | None = None,
) -> list[Entry]:
    """:func:`merge_resolve`, materialized.

    Compactions consume the whole resolved stream anyway, so giving them a
    list skips the generator protocol's per-entry ``next`` dispatch.  The
    winners and the ``on_shadowed`` callback order are identical to
    :func:`merge_resolve`.
    """
    if not sources:
        return []
    if len(sources) == 1:
        s = sources[0]
        return s if type(s) is list else list(s)
    if len(sources) == 2:
        return list(_merge_resolve_2(sources[0], sources[1], on_shadowed))
    flat: list[Entry] = []
    for s in sources:
        flat.extend(s)
    flat.sort(key=lambda e: (e.key, -e.seqno))
    out: list[Entry] = []
    append = out.append
    current: Entry | None = None
    for entry in flat:
        if current is None or entry.key != current.key:
            if current is not None:
                append(current)
            current = entry
        elif on_shadowed is not None:
            on_shadowed(entry, current)
    if current is not None:
        append(current)
    return out


def _merge_resolve_2(
    source_a: Iterable[Entry],
    source_b: Iterable[Entry],
    on_shadowed: ShadowCallback | None,
) -> Iterator[Entry]:
    """Two-source :func:`merge_resolve`, without the heap.

    Keys are unique within each source, so a key can collide at most once
    across the two streams; after emitting the smaller key it can never
    reappear, which makes the straight two-pointer walk safe.
    """
    ia, ib = iter(source_a), iter(source_b)
    ea = next(ia, None)
    eb = next(ib, None)
    while ea is not None and eb is not None:
        ka = ea.key
        kb = eb.key
        if ka < kb:
            yield ea
            ea = next(ia, None)
        elif kb < ka:
            yield eb
            eb = next(ib, None)
        else:
            # Two versions of one key: the larger seqno wins.
            if ea.seqno > eb.seqno:
                winner, loser = ea, eb
            else:
                winner, loser = eb, ea
            if on_shadowed is not None:
                on_shadowed(loser, winner)
            yield winner
            ea = next(ia, None)
            eb = next(ib, None)
    if ea is not None:
        yield ea
        yield from ia
    elif eb is not None:
        yield eb
        yield from ib


def merge_resolve_desc(
    sources: list[Iterable[Entry]],
    on_shadowed: ShadowCallback | None = None,
) -> Iterator[Entry]:
    """Descending-order twin of :func:`merge_resolve`.

    Each source must be *descending* in sort key with unique keys within
    itself.  Sorting by ``(key, seqno)`` reversed yields keys descending
    and, within one key, the newest version first -- so the winner is the
    first of each group, exactly as in the ascending variant.
    """
    if not sources:
        return
    if len(sources) == 1:
        yield from sources[0]
        return

    merged = heapq.merge(*sources, key=lambda e: (e.key, e.seqno), reverse=True)
    current: Entry | None = None
    for entry in merged:
        if current is None or entry.key != current.key:
            if current is not None:
                yield current
            current = entry
        else:
            if on_shadowed is not None:
                on_shadowed(entry, current)
    if current is not None:
        yield current


def visible_entries(resolved: Iterable[Entry]) -> Iterator[Entry]:
    """Drop winning tombstones: what a user-level scan should see."""
    for entry in resolved:
        if entry.is_put:
            yield entry


def scan_merge(
    sources: list[Iterable[Entry]],
    limit: int | None = None,
    reverse: bool = False,
) -> Iterator[Entry]:
    """User-visible range scan over several sources (newest wins, no
    tombstones), optionally truncated to ``limit`` results.

    With ``reverse=True`` the sources must be key-descending and the
    output (and the ``limit``) runs from the top of the range downward.
    """
    resolve = merge_resolve_desc if reverse else merge_resolve
    produced = 0
    for entry in visible_entries(resolve(sources)):
        yield entry
        produced += 1
        if limit is not None and produced >= limit:
            return


def scan_fused(
    block_sources: list[Iterable[list[Entry]]],
    limit: int | None = None,
    reverse: bool = False,
    drop: Callable[[Entry], bool] | None = None,
) -> Iterator[Entry]:
    """The fused range scan: a k-way merge over *blocks* of entries.

    Each source yields sorted **lists** of in-range entries (one per tile
    or memtable slice; see :meth:`Run.scan_blocks`), ordered and
    unique-keyed within the source, ascending -- or descending when
    ``reverse``.  Fusing the merge over list cursors instead of per-entry
    generators removes a Python frame resumption per entry, and resolving
    versions inline (newest ``seqno`` wins, winning tombstones and
    shadowed versions skipped without materializing) collapses the old
    ``merge_resolve`` -> ``visible_entries`` -> limit pipeline into one
    loop with a hard early-exit on ``limit``.

    ``drop`` is the range-tombstone fence predicate: an entry for which it
    returns True is skipped *without* claiming the key in the dedup state,
    so an older surviving version of the same key still surfaces -- the
    same exposure an eager delete produces by physically removing the
    newer version.

    Sources may yield empty blocks; they are skipped.
    """
    produced = 0
    if len(block_sources) == 1:
        # One source means unique keys and no cross-source shadowing:
        # the merge degenerates to a tombstone (and fence) filter.
        for block in block_sources[0]:
            for entry in block:
                if entry.kind is not _TOMBSTONE and not (
                    drop is not None and drop(entry)
                ):
                    yield entry
                    produced += 1
                    if produced == limit:
                        return
        return
    if reverse:
        yield from _scan_fused_desc(block_sources, limit, drop)
        return

    # Ascending: a heap of list cursors keyed by (key, -seqno) so the
    # newest version of each key surfaces first; stale versions of the
    # same key are skipped by comparing against the last resolved key.
    heap = []
    for si, source in enumerate(block_sources):
        it = iter(source)
        block = next(it, None)
        while block is not None and not block:
            block = next(it, None)
        if block is None:
            continue
        entry = block[0]
        heap.append((entry.key, -entry.seqno, si, 0, block, it))
    heapq.heapify(heap)
    heapreplace = heapq.heapreplace
    heappop = heapq.heappop
    last_key = _MISSING
    while heap:
        key, _negseq, si, idx, block, it = heap[0]
        if key != last_key:
            entry = block[idx]
            if drop is not None and drop(entry):
                pass  # fence-shadowed: older versions of `key` stay live
            else:
                last_key = key
                if entry.kind is not _TOMBSTONE:
                    yield entry
                    produced += 1
                    if produced == limit:
                        return
        idx += 1
        if idx < len(block):
            entry = block[idx]
            heapreplace(heap, (entry.key, -entry.seqno, si, idx, block, it))
        else:
            block = next(it, None)
            while block is not None and not block:
                block = next(it, None)
            if block is None:
                heappop(heap)
            else:
                entry = block[0]
                heapreplace(heap, (entry.key, -entry.seqno, si, 0, block, it))


def _scan_fused_desc(
    block_sources: list[Iterable[list[Entry]]],
    limit: int | None,
    drop: Callable[[Entry], bool] | None = None,
) -> Iterator[Entry]:
    """Descending :func:`scan_fused` core.

    ``heapq`` is min-only, so instead of wrapping every key in a
    reverse-comparing proxy the descending merge selects the max-key
    cursor linearly each step -- O(sources) per entry, and the source
    count (active runs + memtable) is small by construction.
    """
    cursors = []  # mutable [block, idx, iterator] triples
    for source in block_sources:
        it = iter(source)
        block = next(it, None)
        while block is not None and not block:
            block = next(it, None)
        if block is not None:
            cursors.append([block, 0, it])
    produced = 0
    last_key = _MISSING
    while cursors:
        best = None
        best_key = best_seq = None
        for cur in cursors:
            entry = cur[0][cur[1]]
            key = entry.key
            if (
                best is None
                or key > best_key
                or (key == best_key and entry.seqno > best_seq)
            ):
                best, best_key, best_seq = cur, key, entry.seqno
        entry = best[0][best[1]]
        if best_key != last_key:
            if drop is not None and drop(entry):
                pass  # fence-shadowed: older versions of the key stay live
            else:
                last_key = best_key
                if entry.kind is not _TOMBSTONE:
                    yield entry
                    produced += 1
                    if produced == limit:
                        return
        best[1] += 1
        if best[1] >= len(best[0]):
            block = next(best[2], None)
            while block is not None and not block:
                block = next(best[2], None)
            if block is None:
                cursors.remove(best)
            else:
                best[0] = block
                best[1] = 0


class CountingIterator:
    """Wraps an entry iterator and counts what passes through.

    Used by tests and the demo inspector to observe how many versions a
    scan had to consider versus how many it returned.
    """

    def __init__(self, inner: Iterable[Entry]) -> None:
        self._inner = iter(inner)
        self.count = 0

    def __iter__(self) -> "CountingIterator":
        return self

    def __next__(self) -> Entry:
        entry = next(self._inner)
        self.count += 1
        return entry
