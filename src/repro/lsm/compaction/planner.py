"""Baseline compaction planning: saturation and run-count triggers.

This planner implements the state-of-the-art strategies the paper compares
against:

* **leveling** -- a freshly flushed run is collapsed into the level-1 run;
  a level over capacity moves one file (chosen by the configured
  :class:`~repro.config.FilePickPolicy`) down a level, merging it with its
  key-overlap there (file-granular partial compaction, RocksDB-style);
* **tiering** -- a level that has accumulated ``T`` runs merges them all
  into a single new run in the next level.

The planner returns one task at a time; the tree loops until no trigger
fires.  FADE's additional delete-aware triggers live in
:mod:`repro.core.fade` and take priority over these (expired tombstones are
compacted before ordinary housekeeping).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import (
    CompactionGranularity,
    CompactionStyle,
    FilePickPolicy,
    LSMConfig,
)
from repro.lsm.level import Level
from repro.lsm.run import Run, SSTableFile
from repro.lsm.compaction.task import (
    CompactionReason,
    CompactionTask,
    OutputPlacement,
    TaskInput,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree

_FAR_FUTURE = float("inf")


class SaturationPlanner:
    """Plans classical (delete-unaware) compactions.

    ``use_cached_stats`` (the default) reads the O(1) incremental counters
    maintained by :class:`~repro.lsm.level.Level` and
    :class:`~repro.lsm.run.Run`.  Setting it False re-derives every count
    by walking runs and files -- the seed code path, kept so the perf suite
    can measure the pre-cache trigger cost against the same tree.  Both
    modes see identical values (cache coherence is invariant-checked), so
    planning decisions never differ.
    """

    def __init__(self, config: LSMConfig, use_cached_stats: bool = True) -> None:
        self.config = config
        self.use_cached_stats = use_cached_stats

    def _level_entries(self, level: Level) -> int:
        if self.use_cached_stats:
            return level.entry_count
        return sum(f.entry_count for run in level.runs for f in run.files)

    def _run_entries(self, run: Run) -> int:
        if self.use_cached_stats:
            return run.entry_count
        return sum(f.entry_count for f in run.files)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def plan(
        self, tree: "LSMTree", busy_levels: frozenset[int] = frozenset()
    ) -> CompactionTask | None:
        """The next task the baseline strategy requires, or None.

        ``busy_levels`` holds levels reserved by in-flight concurrent
        compactions; any candidate task touching one is skipped so the
        scheduler only ever dispatches level-disjoint jobs.  The empty
        default makes serial planning bit-identical to the single-threaded
        planner.
        """
        if self.config.policy is CompactionStyle.LEVELING:
            return self._plan_leveling(tree, busy_levels)
        if self.config.policy is CompactionStyle.LAZY_LEVELING:
            return self._plan_lazy_leveling(tree, busy_levels)
        return self._plan_tiering(tree, busy_levels)

    # ------------------------------------------------------------------
    # leveling
    # ------------------------------------------------------------------
    def _plan_leveling(
        self, tree: "LSMTree", busy: frozenset[int] = frozenset()
    ) -> CompactionTask | None:
        # First restore the one-run-per-level invariant (flush landing).
        for level in tree.iter_levels():
            if busy and level.index in busy:
                continue
            if level.run_count > 1:
                return self._collapse_level(tree, level)
        # Then resolve capacity overflows top-down.
        for level in tree.iter_levels():
            if busy and (level.index in busy or level.index + 1 in busy):
                continue
            if level.is_empty:
                continue
            if self._level_entries(level) > self.config.level_capacity_entries(level.index):
                return self._move_one_file(tree, level)
        return None

    def _collapse_level(self, tree: "LSMTree", level: Level) -> CompactionTask:
        inputs = [TaskInput(level.index, run, list(run.files)) for run in level.runs]
        drop = (
            level.index >= tree.deepest_nonempty_level()
            and self.config.drop_tombstones_at_bottom
        )
        return CompactionTask(
            reason=CompactionReason.LEVEL_COLLAPSE,
            inputs=inputs,
            target_level=level.index,
            placement=OutputPlacement.NEW_RUN,
            drop_tombstones=drop,
            notes=f"collapse {level.run_count} runs of L{level.index}",
        )

    def _move_one_file(self, tree: "LSMTree", level: Level) -> CompactionTask:
        if self.config.granularity is CompactionGranularity.LEVEL:
            return self._move_whole_level(tree, level)
        source_run = level.runs[0]
        next_index = level.index + 1
        next_level = tree.level(next_index)
        victim = self._pick_file(source_run, next_level)
        inputs = [TaskInput(level.index, source_run, [victim])]
        overlap: list[SSTableFile] = []
        if not next_level.is_empty:
            target_run = next_level.runs[0]
            overlap = target_run.overlapping_files(victim.min_key, victim.max_key)
            if overlap:
                inputs.append(TaskInput(next_index, target_run, overlap))
        drop = (
            next_index >= tree.deepest_nonempty_level()
            and self.config.drop_tombstones_at_bottom
        )
        # Trivial move: no overlap below and nothing to purge -> the file
        # descends as pure metadata, no device I/O (RocksDB behaviour).
        purge_matters = drop and victim.tombstone_count > 0
        if self.config.trivial_moves and not overlap and not purge_matters:
            return CompactionTask(
                reason=CompactionReason.SATURATION,
                inputs=inputs,
                target_level=next_index,
                placement=OutputPlacement.MERGE_INTO_TARGET_RUN,
                trivial_move=True,
                notes=f"trivial move of file {victim.file_id} L{level.index}->L{next_index}",
            )
        return CompactionTask(
            reason=CompactionReason.SATURATION,
            inputs=inputs,
            target_level=next_index,
            placement=OutputPlacement.MERGE_INTO_TARGET_RUN,
            drop_tombstones=drop,
            notes=f"file {victim.file_id} from L{level.index}",
        )

    def _move_whole_level(self, tree: "LSMTree", level: Level) -> CompactionTask:
        """LEVEL granularity: merge the entire level into the next one."""
        source_run = level.runs[0]
        next_index = level.index + 1
        next_level = tree.level(next_index)
        inputs = [TaskInput(level.index, source_run, list(source_run.files))]
        if not next_level.is_empty:
            target_run = next_level.runs[0]
            inputs.append(TaskInput(next_index, target_run, list(target_run.files)))
        drop = (
            next_index >= tree.deepest_nonempty_level()
            and self.config.drop_tombstones_at_bottom
        )
        return CompactionTask(
            reason=CompactionReason.SATURATION,
            inputs=inputs,
            target_level=next_index,
            placement=OutputPlacement.NEW_RUN,
            drop_tombstones=drop,
            notes=f"full-level merge L{level.index}->L{next_index}",
        )

    def _pick_file(self, source_run: Run, next_level: Level) -> SSTableFile:
        """Choose the file to move, per the configured policy."""
        policy = self.config.file_pick
        files = source_run.files

        def overlap_entries(file: SSTableFile) -> int:
            if next_level.is_empty:
                return 0
            target_run = next_level.runs[0]
            return sum(
                f.entry_count
                for f in target_run.overlapping_files(file.min_key, file.max_key)
            )

        if policy is FilePickPolicy.TOMBSTONE_DENSITY:
            # FADE's data-movement policy: drain tombstones at the lowest
            # merge cost.  The score is entries moved per tombstone pushed
            # down -- a file dense in tombstones is worth a bigger merge,
            # while among tombstone-free files the score degenerates to
            # plain min-overlap.  (Scoring *only* by density, ignoring
            # merge cost, roughly doubles write amplification at this
            # scale for no extra persistence benefit.)
            def drain_score(f: SSTableFile) -> tuple[float, float, int]:
                moved = f.entry_count + overlap_entries(f)
                payoff = 1 + f.tombstone_count
                age = (
                    f.oldest_tombstone_time
                    if f.oldest_tombstone_time is not None
                    else _FAR_FUTURE
                )
                return (moved / payoff, age, f.file_id)

            return min(files, key=drain_score)
        if policy is FilePickPolicy.OLDEST:
            return min(files, key=lambda f: (f.created_at, f.file_id))
        # MIN_OVERLAP: cheapest merge (classic write-amp-friendly choice).
        return min(files, key=lambda f: (overlap_entries(f), f.file_id))

    # ------------------------------------------------------------------
    # lazy leveling (Dostoevsky): tiering everywhere, leveling at the last
    # ------------------------------------------------------------------
    def _plan_lazy_leveling(
        self, tree: "LSMTree", busy: frozenset[int] = frozenset()
    ) -> CompactionTask | None:
        last = tree.deepest_nonempty_level()
        if last == 0:
            return None
        last_busy = bool(busy) and (last in busy or last + 1 in busy)
        last_level = tree.level(last)
        if not last_busy:
            # 1. The last level must be one leveled run.
            if last_level.run_count > 1:
                return self._collapse_level(tree, last_level)
            # 2. An outgrown last run is pushed down as-is: a trivial move
            #    (no merge -- nothing exists below it), creating the next
            #    level.
            (last_run,) = last_level.runs
            if self._run_entries(last_run) > self.config.level_capacity_entries(last):
                return CompactionTask(
                    reason=CompactionReason.RELOCATION,
                    inputs=[TaskInput(last, last_run, list(last_run.files))],
                    target_level=last + 1,
                    placement=OutputPlacement.NEW_RUN,
                    trivial_move=True,
                    notes=f"relocate last run L{last}->L{last + 1}",
                )
        # 3. Tier levels above the last merge on run count; a merge landing
        #    *on* the last level absorbs the last run (leveling behaviour).
        for level in tree.iter_levels():
            if level.index >= last or level.run_count < self.config.size_ratio:
                continue
            next_index = level.index + 1
            if busy and (level.index in busy or next_index in busy):
                continue
            if next_index == last and last_level.run_count != 1:
                # The last level is mid-install (a concurrent job owns it
                # or it briefly holds several runs); wait for step 1.
                continue
            inputs = [TaskInput(level.index, run, list(run.files)) for run in level.runs]
            if next_index == last:
                inputs.append(
                    TaskInput(last, last_level.runs[0], list(last_level.runs[0].files))
                )
            drop = (
                next_index >= last
                and self.config.drop_tombstones_at_bottom
            )
            return CompactionTask(
                reason=CompactionReason.SATURATION,
                inputs=inputs,
                target_level=next_index,
                placement=OutputPlacement.NEW_RUN,
                drop_tombstones=drop,
                notes=f"lazy tier-merge L{level.index}->L{next_index}",
            )
        return None

    # ------------------------------------------------------------------
    # tiering
    # ------------------------------------------------------------------
    def _plan_tiering(
        self, tree: "LSMTree", busy: frozenset[int] = frozenset()
    ) -> CompactionTask | None:
        for level in tree.iter_levels():
            if busy and (level.index in busy or level.index + 1 in busy):
                continue
            if level.run_count >= self.config.size_ratio:
                return self.tier_merge_task(tree, level)
        return None

    def tier_merge_task(
        self,
        tree: "LSMTree",
        level: Level,
        reason: CompactionReason = CompactionReason.SATURATION,
    ) -> CompactionTask:
        """Merge every run of ``level`` into one run in the next level.

        Shared with FADE, whose TTL trigger forces the same merge early.
        """
        next_index = level.index + 1
        inputs = [TaskInput(level.index, run, list(run.files)) for run in level.runs]
        target_empty = tree.level(next_index).is_empty
        drop = (
            target_empty
            and level.index >= tree.deepest_nonempty_level()
            and self.config.drop_tombstones_at_bottom
        )
        return CompactionTask(
            reason=reason,
            inputs=inputs,
            target_level=next_index,
            placement=OutputPlacement.NEW_RUN,
            drop_tombstones=drop,
            notes=f"tier-merge {level.run_count} runs of L{level.index}",
        )
