"""Compaction framework: tasks, planning, execution.

Following the design-space decomposition of Sarkar et al. (PVLDB 2021), a
compaction strategy is factored into *when to compact* (trigger), *which
data to move* (picker), and *how to execute the move* (executor).  The
baseline triggers (saturation, run-count) live in
:mod:`repro.lsm.compaction.planner`; the paper's delete-aware triggers
(tombstone TTL expiry, bottom-level purge) live in :mod:`repro.core.fade`
and produce the same :class:`CompactionTask` objects, so a single executor
serves every strategy.
"""

from repro.lsm.compaction.executor import (
    CompactionEvent,
    MergedOutput,
    execute_task,
    install_task,
    merge_task,
)
from repro.lsm.compaction.planner import SaturationPlanner
from repro.lsm.compaction.task import CompactionReason, CompactionTask, TaskInput

__all__ = [
    "CompactionEvent",
    "CompactionReason",
    "CompactionTask",
    "MergedOutput",
    "SaturationPlanner",
    "TaskInput",
    "execute_task",
    "install_task",
    "merge_task",
]
