"""Self-tuning compaction: the per-shard policy governor.

Every tree ships with one static :class:`~repro.config.CompactionStyle`
chosen blind at open time, yet the policy lattice has no all-weather
winner -- leveling pays ``O(L*T)`` write amplification to keep one run
per level (cheap reads/scans), tiering pays ``O(L)`` writes but
accumulates ``O(L*T)`` runs (expensive reads), and lazy leveling splits
the difference (*Constructing and Analyzing the LSM Compaction Design
Space*, PAPERS.md).  This module supplies the controller that picks the
policy **per shard, online**, from the observed operation mix:

:class:`PolicyCostModel`
    Prices one observed window of operations under each candidate policy
    in **modeled page I/O**, using the closed-form write-amplification
    and run-count expressions of the design-space analysis evaluated at
    the shard's *observed* depth.  Pure and stateless: the unit tests
    pin its preference directions (write-heavy -> tiering, read/scan
    heavy -> leveling, mixed -> lazy leveling in between).

:class:`CompactionTuner`
    A per-window controller (the PR 7 auto-split / PR 8 memory governor
    cadence, evaluated on the router thread) that scores each shard's
    window, and -- behind hysteresis (a challenger must win
    ``hysteresis`` consecutive windows by at least ``min_advantage``)
    plus a post-switch cooldown, so it never oscillates -- emits policy
    switch decisions.  The engine applies them through the live
    :meth:`~repro.lsm.tree.LSMTree.set_policy` seam: leveling ->
    tiering/lazy takes effect at the next plan, tiering -> leveling
    drains through ordinary run-consolidation compactions (FADE priority
    and fence resolution preserved, no ``exclusive()`` quiesce).

Delete-awareness (Lethe, PAPERS.md): tombstones are priced beyond their
write cost -- a run-heavy layout holds more superseded-but-unmerged
versions, so FADE's forced merges drain deletes through more files.  The
``delete_drain_weight`` knob scales that term.

The tuner is default-off and bit-identical when off: nothing here is
imported on the hot path unless armed, and the policy a tree was opened
with is never touched.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.config import CompactionStyle

__all__ = ["CompactionTuner", "PolicyCostModel", "PolicyTunerConfig"]

#: Candidate policies, scored in this (stable) order.
POLICIES = (
    CompactionStyle.LEVELING,
    CompactionStyle.TIERING,
    CompactionStyle.LAZY_LEVELING,
)


@dataclass(frozen=True)
class PolicyTunerConfig:
    """Tuning knobs for the self-tuning compaction governor."""

    #: Routed operations (writes + deletes + reads + scans) per evaluation
    #: window (the PR 7 / PR 8 controller cadence).
    window_ops: int = 4096
    #: Windows with fewer total operations than this are skipped (a
    #: trickle carries too little signal to retune on).
    min_window_ops: int = 256
    #: Consecutive windows a challenger policy must win before the switch
    #: fires.  The no-oscillation contract: one anomalous window can
    #: never flip a shard.
    hysteresis: int = 2
    #: Windows a shard sits out after a switch before it may be scored
    #: again (the transition compactions themselves perturb the mix).
    cooldown_windows: int = 2
    #: Minimum fractional modeled-I/O advantage a challenger must show
    #: over the incumbent, every window of the streak.
    min_advantage: float = 0.05
    #: Expected extra page probes per additional sorted run on a point
    #: lookup (blooms deflect most probes; fence pruning the rest).
    read_probe_factor: float = 0.25
    #: Modeled pages a range scan touches per sorted run it must merge.
    scan_page_span: float = 4.0
    #: Weight on the delete-drain term: extra modeled page I/O per
    #: tombstone per sorted run FADE's forced merges must drain through.
    #: Kept small: a tombstone is first of all a *write* (it pays the
    #: policy's full write amplification, already priced above), and the
    #: drain refinement must never outweigh that -- a delete-heavy mix
    #: is a write-heavy mix with a FADE accent, not a read-heavy one.
    delete_drain_weight: float = 0.1

    def __post_init__(self) -> None:
        if self.window_ops < 1:
            raise ValueError(f"window_ops must be >= 1, got {self.window_ops}")
        if self.min_window_ops < 0:
            raise ValueError(
                f"min_window_ops must be >= 0, got {self.min_window_ops}"
            )
        if self.hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {self.hysteresis}")
        if self.cooldown_windows < 0:
            raise ValueError(
                f"cooldown_windows must be >= 0, got {self.cooldown_windows}"
            )
        if self.min_advantage < 0.0:
            raise ValueError(
                f"min_advantage must be >= 0, got {self.min_advantage}"
            )
        if self.read_probe_factor < 0.0:
            raise ValueError(
                f"read_probe_factor must be >= 0, got {self.read_probe_factor}"
            )
        if self.scan_page_span <= 0.0:
            raise ValueError(
                f"scan_page_span must be > 0, got {self.scan_page_span}"
            )
        if self.delete_drain_weight < 0.0:
            raise ValueError(
                f"delete_drain_weight must be >= 0, got {self.delete_drain_weight}"
            )


class PolicyCostModel:
    """Closed-form modeled page I/O of one window under each policy.

    The design-space expressions, evaluated at the shard's observed
    depth ``L`` and the config's size ratio ``T`` / entries-per-page:

    ========== ============================ =========================
    policy     write amp (merges/entry)     expected sorted runs
    ========== ============================ =========================
    leveling   ``L * (T+1)/2``              ``L``
    tiering    ``L``                        ``L * (T+1)/2``
    lazy       ``(L-1) + (T+1)/2``          ``(L-1) * (T+1)/2 + 1``
    ========== ============================ =========================

    (Lazy leveling tiers the upper levels and levels the last -- hence
    one merge cascade minus the repeated last-level rewrites, and one
    run at the bottom.)  Costs per operation class:

    * **write/delete ingestion**: write amp divided by entries per page
      (each entry is rewritten ``amp`` times, ``epp`` entries per page);
    * **point read**: ``1 + read_probe_factor * (runs - 1)`` pages (the
      first run is a hit; every extra run risks a bloom-filtered probe);
    * **scan**: ``scan_page_span`` pages per run (every run contributes
      a cursor to the fused merge);
    * **delete drain**: ``delete_drain_weight * runs / L`` extra pages
      per tombstone (FADE's forced merges push tombstones through every
      run on their level-by-level descent -- the Lethe term).
    """

    def __init__(self, config: PolicyTunerConfig) -> None:
        self.config = config

    @staticmethod
    def write_amplification(policy: CompactionStyle, depth: int, size_ratio: int) -> float:
        level_cost = (size_ratio + 1) / 2.0
        if policy is CompactionStyle.LEVELING:
            return depth * level_cost
        if policy is CompactionStyle.TIERING:
            return float(depth)
        return (depth - 1) + level_cost  # lazy leveling

    @staticmethod
    def expected_runs(policy: CompactionStyle, depth: int, size_ratio: int) -> float:
        runs_per_level = (size_ratio + 1) / 2.0
        if policy is CompactionStyle.LEVELING:
            return float(depth)
        if policy is CompactionStyle.TIERING:
            return depth * runs_per_level
        return (depth - 1) * runs_per_level + 1.0  # lazy leveling

    def cost(
        self,
        policy: CompactionStyle,
        counts: dict[str, int],
        depth: int,
        size_ratio: int,
        entries_per_page: int,
    ) -> float:
        """Modeled page I/O of one observed window under ``policy``."""
        cfg = self.config
        depth = max(1, depth)
        epp = max(1, entries_per_page)
        writes = counts.get("write", 0)
        deletes = counts.get("delete", 0)
        reads = counts.get("read", 0)
        scans = counts.get("scan", 0)
        amp = self.write_amplification(policy, depth, size_ratio)
        runs = self.expected_runs(policy, depth, size_ratio)
        ingest_cost = (writes + deletes) * amp / epp
        read_cost = reads * (1.0 + cfg.read_probe_factor * (runs - 1.0))
        scan_cost = scans * cfg.scan_page_span * runs
        drain_cost = deletes * cfg.delete_drain_weight * runs / depth
        return ingest_cost + read_cost + scan_cost + drain_cost

    def costs(
        self,
        counts: dict[str, int],
        depth: int,
        size_ratio: int,
        entries_per_page: int,
    ) -> dict[CompactionStyle, float]:
        """Every candidate's modeled window cost (stable policy order)."""
        return {
            policy: self.cost(policy, counts, depth, size_ratio, entries_per_page)
            for policy in POLICIES
        }


class CompactionTuner:
    """Per-window policy selection over a sharded (or single) engine.

    The engine feeds routed operations through :meth:`note_ops` (exactly
    the auto-split/governor intake, extended with the read/scan classes)
    and, when a window closes, gathers per-shard signals and calls
    :meth:`evaluate`, then applies the returned decisions through the
    live ``set_policy`` seam.  All controller state is advisory and
    process-local; the *applied* policy is durable tree state (it enters
    the manifest), so a reopened store keeps its tuned layout while the
    streak/cooldown bookkeeping starts fresh.
    """

    def __init__(self, config: PolicyTunerConfig | None = None) -> None:
        self.config = config or PolicyTunerConfig()
        self.model = PolicyCostModel(self.config)
        #: Per-shard per-class window counts: index -> {"write": n, ...}.
        self.window_counts: dict[int, dict[str, int]] = {}
        self._window_total = 0
        #: Per-shard challenger streaks: index -> (policy, wins so far).
        self._streaks: dict[int, tuple[CompactionStyle, int]] = {}
        #: Per-shard cooldown (windows remaining before scoring resumes).
        self._cooldowns: dict[int, int] = {}
        #: Every applied decision, JSON-safe rows for the inspector.
        self.events: list[dict[str, Any]] = []
        self.windows_evaluated = 0
        self.switch_count = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # signal intake
    # ------------------------------------------------------------------
    def note_ops(self, index: int, kind: str, count: int = 1) -> bool:
        """Count routed ops of ``kind`` ("write"/"delete"/"read"/"scan");
        True when a window boundary was crossed."""
        shard = self.window_counts.setdefault(index, {})
        shard[kind] = shard.get(kind, 0) + count
        self._window_total += count
        return self._window_total >= self.config.window_ops

    def reset_topology(self) -> None:
        """Drop per-shard controller state after a split renumbers shards.

        Window counts, streaks, and cooldowns are all indexed by shard
        position; a topology change invalidates the indexing, so the
        conservative move is to start the window over (one window of
        signal is cheap; a misattributed streak is not).
        """
        with self._lock:
            self.window_counts = {}
            self._window_total = 0
            self._streaks = {}
            self._cooldowns = {}

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def evaluate(
        self, signals: dict[int, dict[str, Any]], tick: int = 0
    ) -> list[dict[str, Any]]:
        """Score the closed window; return per-shard switch decisions.

        ``signals`` maps shard index to observed state: the current
        ``policy`` (:class:`CompactionStyle`), the observed ``depth``
        (deepest non-empty level), and the config's ``size_ratio`` and
        ``entries_per_page``.  Returns rows of ``{"shard", "policy"}``
        for every shard whose hysteresis streak completed this window;
        the caller pushes them into the live ``set_policy`` seams.
        """
        with self._lock:
            return self._evaluate_locked(signals, tick)

    def _evaluate_locked(
        self, signals: dict[int, dict[str, Any]], tick: int
    ) -> list[dict[str, Any]]:
        cfg = self.config
        counts, self.window_counts = self.window_counts, {}
        total, self._window_total = self._window_total, 0
        if total < cfg.min_window_ops:
            # A trickle window carries no signal: don't count it as
            # evaluated, don't touch streaks or cooldowns.
            return []
        self.windows_evaluated += 1
        decisions: list[dict[str, Any]] = []
        for index, sig in sorted(signals.items()):
            window = counts.get(index)
            if not window:
                continue
            cooldown = self._cooldowns.get(index, 0)
            if cooldown > 0:
                self._cooldowns[index] = cooldown - 1
                continue
            current = sig["policy"]
            scores = self.model.costs(
                window,
                int(sig.get("depth", 1)),
                int(sig.get("size_ratio", 4)),
                int(sig.get("entries_per_page", 32)),
            )
            best = min(POLICIES, key=lambda p: (scores[p], p is not current))
            incumbent_cost = scores[current]
            if (
                best is current
                or incumbent_cost <= 0.0
                or scores[best] > incumbent_cost * (1.0 - cfg.min_advantage)
            ):
                # No challenger with a convincing margin: the streak (if
                # any) is broken -- hysteresis demands *consecutive* wins.
                self._streaks.pop(index, None)
                continue
            prev_policy, wins = self._streaks.get(index, (best, 0))
            wins = wins + 1 if prev_policy is best else 1
            if wins < cfg.hysteresis:
                self._streaks[index] = (best, wins)
                continue
            self._streaks.pop(index, None)
            self._cooldowns[index] = cfg.cooldown_windows
            self.switch_count += 1
            decisions.append({"shard": index, "policy": best})
            self.events.append(
                {
                    "event": "switch",
                    "window": self.windows_evaluated,
                    "tick": tick,
                    "shard": index,
                    "from": current.value,
                    "to": best.value,
                    "window_ops": dict(window),
                    "modeled_cost": {p.value: round(scores[p], 2) for p in POLICIES},
                }
            )
        return decisions

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-safe snapshot for ``EngineStats.policy`` / the inspector."""
        return {
            "windows_evaluated": self.windows_evaluated,
            "switches": self.switch_count,
            "events": list(self.events[-16:]),
        }
