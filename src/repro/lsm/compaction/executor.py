"""Compaction execution.

One executor serves every strategy (baseline and FADE): it charges the
simulated disk for the merge's sequential reads and writes, resolves
versions with :func:`~repro.lsm.iterator.merge_resolve`, optionally purges
winning tombstones, rebuilds output files in the configured layout (so KiWi
weaving is re-established on every compaction, exactly as in the paper),
and splices the level structure.

The executor is also where the delete-persistence lifecycle is observed:

* a tombstone shadowed by a newer version is reported **superseded**
  (the delete became moot);
* a winning tombstone dropped at the bottommost level is reported
  **persisted** -- this is the event whose latency the paper bounds with
  ``D_th``.

Execution is split into two phases so the concurrent write path
(:mod:`repro.lsm.writepath`) can run the expensive half off the structure
lock:

* :func:`merge_task` -- reads inputs, resolves versions, builds the output
  files, and charges the device.  It touches no level structure, so any
  number of merges over *disjoint* levels may run concurrently.
* :func:`install_task` -- detaches the consumed files and splices the
  output into the levels.  It mutates shared structure and must run under
  the tree's install lock (trivially satisfied in serial mode).

:func:`execute_task` composes the two and is bit-identical to the old
single-phase executor; the serial engine keeps calling it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.lsm.entry import Entry, EntryKind
from repro.lsm.fence import shadow_check
from repro.lsm.iterator import merge_resolve_list
from repro.lsm.run import Run, SSTableFile, build_files
from repro.lsm.compaction.task import CompactionTask, OutputPlacement
from repro.storage.disk import CATEGORY_COMPACTION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree
    from repro.core.tracker import DeleteLifecycleListener


@dataclass(frozen=True)
class CompactionEvent:
    """What one executed compaction did (appended to the tree's log)."""

    reason: str
    source_level: int
    target_level: int
    entries_in: int
    entries_out: int
    tombstones_dropped: int
    tombstones_superseded: int
    pages_read: int
    pages_written: int
    output_file_ids: tuple[int, ...]
    tick: int
    #: Entries dropped because a range-tombstone fence shadowed them --
    #: the deferred physical work of a lazy secondary range delete,
    #: resolved (and charged) here rather than at call time.
    fence_resolved: int = 0


@dataclass
class MergedOutput:
    """The result of :func:`merge_task`, awaiting :func:`install_task`."""

    new_files: list[SSTableFile]
    entries_out: int
    tombstones_dropped: int
    tombstones_superseded: int
    pages_read: int
    pages_written: int
    tick: int
    fence_resolved: int = 0


def execute_task(task: CompactionTask, tree: "LSMTree") -> CompactionEvent:
    """Run ``task`` against ``tree`` and return what happened."""
    if task.trivial_move:
        return _execute_trivial_move(task, tree, tree.clock.now())
    merged = merge_task(task, tree)
    return install_task(task, tree, merged)


def merge_task(
    task: CompactionTask,
    tree: "LSMTree",
    listener: "DeleteLifecycleListener | None" = None,
    now: int | None = None,
) -> MergedOutput:
    """Phase 1: read, merge, and build output files (no structure access).

    ``listener`` overrides ``tree.listener`` (the concurrent executor
    passes a lock-wrapped listener so tracker state stays consistent when
    several merges report lifecycle events at once).
    """
    if now is None:
        now = tree.clock.now()
    if listener is None:
        listener = tree.listener

    # -- charge the sequential read of every input page -----------------
    pages_read = task.input_pages
    if pages_read:
        tree.disk.read_pages(pages_read, CATEGORY_COMPACTION)

    # -- merge, observing the tombstone lifecycle -----------------------
    superseded = 0
    tombstone_kind = EntryKind.TOMBSTONE

    def on_shadowed(loser: Entry, winner: Entry) -> None:
        nonlocal superseded
        if loser.kind is tombstone_kind:
            superseded += 1
            if listener is not None:
                listener.tombstone_superseded(loser, now)

    # Each source is materialized as one flat list: compaction has already
    # paid for every input page, and flat lists iterate far faster through
    # the merge than a tower of per-tile generators.
    sources: list[Iterable[Entry]] = []
    for inp in task.inputs:
        if len(inp.files) == 1:
            sources.append(inp.files[0].all_entries())
        else:
            flat: list[Entry] = []
            for f in inp.files:
                flat.extend(f.all_entries())
            sources.append(flat)
    # Range-tombstone fences resolve here: shadowed entries are removed
    # from each input *before* version resolution, exactly as an eager
    # delete physically removed them from the files -- so an older
    # out-of-window version in the same merge still wins its key, and
    # the rewrite cost lands in CATEGORY_COMPACTION where it belongs.
    fence_resolved = 0
    fence_drop = shadow_check(tree.fences)
    if fence_drop is not None:
        filtered: list[Iterable[Entry]] = []
        for source in sources:
            kept = [e for e in source if not fence_drop(e)]
            fence_resolved += len(source) - len(kept)
            filtered.append(kept)
        sources = filtered
    resolved = merge_resolve_list(sources, on_shadowed)
    dropped = 0
    if task.drop_tombstones:
        out_entries: list[Entry] = []
        for entry in resolved:
            if entry.kind is tombstone_kind:
                dropped += 1
                if listener is not None:
                    listener.tombstone_persisted(entry, now)
            else:
                out_entries.append(entry)
    else:
        out_entries = resolved

    # -- build and charge the output -------------------------------------
    new_files = (
        build_files(
            out_entries,
            tree.config,
            tree.file_ids,
            now,
            level=task.target_level,
            salt=tree.bloom_salt,
        )
        if out_entries
        else []
    )
    pages_written = sum(f.page_count for f in new_files)
    if pages_written:
        tree.disk.write_pages(pages_written, CATEGORY_COMPACTION)

    return MergedOutput(
        new_files=new_files,
        entries_out=len(out_entries),
        tombstones_dropped=dropped,
        tombstones_superseded=superseded,
        pages_read=pages_read,
        pages_written=pages_written,
        tick=now,
        fence_resolved=fence_resolved,
    )


def install_task(
    task: CompactionTask, tree: "LSMTree", merged: MergedOutput
) -> CompactionEvent:
    """Phase 2: splice the merge output into the level structure.

    Mutates levels, the block cache, and the FADE/tracker registries --
    callers in concurrent mode must hold the tree's install lock.
    """
    new_files = merged.new_files

    # -- detach consumed files -------------------------------------------
    for inp in task.inputs:
        level = tree.level(inp.level_index)
        consumed = {f.file_id for f in inp.files}
        remaining = [f for f in inp.run.files if f.file_id not in consumed]
        # Invalidate (and permanently retire, see BlockCache) the inputs'
        # cached pages *before* detaching them from the level: a lock-free
        # observer then never sees a file that is gone from the structure
        # but still present in the cache, and a reader holding a stale
        # published snapshot cannot re-insert the dead pages afterwards.
        for file in inp.files:
            tree.cache.invalidate_file(file.file_id)
        level.replace_run(inp.run, Run(remaining) if remaining else None)
        for file in inp.files:
            tree.on_file_removed(file, inp.level_index)

    # -- install the output ------------------------------------------------
    if new_files:
        target = tree.level(task.target_level)
        if task.placement is OutputPlacement.MERGE_INTO_TARGET_RUN and target.runs:
            if len(target.runs) != 1:
                raise AssertionError(
                    f"MERGE_INTO_TARGET_RUN expects a leveled target, found "
                    f"{len(target.runs)} runs in level {task.target_level}"
                )
            existing = target.runs[0]
            target.replace_run(existing, Run(existing.files + new_files))
        else:
            target.add_newest_run(Run(new_files))
        for file in new_files:
            tree.on_file_added(file, task.target_level)

    event = CompactionEvent(
        reason=task.reason.value,
        source_level=task.source_level,
        target_level=task.target_level,
        entries_in=task.input_entries,
        entries_out=merged.entries_out,
        tombstones_dropped=merged.tombstones_dropped,
        tombstones_superseded=merged.tombstones_superseded,
        pages_read=merged.pages_read,
        pages_written=merged.pages_written,
        output_file_ids=tuple(f.file_id for f in new_files),
        tick=merged.tick,
        fence_resolved=merged.fence_resolved,
    )
    return event


def _execute_trivial_move(
    task: CompactionTask, tree: "LSMTree", now: int
) -> CompactionEvent:
    """Reassign the input files to the target level without touching data.

    RocksDB calls this a trivial move: when the moved key range has no
    overlap at the destination, compaction is pure metadata -- no merge,
    no device I/O.  Lazy leveling's relocation of an outgrown last level
    uses this, as does any leveling move whose range is clear below.
    """
    (inp,) = task.inputs
    target = tree.level(task.target_level)
    for run in target.runs:
        for file in inp.files:
            if run.overlapping_files(file.min_key, file.max_key):
                raise AssertionError(
                    f"trivial move of file {file.file_id} overlaps data in "
                    f"level {task.target_level}"
                )

    source_level = tree.level(inp.level_index)
    consumed = {f.file_id for f in inp.files}
    remaining = [f for f in inp.run.files if f.file_id not in consumed]
    source_level.replace_run(inp.run, Run(remaining) if remaining else None)
    for file in inp.files:
        # Re-register at the new depth (FADE deadlines depend on the
        # level); the file object, its id, and its cached pages are reused.
        tree.on_file_moved(file, inp.level_index, task.target_level)

    moved_run = Run(list(inp.files))
    if task.placement is OutputPlacement.MERGE_INTO_TARGET_RUN and target.runs:
        if len(target.runs) != 1:
            raise AssertionError(
                "MERGE_INTO_TARGET_RUN expects a leveled target for a trivial move"
            )
        existing = target.runs[0]
        target.replace_run(existing, Run(existing.files + list(inp.files)))
    else:
        target.add_newest_run(moved_run)

    return CompactionEvent(
        reason=task.reason.value,
        source_level=task.source_level,
        target_level=task.target_level,
        entries_in=task.input_entries,
        entries_out=task.input_entries,
        tombstones_dropped=0,
        tombstones_superseded=0,
        pages_read=0,
        pages_written=0,
        output_file_ids=tuple(f.file_id for f in inp.files),
        tick=now,
    )
