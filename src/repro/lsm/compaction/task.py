"""Compaction task descriptions.

A :class:`CompactionTask` is a pure description of one merge: which files
leave which runs, where the output lands, and whether winning tombstones may
be purged.  Planners (baseline and FADE) produce tasks; the executor
consumes them.  Keeping the description declarative makes every strategy
testable without running an engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lsm.run import Run, SSTableFile


class CompactionReason(enum.Enum):
    """Why a task was planned (reported in logs and the demo inspector)."""

    #: A level temporarily holds more runs than leveling allows; collapse
    #: them into one (also how a fresh flush merges into level 1).
    LEVEL_COLLAPSE = "level_collapse"
    #: A level exceeded its capacity; move data to the next level.
    SATURATION = "saturation"
    #: FADE: a file's oldest tombstone hit its per-level deadline.
    TTL_EXPIRY = "ttl_expiry"
    #: FADE: expired tombstones sit in the bottommost level; rewrite in
    #: place to physically purge them.
    BOTTOM_PURGE = "bottom_purge"
    #: Lazy leveling: the last level's run outgrew its level; move it down
    #: one level as-is (a trivial move -- metadata only, no device I/O).
    RELOCATION = "relocation"


class OutputPlacement(enum.Enum):
    """How the executor installs the merged output."""

    #: Combine output files with the surviving files of the target level's
    #: run (leveling: the target run contributed its overlap as input).
    MERGE_INTO_TARGET_RUN = "merge_into_target_run"
    #: Install the output as a brand-new newest run in the target level
    #: (tiering, and bottom purges that rewrite a whole level).
    NEW_RUN = "new_run"


@dataclass
class TaskInput:
    """Files consumed from one run of one level.

    ``files`` must be a key-ordered subset of ``run.files``; the executor
    removes exactly those files and keeps the rest of the run.
    """

    level_index: int
    run: Run
    files: list[SSTableFile]

    def __post_init__(self) -> None:
        run_files = {id(f) for f in self.run.files}
        for file in self.files:
            if id(file) not in run_files:
                raise ValueError(
                    f"task input file {file.file_id} is not part of the given run"
                )

    @property
    def page_count(self) -> int:
        return sum(f.page_count for f in self.files)

    @property
    def entry_count(self) -> int:
        return sum(f.entry_count for f in self.files)


@dataclass
class CompactionTask:
    """One planned merge, ready for :func:`~repro.lsm.compaction.execute_task`."""

    reason: CompactionReason
    inputs: list[TaskInput]
    target_level: int
    placement: OutputPlacement
    #: Winning tombstones are physically dropped (and reported as
    #: *persisted*).  Only safe when the output is the bottommost data for
    #: its key range; planners are responsible for setting this correctly
    #: and the executor trusts them.
    drop_tombstones: bool = False
    #: Move the input files to the target level unchanged -- no merge, no
    #: device I/O (RocksDB's "trivial move").  Only valid for a single
    #: input whose key range has no overlap in the target level; the
    #: executor validates this.  ``drop_tombstones`` must be False (a
    #: trivial move rewrites nothing).
    trivial_move: bool = False
    notes: str = field(default="")

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError("a compaction task needs at least one input")
        if self.target_level < 1:
            raise ValueError(f"target level must be >= 1, got {self.target_level}")
        if self.trivial_move:
            if len(self.inputs) != 1:
                raise ValueError("a trivial move takes exactly one input")
            if self.drop_tombstones:
                raise ValueError("a trivial move cannot drop tombstones")

    @property
    def source_level(self) -> int:
        return min(inp.level_index for inp in self.inputs)

    @property
    def involved_levels(self) -> frozenset[int]:
        """Every level this task reads from or writes to.

        The concurrent scheduler reserves this whole set before
        dispatching, so two in-flight jobs never share a level and a new
        plan never reasons about a level that is mid-mutation.
        """
        levels = {inp.level_index for inp in self.inputs}
        levels.add(self.target_level)
        return frozenset(levels)

    @property
    def input_pages(self) -> int:
        return sum(inp.page_count for inp in self.inputs)

    @property
    def input_entries(self) -> int:
        return sum(inp.entry_count for inp in self.inputs)

    def describe(self) -> str:
        """One-line human summary (used by the demo inspector)."""
        per_level: dict[int, int] = {}
        for inp in self.inputs:
            per_level[inp.level_index] = per_level.get(inp.level_index, 0) + len(inp.files)
        parts = ", ".join(f"L{lvl}:{n}f" for lvl, n in sorted(per_level.items()))
        drop = " drop-tombstones" if self.drop_tombstones else ""
        return f"{self.reason.value}[{parts} -> L{self.target_level}{drop}]"
