"""Range-tombstone fences: lazy secondary range deletes.

A **fence** records a secondary range delete as data instead of applying
it eagerly: ``(lo, hi, seqno, write_time)`` means "every value entry whose
``delete_key`` falls in ``[lo, hi]`` and whose ``seqno`` predates mine is
deleted".  Recording one is O(1) -- a WAL append plus a manifest publish
-- regardless of how much data the range covers; the physical work is
deferred to flushes and compactions, which drop shadowed entries as they
rewrite data anyway.

Semantics mirror the eager KiWi delete exactly (eager mode remains the
verification oracle):

* only ``PUT`` entries are shadowed -- point-delete tombstones survive a
  secondary delete in both modes, because dropping one would resurrect
  older versions of its key;
* a shadowed version is *skipped*, never treated as a tombstone: eager
  deletion physically removes the in-window version, which exposes any
  older out-of-window version of the same key beneath it, so the lazy
  read path must keep descending past a shadowed entry;
* entries ingested after the fence (``seqno >= fence.seqno``) are never
  shadowed, exactly as eager deletion cannot touch data that did not
  exist yet.

A fence is *resolved* once no live entry anywhere in the tree can still
be shadowed by it; compaction retires resolved fences (see
``LSMTree._retire_resolved_fences``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.lsm.entry import Entry, EntryKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.run import SSTableFile

_PUT = EntryKind.PUT


class RangeFence:
    """One persisted range-tombstone fence (immutable)."""

    __slots__ = ("lo", "hi", "seqno", "write_time")

    def __init__(self, lo: int, hi: int, seqno: int, write_time: int) -> None:
        self.lo = lo
        self.hi = hi
        self.seqno = seqno
        self.write_time = write_time

    # ------------------------------------------------------------------
    # codecs: the fence rides the entry layout through the WAL and a
    # plain row through the JSON manifest.
    # ------------------------------------------------------------------
    def to_entry(self) -> Entry:
        return Entry.range_fence(self.lo, self.hi, self.seqno, self.write_time)

    @classmethod
    def from_entry(cls, entry: Entry) -> "RangeFence":
        if not entry.is_range_fence:
            raise ValueError(f"not a fence record: {entry!r}")
        return cls(entry.delete_key, entry.value, entry.seqno, entry.write_time)

    def to_row(self) -> list[int]:
        return [self.lo, self.hi, self.seqno, self.write_time]

    @classmethod
    def from_row(cls, row: Sequence[int]) -> "RangeFence":
        lo, hi, seqno, write_time = row
        return cls(lo, hi, seqno, write_time)

    # ------------------------------------------------------------------
    # shadowing
    # ------------------------------------------------------------------
    def shadows(self, entry: Entry) -> bool:
        """True when ``entry`` is a value this fence deletes."""
        return (
            entry.kind is _PUT
            and entry.seqno < self.seqno
            and self.lo <= entry.delete_key <= self.hi
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RangeFence(dkey=[{self.lo},{self.hi}] seq={self.seqno} "
            f"t={self.write_time})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeFence):
            return NotImplemented
        return (self.lo, self.hi, self.seqno, self.write_time) == (
            other.lo,
            other.hi,
            other.seqno,
            other.write_time,
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi, self.seqno, self.write_time))


def shadow_check(
    fences: Sequence[RangeFence],
) -> Callable[[Entry], bool] | None:
    """A fast per-entry shadow predicate, or None when there are no fences.

    Returning None (rather than an always-false closure) lets hot loops
    skip the call entirely with one truth test -- the read and merge paths
    pay nothing while no fence is live.
    """
    if not fences:
        return None
    if len(fences) == 1:
        fence = fences[0]
        lo, hi, seq = fence.lo, fence.hi, fence.seqno

        def check_one(entry: Entry) -> bool:
            return (
                entry.kind is _PUT
                and entry.seqno < seq
                and lo <= entry.delete_key <= hi
            )

        return check_one
    spans = [(f.lo, f.hi, f.seqno) for f in fences]

    def check_many(entry: Entry) -> bool:
        if entry.kind is not _PUT:
            return False
        dk = entry.delete_key
        sq = entry.seqno
        for lo, hi, seq in spans:
            if sq < seq and lo <= dk <= hi:
                return True
        return False

    return check_many


def file_fully_shadowed(file: "SSTableFile", fences: Sequence[RangeFence]) -> bool:
    """True when *every* entry of ``file`` is shadowed by one fence.

    This is the read path's I/O shortcut: a file whose whole delete-key
    span is covered by a fence, which predates the fence entirely, and
    which holds no tombstones, can contribute nothing visible -- the
    lookup skips its Bloom probe and page descent outright.  All three
    conditions are O(1) metadata tests.
    """
    if file.tombstone_count:
        return False
    lo = file.min_delete_key
    hi = file.max_delete_key
    for fence in fences:
        if fence.lo <= lo and hi <= fence.hi and file.max_seqno < fence.seqno:
            return True
    return False


def file_shadowable(file: "SSTableFile", fence: RangeFence) -> bool:
    """True when ``file`` still holds at least one entry ``fence`` shadows.

    Two O(1) metadata rejections (delete-key span disjoint from the
    window, or everything in the file newer than the fence) guard an
    exact per-entry walk; files are immutable, so a negative walk is
    memoized on the file and never repeated (``fence_known_clear``).
    """
    if file.max_delete_key < fence.lo or file.min_delete_key > fence.hi:
        return False
    if file.min_seqno >= fence.seqno:
        return False
    cleared = file.fence_known_clear
    if fence.seqno in cleared:
        return False
    lo, hi, seq = fence.lo, fence.hi, fence.seqno
    for entry in file.iter_all_entries():
        if entry.kind is _PUT and entry.seqno < seq and lo <= entry.delete_key <= hi:
            return True
    cleared.add(fence.seqno)
    return False
