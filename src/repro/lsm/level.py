"""A level: an ordered collection of runs.

Runs are kept **newest first** -- ``runs[0]`` contains the most recent data.
Point lookups probe runs in that order and stop at the first hit, which is
what makes the ordering load-bearing.  Leveling keeps at most one run per
level (two only transiently, between a flush/merge landing and the planner
collapsing them); tiering accumulates up to ``size_ratio`` runs.

Accounting is **incremental**: every mutation adjusts running totals, so
``entry_count`` / ``tombstone_count`` / ``page_count`` are O(1) attribute
reads.  The compaction planner and FADE consult them on every ingest;
re-deriving them by walking runs and files (the seed behaviour) made
trigger evaluation the most expensive part of the write path.  Runs are
immutable (every structural change installs a new :class:`Run`), which is
what makes the running totals safe.  ``check_invariants`` on the tree
asserts cache coherence against :meth:`recompute_counts`.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.lsm.run import Run, SSTableFile


class Level:
    """One on-disk level (1-based index; the memtable is 'level 0')."""

    __slots__ = (
        "index",
        "runs",
        "entry_count",
        "tombstone_count",
        "page_count",
        "observer",
        "lookup_probes",
        "lookup_skips_range",
        "lookup_skips_bloom",
        "lookup_skips_fence",
        "lookup_serves",
        "lookup_cache_direct",
        "scan_runs_pruned",
    )

    def __init__(
        self, index: int, observer: Callable[[], None] | None = None
    ) -> None:
        if index < 1:
            raise ValueError(f"on-disk levels are 1-based, got {index}")
        self.index = index
        self.runs: list[Run] = []
        self.entry_count = 0
        self.tombstone_count = 0
        self.page_count = 0
        #: Called after every structural mutation; the tree uses it to
        #: invalidate its deepest-level cache and mark maintenance dirty.
        self.observer = observer
        # Read-path pruning counters (maintained by LSMTree._get_entry /
        # scan): how often this level's runs were probed vs skipped
        # without I/O, and how many lookups it answered.  Surfaced via
        # ``tree.read_stats()`` and the inspector's read-path table.
        self.lookup_probes = 0
        self.lookup_skips_range = 0
        self.lookup_skips_bloom = 0
        #: Lookups that skipped a file's Bloom probe and page descent
        #: entirely because a range-tombstone fence fully shadows it.
        self.lookup_skips_fence = 0
        self.lookup_serves = 0
        self.lookup_cache_direct = 0
        self.scan_runs_pruned = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_newest_run(self, run: Run) -> None:
        self.runs.insert(0, run)
        self._account(run, 1)

    def add_oldest_run(self, run: Run) -> None:
        self.runs.append(run)
        self._account(run, 1)

    def remove_run(self, run: Run) -> None:
        self.runs.remove(run)
        self._account(run, -1)

    def replace_run(self, old: Run, new: Run | None) -> None:
        """Swap ``old`` for ``new`` in place (or drop it when new is None)."""
        idx = self.runs.index(old)
        if new is None:
            del self.runs[idx]
            self._account(old, -1)
        else:
            self.runs[idx] = new
            self.entry_count += new.entry_count - old.entry_count
            self.tombstone_count += new.tombstone_count - old.tombstone_count
            self.page_count += new.page_count - old.page_count
            if self.observer is not None:
                self.observer()

    def clear(self) -> None:
        self.runs.clear()
        self.entry_count = 0
        self.tombstone_count = 0
        self.page_count = 0
        if self.observer is not None:
            self.observer()

    def _account(self, run: Run, sign: int) -> None:
        self.entry_count += sign * run.entry_count
        self.tombstone_count += sign * run.tombstone_count
        self.page_count += sign * run.page_count
        if self.observer is not None:
            self.observer()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def run_count(self) -> int:
        return len(self.runs)

    @property
    def is_empty(self) -> bool:
        return not self.runs

    def recompute_counts(self) -> tuple[int, int, int]:
        """(entries, tombstones, pages) re-derived from the files.

        The ground truth the cached totals must match; used by invariant
        checks and by the perf suite's legacy (pre-cache) cost model.
        """
        entries = tombstones = pages = 0
        for run in self.runs:
            for file in run.files:
                entries += file.entry_count
                tombstones += file.tombstone_count
                pages += file.page_count
        return entries, tombstones, pages

    def iter_files(self) -> Iterator[SSTableFile]:
        for run in self.runs:
            yield from run.files

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Level({self.index}: {self.run_count} runs, {self.entry_count} entries, "
            f"{self.tombstone_count} tombstones)"
        )
