"""A level: an ordered collection of runs.

Runs are kept **newest first** -- ``runs[0]`` contains the most recent data.
Point lookups probe runs in that order and stop at the first hit, which is
what makes the ordering load-bearing.  Leveling keeps at most one run per
level (two only transiently, between a flush/merge landing and the planner
collapsing them); tiering accumulates up to ``size_ratio`` runs.
"""

from __future__ import annotations

from typing import Iterator

from repro.lsm.run import Run, SSTableFile


class Level:
    """One on-disk level (1-based index; the memtable is 'level 0')."""

    __slots__ = ("index", "runs")

    def __init__(self, index: int) -> None:
        if index < 1:
            raise ValueError(f"on-disk levels are 1-based, got {index}")
        self.index = index
        self.runs: list[Run] = []

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_newest_run(self, run: Run) -> None:
        self.runs.insert(0, run)

    def add_oldest_run(self, run: Run) -> None:
        self.runs.append(run)

    def remove_run(self, run: Run) -> None:
        self.runs.remove(run)

    def replace_run(self, old: Run, new: Run | None) -> None:
        """Swap ``old`` for ``new`` in place (or drop it when new is None)."""
        idx = self.runs.index(old)
        if new is None:
            del self.runs[idx]
        else:
            self.runs[idx] = new

    def clear(self) -> None:
        self.runs.clear()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def run_count(self) -> int:
        return len(self.runs)

    @property
    def entry_count(self) -> int:
        return sum(r.entry_count for r in self.runs)

    @property
    def tombstone_count(self) -> int:
        return sum(r.tombstone_count for r in self.runs)

    @property
    def page_count(self) -> int:
        return sum(r.page_count for r in self.runs)

    @property
    def is_empty(self) -> bool:
        return not self.runs

    def iter_files(self) -> Iterator[SSTableFile]:
        for run in self.runs:
            yield from run.files

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Level({self.index}: {self.run_count} runs, {self.entry_count} entries, "
            f"{self.tombstone_count} tombstones)"
        )
