"""A probabilistic skip list.

This is the ordered map under the memtable, chosen because it is what
production LSM engines (LevelDB, RocksDB) use for their write buffers and
because its expected O(log n) insert/search with cheap in-order iteration is
exactly the access pattern a memtable needs: random-order inserts, point
probes, and one full ordered sweep at flush time.

The list is seeded deterministically so an identical operation sequence
produces an identical structure -- a requirement for reproducible benchmarks
(see DESIGN.md, "Determinism everywhere").
"""

from __future__ import annotations

import random
from typing import Any, Iterator

_MAX_LEVEL = 24
_P_INV = 4  # promote a node with probability 1/4 per level


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: list[_Node | None] = [None] * level


class SkipList:
    """An ordered ``key -> value`` map with expected O(log n) operations.

    Keys must be mutually comparable (the engine uses ints or bytes).
    Setting an existing key replaces its value in place.
    """

    def __init__(self, seed: int = 0x5EED) -> None:
        self._rng = random.Random(seed)
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        #: Hash sidecar for point probes.  The skip list stays the source
        #: of truth for ordered access (flush, scans); the dict makes
        #: ``get``/``__contains__`` O(1), which matters because every
        #: engine read probes the memtable before touching any run.
        self._index: dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _random_level(self) -> int:
        # getrandbits(2) == 0 is the same 1/4 coin as randrange(4) but
        # skips the Python-level rejection-sampling layer of randrange --
        # this runs on every insert, i.e. on every engine write.
        level = 1
        getrandbits = self._rng.getrandbits
        while level < _MAX_LEVEL and getrandbits(2) == 0:
            level += 1
        return level

    def _find_predecessors(self, key: Any) -> list[_Node]:
        """Per level, the rightmost node with ``node.key < key``."""
        update: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        return update

    # ------------------------------------------------------------------
    # mutating API
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> Any:
        """Insert or replace ``key``.

        Returns the value the key previously held, or ``None`` when the
        key is new (a stored ``None`` is indistinguishable from absence in
        the return value; the engine only stores entries).  Returning the
        displaced value lets the memtable detect replaced tombstones in
        the same traversal that performs the insert.
        """
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            old = candidate.value
            candidate.value = value
            self._index[key] = value
            return old

        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for lvl in range(level):
            node.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = node
        self._size += 1
        self._index[key] = value
        return None

    def remove(self, key: Any) -> bool:
        """Physically remove ``key``.  Returns True when it was present."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for lvl in range(len(node.forward)):
            if update[lvl].forward[lvl] is node:
                update[lvl].forward[lvl] = node.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        del self._index[key]
        return True

    def clear(self) -> None:
        """Drop every node."""
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._index.clear()

    # ------------------------------------------------------------------
    # read API
    # ------------------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        return self._index.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All ``(key, value)`` pairs in ascending key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def items_from(self, key: Any) -> Iterator[tuple[Any, Any]]:
        """Pairs with ``node.key >= key`` in ascending key order."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def range_items(self, lo: Any, hi: Any) -> Iterator[tuple[Any, Any]]:
        """Pairs with ``lo <= key <= hi`` in ascending key order."""
        for key, value in self.items_from(lo):
            if key > hi:
                return
            yield key, value

    def min_key(self) -> Any:
        node = self._head.forward[0]
        return None if node is None else node.key

    def max_key(self) -> Any:
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            while node.forward[lvl] is not None:
                node = node.forward[lvl]
        return None if node is self._head else node.key

    def check_invariants(self) -> None:
        """Verify ordering and size bookkeeping (test support).

        Raises :class:`AssertionError` on violation.
        """
        count = 0
        prev_key = None
        node = self._head.forward[0]
        while node is not None:
            if prev_key is not None:
                assert prev_key < node.key, f"unordered: {prev_key!r} !< {node.key!r}"
            prev_key = node.key
            count += 1
            node = node.forward[0]
        assert count == self._size, f"size mismatch: counted {count}, recorded {self._size}"
        assert len(self._index) == self._size, (
            f"index desync: {len(self._index)} indexed, {self._size} listed"
        )
        for lvl in range(1, self._level):
            node = self._head.forward[lvl]
            while node is not None:
                assert len(node.forward) > lvl
                node = node.forward[lvl]
