"""The in-memory write buffer (level 0 of the tree).

The memtable absorbs all ingestion: puts, point deletes (as tombstones),
and the re-insertion traffic of compactions never touch it.  It keeps *one*
entry per key -- a newer write replaces the older version in place, which is
the standard memtable semantics (the superseded version needs no tombstone
because it was never persisted).

Delete-awareness starts here: the memtable tracks how many of its live
entries are tombstones and the ``write_time`` of its oldest tombstone, which
is the seed of the *file age* metadata FADE uses once the buffer is flushed.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.lsm.entry import Entry
from repro.lsm.skiplist import SkipList


class Memtable:
    """A bounded, ordered buffer of the newest entry per key."""

    def __init__(self, capacity: int, seed: int = 0x5EED) -> None:
        if capacity < 1:
            raise ValueError(f"memtable capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._map = SkipList(seed=seed)
        # Every engine read probes the memtable before touching any run,
        # so the point probe is bound straight to the skip list's hash
        # sidecar: one C-level dict call, no wrapper frames.  Safe because
        # the sidecar dict is cleared in place, never replaced.
        self.get = self._map._index.get  # type: ignore[method-assign]
        self._tombstones = 0
        #: ``write_time`` of the first tombstone buffered since the last
        #: flush.  Conservative (not decreased when that tombstone is later
        #: replaced by a put), which is safe: FADE may flush slightly early,
        #: never late.  O(1) to maintain, checked on every ingest.
        self.first_tombstone_time: int | None = None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def add(self, entry: Entry) -> Entry | None:
        """Insert ``entry``, replacing any older version of the same key.

        Returns the displaced entry (which may be a tombstone -- the
        caller reports superseded deletes to the lifecycle listener), or
        None when the key was not buffered.  One skip-list traversal
        serves the lookup and the insert; this path runs on every write.
        """
        old = self._map.insert(entry.key, entry)
        if old is not None and old.is_tombstone:
            self._tombstones -= 1
        if entry.is_tombstone:
            self._tombstones += 1
            if self.first_tombstone_time is None:
                self.first_tombstone_time = entry.write_time
        return old

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def get(self, key: Any) -> Entry | None:
        """The buffered entry for ``key`` (may be a tombstone), or None."""
        return self._map.get(key)

    def range(self, lo: Any, hi: Any) -> Iterator[Entry]:
        """Entries with ``lo <= key <= hi`` in ascending key order."""
        for _, entry in self._map.range_items(lo, hi):
            yield entry

    def __iter__(self) -> Iterator[Entry]:
        for _, entry in self._map.items():
            yield entry

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: Any) -> bool:
        return key in self._map

    # ------------------------------------------------------------------
    # state & flush support
    # ------------------------------------------------------------------
    @property
    def is_full(self) -> bool:
        return len(self._map) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return len(self._map) == 0

    @property
    def tombstone_count(self) -> int:
        return self._tombstones

    def oldest_tombstone_time(self) -> int | None:
        """``write_time`` of the oldest buffered tombstone, or None.

        O(n); called once per flush, never on the per-operation path.
        """
        oldest: int | None = None
        for _, entry in self._map.items():
            if entry.is_tombstone and (oldest is None or entry.write_time < oldest):
                oldest = entry.write_time
        return oldest

    def drain(self) -> list[Entry]:
        """Return all entries in key order and reset the buffer."""
        entries = [entry for _, entry in self._map.items()]
        self._map.clear()
        self._tombstones = 0
        self.first_tombstone_time = None
        return entries
