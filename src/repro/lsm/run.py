"""Files (SSTables) and sorted runs.

A **file** is the immutable unit of compaction: a sequence of delete tiles
plus in-memory metadata -- Bloom filter, tile fence pointers, entry and
tombstone counts, and the ``write_time`` of its *oldest tombstone*.  That
last field is the "very small amount of additional metadata" the paper adds
to make compaction delete-aware: FADE's per-level TTL triggers compare it
against the clock, and the tombstone-density file picker uses the counts.

A **run** is a sort-key-partitioned sequence of files (non-overlapping,
ascending).  Leveling keeps one run per level; tiering keeps up to ``T``.

All page access goes through a :class:`PageReader`, which consults the
shared block cache and charges the simulated disk on misses -- files never
touch the device directly, so I/O accounting is airtight.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import Any, Iterator

from repro.config import LSMConfig
from repro.filters.bloom import BloomFilter, _key_bytes, hash_pair, key_hash_pair
from repro.filters.fence import FenceIndex
from repro.lsm.entry import Entry
from repro.lsm.page import DeleteTile, Page, weave_tile
from repro.storage.cache import BlockCache
from repro.storage.disk import CATEGORY_QUERY, SimulatedDisk


class PageReader:
    """Cache-aware, category-tagged page access for the read path."""

    __slots__ = ("disk", "cache", "category")

    def __init__(
        self,
        disk: SimulatedDisk,
        cache: BlockCache,
        category: str = CATEGORY_QUERY,
    ) -> None:
        self.disk = disk
        self.cache = cache
        self.category = category

    def read_page(
        self,
        file: "SSTableFile",
        tile_idx: int,
        page_idx: int,
        pinned: bool = False,
    ) -> Page:
        """Fetch one page, charging the device only on a cache miss.

        ``pinned`` marks the page as preferentially retained by the cache
        (the tree pins level-1 pages -- the hottest, most-churned data).
        """
        flat = file.flat_page_index(tile_idx, page_idx)
        cached = self.cache.get(file.file_id, flat)
        if cached is not None:
            return cached
        self.disk.read_pages(1, self.category)
        page = file.tiles[tile_idx].pages[page_idx]
        self.cache.put(file.file_id, flat, page, pinned)
        return page

    def read_page_admitting(
        self,
        file: "SSTableFile",
        tile_idx: int,
        page_idx: int,
        pinned: bool = False,
    ) -> tuple[Page, int | None]:
        """Like :meth:`read_page`, but also reports a fresh admission.

        Returns ``(page, flat_index)`` on a cache miss and ``(page, None)``
        on a hit, so a negative point lookup can hand the freshly admitted
        page back to the hardened cache's negative-lookup guard (a page
        that was *already* resident earned its slot and is never dropped).
        """
        flat = file.flat_page_index(tile_idx, page_idx)
        cached = self.cache.get(file.file_id, flat)
        if cached is not None:
            return cached, None
        self.disk.read_pages(1, self.category)
        page = file.tiles[tile_idx].pages[page_idx]
        self.cache.put(file.file_id, flat, page, pinned)
        return page, flat

    def read_tile(
        self, file: "SSTableFile", tile_idx: int, pinned: bool = False
    ) -> list[Page]:
        """Fetch every page of a tile, batching the misses into one request.

        A range scan must read the whole tile anyway (the weave means any
        page may hold in-range keys), and the pages are physically
        contiguous -- so the misses are charged as *one* sequential device
        request of N pages instead of N point requests.  This is the scan
        path's prefetch: by the time the merge consumes the tile, every
        page is resident.
        """
        cache = self.cache
        file_id = file.file_id
        pages = file.tiles[tile_idx].pages
        base = file.flat_page_index(tile_idx, 0)
        missing = 0
        for page_idx, page in enumerate(pages):
            if cache.get(file_id, base + page_idx) is None:
                missing += 1
                cache.put(file_id, base + page_idx, page, pinned)
        if missing:
            self.disk.read_pages(missing, self.category)
        return pages


class SSTableFile:
    """An immutable sorted file of delete tiles plus its metadata."""

    __slots__ = (
        "file_id",
        "tiles",
        "bloom",
        "tile_fence",
        "entry_count",
        "tombstone_count",
        "min_key",
        "max_key",
        "min_delete_key",
        "max_delete_key",
        "oldest_tombstone_time",
        "created_at",
        "_tile_page_offsets",
        "page_count",
        "_seqno_bounds",
        "fence_known_clear",
    )

    def __init__(
        self,
        file_id: int,
        tiles: list[DeleteTile],
        bloom: BloomFilter,
        created_at: int,
    ) -> None:
        if not tiles:
            raise ValueError("a file must hold at least one tile")
        self.file_id = file_id
        self.tiles = tiles
        self.bloom = bloom
        self.created_at = created_at
        self.tile_fence = FenceIndex.over(tiles, "min_key", "max_key")
        self.entry_count = sum(t.entry_count for t in tiles)
        self.tombstone_count = sum(t.tombstone_count for t in tiles)
        self.min_key = tiles[0].min_key
        self.max_key = tiles[-1].max_key
        # Delete-key (secondary-attribute) span, O(tiles) from tile bounds.
        # Range-tombstone fences compare their window against this span to
        # prune whole files without touching entries.
        self.min_delete_key = min(t.min_delete_key for t in tiles)
        self.max_delete_key = max(t.max_delete_key for t in tiles)
        self.oldest_tombstone_time = _oldest_tombstone_time(tiles)
        # Seqno bounds are computed lazily on first use: only fence
        # shadowing consults them, and an eager per-entry pass here would
        # tax every flush and compaction whether or not fences exist.
        self._seqno_bounds: tuple[int, int] | None = None
        #: Fence seqnos proven (by a full walk) to shadow nothing in this
        #: file; immutability makes the memo permanent.
        self.fence_known_clear: set[int] = set()
        offsets = []
        total = 0
        for tile in tiles:
            offsets.append(total)
            total += len(tile)
        self._tile_page_offsets = offsets
        self.page_count = total

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        file_id: int,
        entries: list[Entry],
        config: LSMConfig,
        created_at: int,
        level: int = 1,
        salt: bytes | None = None,
    ) -> "SSTableFile":
        """Build one file from sort-key-ordered, unique-key entries.

        ``level`` is where the file will be installed; under the Monkey
        allocation it determines the Bloom filter's memory budget.
        ``salt`` keys the filter digests (salted trees pass their per-tree
        salt; see :func:`repro.filters.bloom.hash_pair`).
        """
        if not entries:
            raise ValueError("cannot build an empty file")
        tile_span = config.entries_per_page * config.pages_per_tile
        tiles = [
            weave_tile(
                entries[i : i + tile_span],
                config.entries_per_page,
                config.pages_per_tile,
            )
            for i in range(0, len(entries), tile_span)
        ]
        bits = config.bloom_bits_for_level(level)
        want_page_filters = config.kiwi_page_filters and config.pages_per_tile > 1
        if bits <= 0:
            bloom = BloomFilter(len(entries), bits, salt=salt)
            return cls(file_id, tiles, bloom, created_at)
        if salt is not None:
            # Salted digests are never cached on the Entry: bloom_pair is
            # salt-unaware, and entries migrate between trees (shard
            # splits) whose salts differ -- a stale cached pair would be a
            # silent false negative.  The per-salt memo in key_hash_pair
            # amortizes the recompute instead.
            try:
                pairs = [key_hash_pair(e.key, salt) for e in entries]
            except TypeError:  # unhashable key: hash without the memo
                pairs = [hash_pair(_key_bytes(e.key), salt) for e in entries]
        else:
            try:
                # Fast path: every entry has been through a build before and
                # carries its cached digest pair (see Entry.bloom_pair).
                pairs = [e.bloom_pair for e in entries]
            except AttributeError:
                pairs = []
                for e in entries:
                    try:
                        pair = e.bloom_pair
                    except AttributeError:
                        try:
                            pair = key_hash_pair(e.key)
                        except TypeError:  # unhashable key: hash without the memo
                            pair = hash_pair(_key_bytes(e.key))
                        e.bloom_pair = pair
                    pairs.append(pair)
        bloom = BloomFilter.from_hash_pairs(pairs, bits, salt=salt)
        if want_page_filters:
            # The digests feed both the file-level filter and the per-page
            # (KiWi) filters.  The weave reorders the same Entry objects
            # into pages, so identity is a safe join key even for
            # non-hashable key types.
            pair_of = {id(e): p for e, p in zip(entries, pairs)}
            for tile in tiles:
                if len(tile.pages) <= 1:
                    continue  # a single candidate page gains nothing
                for page in tile.pages:
                    page.bloom = BloomFilter.from_hash_pairs(
                        [pair_of[id(e)] for e in page.entries], bits, salt=salt
                    )
        return cls(file_id, tiles, bloom, created_at)

    @classmethod
    def from_tiles(
        cls,
        file_id: int,
        tiles: list[DeleteTile],
        bloom: BloomFilter,
        created_at: int,
    ) -> "SSTableFile":
        """Rebuild a file from surviving tiles (secondary-delete path).

        The Bloom filter is inherited: it may now contain deleted keys,
        which only costs false positives, never false negatives.
        """
        return cls(file_id, tiles, bloom, created_at)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def flat_page_index(self, tile_idx: int, page_idx: int) -> int:
        """Global page number within the file (the cache key component)."""
        return self._tile_page_offsets[tile_idx] + page_idx

    @property
    def tombstone_density(self) -> float:
        """Fraction of entries that are tombstones (FADE's picking score)."""
        return self.tombstone_count / self.entry_count if self.entry_count else 0.0

    def _compute_seqno_bounds(self) -> tuple[int, int]:
        lo = hi = None
        for tile in self.tiles:
            for page in tile.pages:
                for entry in page.entries:
                    s = entry.seqno
                    if lo is None:
                        lo = hi = s
                    elif s < lo:
                        lo = s
                    elif s > hi:
                        hi = s
        bounds = (lo, hi)
        self._seqno_bounds = bounds
        return bounds

    @property
    def min_seqno(self) -> int:
        """Smallest seqno in the file (lazy; cached -- files are immutable)."""
        bounds = self._seqno_bounds
        if bounds is None:
            bounds = self._compute_seqno_bounds()
        return bounds[0]

    @property
    def max_seqno(self) -> int:
        """Largest seqno in the file (lazy; cached -- files are immutable)."""
        bounds = self._seqno_bounds
        if bounds is None:
            bounds = self._compute_seqno_bounds()
        return bounds[1]

    def overlaps(self, lo: Any, hi: Any) -> bool:
        return not (self.max_key < lo or self.min_key > hi)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(
        self,
        key: Any,
        reader: PageReader,
        pinned: bool = False,
        tile_idx: int | None = None,
    ) -> Entry | None:
        """Point lookup: fence -> candidate pages -> binary search.

        The file-level Bloom filter is the *caller's* job (the run
        consults it before descending); per-page filters, when present,
        prune candidate pages here before any I/O.  A single-page tile
        (the classical ``h == 1`` layout) skips the candidate enumeration:
        the tile fence already proved the key can only live in that page.
        ``tile_idx`` lets a caller that already located the tile (the
        tree's cache-first probe) skip the second fence search.
        """
        if tile_idx is None:
            tile_idx = self.tile_fence.locate(key)
        if tile_idx is None:
            return None
        tile = self.tiles[tile_idx]
        pages = tile.pages
        if not reader.cache.hardened:
            if len(pages) == 1:
                return reader.read_page(self, tile_idx, 0, pinned).get(key)
            for page_idx, candidate in enumerate(pages):
                if not candidate.covers_key(key):
                    continue
                if candidate.bloom is not None and not candidate.bloom.might_contain(key):
                    continue
                page = reader.read_page(self, tile_idx, page_idx, pinned)
                entry = page.get(key)
                if entry is not None:
                    return entry
            return None
        # Hardened cache: track fresh admissions so that when the lookup
        # turns out negative (a filter false positive paid page I/O for
        # nothing) the pages admitted on its behalf can be handed to the
        # negative-lookup guard instead of displacing the hot set.
        admitted: list[int] = []
        entry = None
        if len(pages) == 1:
            page, flat = reader.read_page_admitting(self, tile_idx, 0, pinned)
            if flat is not None:
                admitted.append(flat)
            entry = page.get(key)
        else:
            for page_idx, candidate in enumerate(pages):
                if not candidate.covers_key(key):
                    continue
                if candidate.bloom is not None and not candidate.bloom.might_contain(key):
                    continue
                page, flat = reader.read_page_admitting(self, tile_idx, page_idx, pinned)
                if flat is not None:
                    admitted.append(flat)
                entry = page.get(key)
                if entry is not None:
                    break
        if entry is None:
            for flat in admitted:
                reader.cache.note_negative(self.file_id, flat)
        return entry

    def range_entries(self, lo: Any, hi: Any, reader: PageReader) -> Iterator[Entry]:
        """Entries with ``lo <= key <= hi`` in sort-key order.

        Every page of an overlapping tile must be fetched (the weave means
        any page may hold in-range keys) -- KiWi's range-read penalty.
        """
        for tile_idx in self.tile_fence.overlapping(lo, hi):
            tile = self.tiles[tile_idx]
            pages = [
                reader.read_page(self, tile_idx, page_idx) for page_idx in range(len(tile.pages))
            ]
            merged: Iterator[Entry]
            if len(pages) == 1:
                merged = iter(pages[0].entries)
            else:
                merged = heapq.merge(*(p.entries for p in pages), key=lambda e: e.key)
            for entry in merged:
                if entry.key > hi:
                    break
                if entry.key >= lo:
                    yield entry

    def range_entries_desc(self, lo: Any, hi: Any, reader: PageReader) -> Iterator[Entry]:
        """Entries with ``lo <= key <= hi`` in *descending* sort-key order.

        Same I/O profile as the ascending variant: all pages of every
        overlapping tile are fetched.
        """
        for tile_idx in reversed(self.tile_fence.overlapping(lo, hi)):
            tile = self.tiles[tile_idx]
            pages = [
                reader.read_page(self, tile_idx, page_idx) for page_idx in range(len(tile.pages))
            ]
            merged: Iterator[Entry]
            if len(pages) == 1:
                merged = reversed(pages[0].entries)
            else:
                merged = heapq.merge(
                    *(reversed(p.entries) for p in pages),
                    key=lambda e: e.key,
                    reverse=True,
                )
            for entry in merged:
                if entry.key < lo:
                    break
                if entry.key <= hi:
                    yield entry

    def all_entries(self) -> list[Entry]:
        """All entries in sort-key order as a list, *without* charging I/O.

        Compaction charges its inputs as one bulk sequential read
        (``page_count`` pages) before calling this; see the executor.
        Single-tile files (and single-page tiles) return internal lists
        directly -- callers must not mutate the result.
        """
        tiles = self.tiles
        if len(tiles) == 1:
            return tiles[0].entries_sorted()
        out: list[Entry] = []
        for tile in tiles:
            out.extend(tile.entries_sorted())
        return out

    def iter_all_entries(self) -> Iterator[Entry]:
        """Iterator form of :meth:`all_entries` (kept for read paths)."""
        return iter(self.all_entries())

    def check_invariants(self) -> None:
        """Structural self-check used by tests (AssertionError on failure)."""
        assert self.tiles, "file with no tiles"
        prev_max = None
        for tile in self.tiles:
            assert tile.pages, "tile with no pages"
            if prev_max is not None:
                assert tile.min_key > prev_max, "tiles overlap in sort key"
            prev_max = tile.max_key
            for page in tile.pages:
                keys = [e.key for e in page.entries]
                assert keys == sorted(keys), "page entries unsorted"
        assert self.entry_count == sum(t.entry_count for t in self.tiles)
        assert self.tombstone_count == sum(t.tombstone_count for t in self.tiles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSTableFile(id={self.file_id}, {self.entry_count} entries, "
            f"{self.tombstone_count} tombstones, {self.page_count} pages, "
            f"keys=[{self.min_key!r},{self.max_key!r}])"
        )


def attach_page_filters(
    tiles: list[DeleteTile], bits_per_key: float, salt: bytes | None = None
) -> None:
    """Equip every page of ``tiles`` with its own Bloom filter."""
    for tile in tiles:
        if len(tile.pages) <= 1:
            continue  # a single candidate page gains nothing from a filter
        for page in tile.pages:
            page.bloom = BloomFilter.build(
                (e.key for e in page.entries), bits_per_key, salt=salt
            )


def _oldest_tombstone_time(tiles: list[DeleteTile]) -> int | None:
    """Oldest tombstone ``write_time`` across ``tiles``.

    Each page caches its own oldest tombstone (computed in the same pass
    that counts tombstones at page construction), so this is O(pages) with
    no per-entry work -- file builds and rebuilds never rescan entries.
    """
    oldest: int | None = None
    for tile in tiles:
        for page in tile.pages:
            page_oldest = page.oldest_tombstone_time
            if page_oldest is not None and (oldest is None or page_oldest < oldest):
                oldest = page_oldest
    return oldest


def build_files(
    entries: list[Entry],
    config: LSMConfig,
    next_file_id: "FileIdAllocator",
    created_at: int,
    level: int = 1,
    salt: bytes | None = None,
) -> list["SSTableFile"]:
    """Partition sorted entries into files of at most ``file_entry_limit``."""
    limit = config.file_entry_limit
    files = []
    for start in range(0, len(entries), limit):
        chunk = entries[start : start + limit]
        files.append(
            SSTableFile.build(
                next_file_id(), chunk, config, created_at, level=level, salt=salt
            )
        )
    return files


class FileIdAllocator:
    """Monotonic file-id source (persisted via the manifest).

    ``make_thread_safe`` arms an internal lock so concurrent flush and
    compaction workers never mint the same id; serial trees skip the lock
    entirely (``self._lock is None`` costs one attribute test).
    """

    __slots__ = ("_next", "_lock")

    def __init__(self, start: int = 1) -> None:
        self._next = start
        self._lock = None

    def make_thread_safe(self) -> None:
        if self._lock is None:
            import threading

            self._lock = threading.Lock()

    def __call__(self) -> int:
        lock = self._lock
        if lock is None:
            value = self._next
            self._next += 1
            return value
        with lock:
            value = self._next
            self._next += 1
            return value

    def peek(self) -> int:
        return self._next

    def advance_past(self, used_id: int) -> None:
        if used_id >= self._next:
            self._next = used_id + 1


class Run:
    """A sort-key-partitioned sequence of non-overlapping files.

    Files are immutable and the file list is fixed at construction (every
    structural change builds a new :class:`Run`), so the aggregate counts
    are computed once here and served as plain attributes -- the planner
    and FADE consult them on every ingest, and re-summing per operation
    was the dominant cost of the write path.
    """

    __slots__ = ("files", "file_fence", "entry_count", "tombstone_count", "page_count")

    def __init__(self, files: list[SSTableFile]) -> None:
        if not files:
            raise ValueError("a run must hold at least one file")
        ordered = sorted(files, key=lambda f: f.min_key)
        for left, right in zip(ordered, ordered[1:]):
            if right.min_key <= left.max_key:
                raise ValueError(
                    f"files {left.file_id} and {right.file_id} overlap; a run must "
                    "be key-partitioned"
                )
        self.files = ordered
        self.file_fence = FenceIndex.over(ordered, "min_key", "max_key")
        self.entry_count = sum(f.entry_count for f in ordered)
        self.tombstone_count = sum(f.tombstone_count for f in ordered)
        self.page_count = sum(f.page_count for f in ordered)

    @property
    def min_key(self) -> Any:
        return self.files[0].min_key

    @property
    def max_key(self) -> Any:
        return self.files[-1].max_key

    def __len__(self) -> int:
        return len(self.files)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key: Any, reader: PageReader) -> Entry | None:
        """Point lookup: file fence -> Bloom -> file probe."""
        idx = self.file_fence.locate(key)
        if idx is None:
            return None
        file = self.files[idx]
        if not file.bloom.might_contain(key):
            return None
        return file.get(key, reader)

    def range_entries(self, lo: Any, hi: Any, reader: PageReader) -> Iterator[Entry]:
        """In-order entries of the run restricted to ``[lo, hi]``."""
        for idx in self.file_fence.overlapping(lo, hi):
            yield from self.files[idx].range_entries(lo, hi, reader)

    def range_entries_desc(self, lo: Any, hi: Any, reader: PageReader) -> Iterator[Entry]:
        """Descending-order entries of the run restricted to ``[lo, hi]``."""
        for idx in reversed(self.file_fence.overlapping(lo, hi)):
            yield from self.files[idx].range_entries_desc(lo, hi, reader)

    def scan_blocks(
        self, lo: Any, hi: Any, reader: PageReader, reverse: bool = False
    ) -> Iterator[list[Entry]]:
        """In-range entries as one sorted list ("block") per overlapping tile.

        This is the fused scan's per-run source.  Files and tiles outside
        ``[lo, hi]`` are pruned by fence pointers without I/O; each
        surviving tile is prefetched in one batched request
        (:meth:`PageReader.read_tile`), then its cached sort-key list is
        bisected to slice exactly the in-range span.  Blocks arrive in
        global sort-key order (descending when ``reverse``); consumers
        must not mutate them -- a full-tile block may alias the tile's
        internal entry list.
        """
        # The fence spans are inlined (same arithmetic as
        # FenceIndex.overlapping) and single-page tiles skip the read_tile
        # wrapper: this runs once per surviving run per scan, and the
        # per-source setup cost is what bounds short-scan throughput.
        if lo > hi:  # empty interval: prefetch nothing
            return
        files = self.files
        ffence = self.file_fence
        first = bisect_left(ffence.maxes, lo)
        last = bisect_right(ffence.mins, hi)
        if first >= last:
            return
        cache = reader.cache
        disk_read = reader.disk.read_pages
        category = reader.category
        file_span = range(first, last)
        for idx in reversed(file_span) if reverse else file_span:
            file = files[idx]
            tfence = file.tile_fence
            tfirst = bisect_left(tfence.maxes, lo)
            tlast = bisect_right(tfence.mins, hi)
            if tfirst >= tlast:
                continue
            tiles = file.tiles
            file_id = file.file_id
            offsets = file._tile_page_offsets
            tile_span = range(tfirst, tlast)
            for tile_idx in reversed(tile_span) if reverse else tile_span:
                tile = tiles[tile_idx]
                pages = tile.pages
                if len(pages) == 1:  # classical layout: tile == page
                    flat = offsets[tile_idx]
                    if cache.get(file_id, flat) is None:
                        disk_read(1, category)
                        cache.put(file_id, flat, pages[0])
                else:
                    reader.read_tile(file, tile_idx)
                keys = tile.sorted_keys()
                start = bisect_left(keys, lo)
                stop = bisect_right(keys, hi)
                if start >= stop:
                    continue
                entries = tile.entries_sorted()
                if start == 0 and stop == len(keys):
                    block = entries[::-1] if reverse else entries
                else:
                    block = entries[start:stop]
                    if reverse:
                        block.reverse()
                yield block

    def overlapping_files(self, lo: Any, hi: Any) -> list[SSTableFile]:
        return [self.files[i] for i in self.file_fence.overlapping(lo, hi)]

    def iter_all_entries(self) -> Iterator[Entry]:
        for file in self.files:
            yield from file.iter_all_entries()
