"""The key-value entry model.

Everything that flows through the tree -- memtable nodes, page contents,
merge-iterator items -- is an :class:`Entry`.  An entry is either a ``PUT``
(key, value) or a ``TOMBSTONE`` (a logical point delete that invalidates all
older versions of its key).  Entries carry:

``seqno``
    A globally monotone sequence number assigned at ingestion.  Between two
    entries for the same key, the larger ``seqno`` wins; this is the only
    versioning mechanism in the engine.

``write_time``
    The logical-clock tick at which the entry was ingested.  For tombstones
    this is the timestamp from which delete persistence latency is measured
    (the paper's central metric); FADE's per-level TTLs compare file *age*
    -- derived from the oldest tombstone ``write_time`` in the file --
    against the threshold.

``delete_key``
    The *secondary* delete key, an orthogonal attribute (the paper's
    motivating example is a creation timestamp) on which range deletes can
    be issued without touching the sort key.  KiWi weaves pages by this
    attribute so such deletes can drop whole pages.  Defaults to
    ``write_time`` when not supplied, matching the timestamp use case.
"""

from __future__ import annotations

import enum
from typing import Any


class EntryKind(enum.IntEnum):
    """Discriminator between values, logical deletes, and range fences."""

    PUT = 0
    TOMBSTONE = 1
    #: A *range-tombstone fence*: a secondary range delete recorded as data
    #: rather than applied eagerly.  Shadows every older PUT whose
    #: ``delete_key`` falls in ``[lo, hi]``; resolved (and eventually
    #: dropped) during compaction.  Encoded through the ordinary entry
    #: codec with ``key=None``, ``delete_key=lo``, ``value=hi``.
    RANGE_FENCE = 2


class Entry:
    """A single immutable key-value record (or tombstone).

    Instances are created in the hottest paths of the engine, so this is a
    ``__slots__`` class with positional construction rather than a
    dataclass.  Treat instances as immutable; the engine never mutates an
    entry after creation.
    """

    #: ``bloom_pair`` caches the entry's Bloom digest pair (a pure
    #: function of ``key``) the first time a file build computes it.
    #: Write amplification re-files every entry ~W times, and the cache
    #: turns all but the first build's digest into an attribute read.
    #: Left unset until then (reading it raises ``AttributeError``).
    __slots__ = ("key", "seqno", "kind", "value", "delete_key", "write_time", "bloom_pair")

    def __init__(
        self,
        key: Any,
        seqno: int,
        kind: EntryKind,
        value: Any = None,
        delete_key: int | None = None,
        write_time: int = 0,
    ) -> None:
        self.key = key
        self.seqno = seqno
        self.kind = kind
        self.value = value
        self.write_time = write_time
        self.delete_key = write_time if delete_key is None else delete_key

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def put(
        cls,
        key: Any,
        value: Any,
        seqno: int,
        write_time: int = 0,
        delete_key: int | None = None,
    ) -> "Entry":
        """Build a value entry."""
        return cls(key, seqno, EntryKind.PUT, value, delete_key, write_time)

    @classmethod
    def tombstone(cls, key: Any, seqno: int, write_time: int = 0) -> "Entry":
        """Build a point-delete tombstone for ``key``."""
        return cls(key, seqno, EntryKind.TOMBSTONE, None, None, write_time)

    @classmethod
    def range_fence(
        cls, lo: int, hi: int, seqno: int, write_time: int = 0
    ) -> "Entry":
        """Build a range-tombstone fence over secondary keys ``[lo, hi]``.

        The fence rides the ordinary entry layout so the WAL codec needs
        no new record type: ``delete_key`` carries ``lo`` and ``value``
        carries ``hi``.  ``key`` is None -- a fence names no sort key.
        """
        return cls(None, seqno, EntryKind.RANGE_FENCE, hi, lo, write_time)

    # ------------------------------------------------------------------
    # predicates & accounting
    # ------------------------------------------------------------------
    @property
    def is_tombstone(self) -> bool:
        return self.kind is EntryKind.TOMBSTONE

    @property
    def is_put(self) -> bool:
        return self.kind is EntryKind.PUT

    @property
    def is_range_fence(self) -> bool:
        return self.kind is EntryKind.RANGE_FENCE

    def shadows(self, other: "Entry") -> bool:
        """True when this entry makes ``other`` obsolete (same key, newer)."""
        return self.key == other.key and self.seqno > other.seqno

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        if self.is_range_fence:
            return (
                f"Entry(FENCE dkey=[{self.delete_key}, {self.value}] "
                f"seq={self.seqno} t={self.write_time})"
            )
        tag = "DEL" if self.is_tombstone else "PUT"
        return (
            f"Entry({tag} key={self.key!r} seq={self.seqno} "
            f"t={self.write_time} dkey={self.delete_key})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return (
            self.key == other.key
            and self.seqno == other.seqno
            and self.kind == other.kind
            and self.value == other.value
            and self.delete_key == other.delete_key
            and self.write_time == other.write_time
        )

    def __hash__(self) -> int:
        return hash((self.key, self.seqno, self.kind))


def newest_wins(entries: list[Entry]) -> Entry:
    """Return the most recent entry among several versions of one key."""
    if not entries:
        raise ValueError("newest_wins() requires at least one entry")
    return max(entries, key=lambda e: e.seqno)
