"""Pages and delete tiles: the physical layout of a file.

This module implements the paper's *key-weaving storage layout* (KiWi) and
its classical degenerate case in one structure:

* a **page** is the unit of device I/O and holds up to ``entries_per_page``
  entries, always sorted by **sort key** internally;
* a **delete tile** is a group of ``h = pages_per_tile`` consecutive pages.
  Tiles partition the file's sort-key space (tile *i* holds strictly
  smaller keys than tile *i+1*), but *within* a tile the pages are
  partitioned by the **delete key** -- each page covers a disjoint
  delete-key range.

That weave is the whole trick: a range delete on the delete key can drop
every page whose delete-key range falls inside the predicate *without
reading it*, while sort-key point lookups still land on one tile via fence
pointers (and then probe up to ``h`` candidate pages -- the read penalty the
F7 experiment quantifies).  With ``h == 1`` the layout collapses to the
classical sort-key-only file used by the baselines.
"""

from __future__ import annotations

from bisect import bisect_left
from operator import attrgetter
from typing import Any, Iterator

from repro.lsm.entry import Entry, EntryKind

_TOMBSTONE = EntryKind.TOMBSTONE
_BY_KEY = attrgetter("key")
_BY_DELETE_KEY = attrgetter("delete_key")


class Page:
    """One disk page: entries sorted by sort key, with both key ranges."""

    __slots__ = (
        "entries",
        "min_key",
        "max_key",
        "min_delete_key",
        "max_delete_key",
        "tombstone_count",
        "oldest_tombstone_time",
        "bloom",
        "_keys",
    )

    def __init__(self, entries: list[Entry]) -> None:
        if not entries:
            raise ValueError("a page must hold at least one entry")
        self.entries = entries
        self.min_key = entries[0].key
        self.max_key = entries[-1].key
        dkeys = [e.delete_key for e in entries]
        self.min_delete_key = min(dkeys)
        self.max_delete_key = max(dkeys)
        # Tombstone accounting in a single filtered pass: entries are
        # immutable once paged, so both the count and the oldest tombstone
        # write_time can be cached at construction and never revisited.
        # The raw ``kind`` comparison (vs the ``is_tombstone`` property)
        # matters: page construction runs once per entry per compaction.
        tombstones = 0
        oldest: int | None = None
        for e in entries:
            if e.kind is _TOMBSTONE:
                tombstones += 1
                if oldest is None or e.write_time < oldest:
                    oldest = e.write_time
        self.tombstone_count = tombstones
        #: ``write_time`` of this page's oldest tombstone (None when the
        #: page holds no tombstones) -- the seed of FADE's file-age field.
        self.oldest_tombstone_time = oldest
        #: Optional per-page Bloom filter (KiWi point-read mitigation);
        #: attached by the file builder when ``kiwi_page_filters`` is on.
        self.bloom = None
        #: Lazily built sort-key list (see :attr:`keys`).
        self._keys = None

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def keys(self) -> list[Any]:
        """The page's sort keys as a plain list, built once on first use.

        Entries are immutable once paged, so the list never goes stale.
        Binary searches over it run entirely in C (no per-comparison
        ``key=`` lambda), which is what makes cached point lookups and
        scan slicing cheap; building it lazily keeps compaction-only pages
        from paying for a list they never search.
        """
        keys = self._keys
        if keys is None:
            keys = self._keys = [e.key for e in self.entries]
        return keys

    def get(self, key: Any) -> Entry | None:
        """Binary-search this page for ``key`` (keys are unique in a file)."""
        keys = self._keys
        if keys is None:
            keys = self.keys
        idx = bisect_left(keys, key)
        if idx < len(keys) and keys[idx] == key:
            return self.entries[idx]
        return None

    def covers_key(self, key: Any) -> bool:
        return self.min_key <= key <= self.max_key

    def covered_by_delete_range(self, lo: int, hi: int) -> bool:
        """True when *every* entry's delete key falls inside [lo, hi]."""
        return lo <= self.min_delete_key and self.max_delete_key <= hi

    def overlaps_delete_range(self, lo: int, hi: int) -> bool:
        return not (self.max_delete_key < lo or self.min_delete_key > hi)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Page({len(self.entries)} entries, key=[{self.min_key!r},{self.max_key!r}], "
            f"dkey=[{self.min_delete_key},{self.max_delete_key}])"
        )


class DeleteTile:
    """A group of pages: disjoint in delete key, jointly one sort-key range.

    ``pages`` are ordered by ``min_delete_key``.  The tile's sort-key bounds
    span all its pages; they are what the file-level fence pointers index.
    """

    __slots__ = (
        "pages",
        "min_key",
        "max_key",
        "min_delete_key",
        "max_delete_key",
        "_sorted",
        "_sorted_keys",
    )

    def __init__(self, pages: list[Page]) -> None:
        if not pages:
            raise ValueError("a delete tile must hold at least one page")
        self.pages = pages
        self.min_key = min(p.min_key for p in pages)
        self.max_key = max(p.max_key for p in pages)
        self.min_delete_key = min(p.min_delete_key for p in pages)
        self.max_delete_key = max(p.max_delete_key for p in pages)
        self._sorted = None
        self._sorted_keys = None

    def __len__(self) -> int:
        return len(self.pages)

    @property
    def entry_count(self) -> int:
        return sum(len(p) for p in self.pages)

    @property
    def tombstone_count(self) -> int:
        return sum(p.tombstone_count for p in self.pages)

    def candidate_page_indexes(self, key: Any) -> list[int]:
        """Pages whose sort-key range may contain ``key``.

        Within a tile the pages are delete-key-partitioned, so their
        sort-key ranges overlap arbitrarily: a point probe may have to
        check up to ``h`` pages.  This is KiWi's documented point-read
        cost (swept in experiment F7).
        """
        return [i for i, page in enumerate(self.pages) if page.covers_key(key)]

    def entries_sorted(self) -> list[Entry]:
        """All entries of the tile in ascending sort-key order, as a list.

        Used by compaction and range scans after the pages have been paid
        for; merging is pure CPU.  Keys are unique within a file, so a
        concatenate-and-timsort is equivalent to a k-way merge of the
        (individually sorted) pages -- and much faster, since timsort both
        runs in C and exploits the pre-sorted runs.  With a single page the
        page's own entry list is returned; callers must not mutate it.

        The merge result is cached: tiles are immutable once built, and a
        scan-heavy workload re-slices the same hot tiles over and over.
        """
        merged = self._sorted
        if merged is not None:
            return merged
        pages = self.pages
        if len(pages) == 1:
            merged = pages[0].entries
        else:
            merged = []
            for page in pages:
                merged.extend(page.entries)
            merged.sort(key=_BY_KEY)
        self._sorted = merged
        return merged

    def sorted_keys(self) -> list[Any]:
        """Sort keys of :meth:`entries_sorted`, cached (see :attr:`Page.keys`).

        Range scans bisect this list to slice a tile's in-range span
        without touching entry attributes per comparison.
        """
        keys = self._sorted_keys
        if keys is None:
            pages = self.pages
            if len(pages) == 1:
                keys = pages[0].keys
            else:
                keys = [e.key for e in self.entries_sorted()]
            self._sorted_keys = keys
        return keys

    def iter_entries_sorted(self) -> Iterator[Entry]:
        """Iterator form of :meth:`entries_sorted` (kept for read paths)."""
        return iter(self.entries_sorted())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeleteTile({len(self.pages)} pages, key=[{self.min_key!r},{self.max_key!r}], "
            f"dkey=[{self.min_delete_key},{self.max_delete_key}])"
        )


def weave_tile(chunk: list[Entry], entries_per_page: int, pages_per_tile: int) -> DeleteTile:
    """Build one delete tile from a sort-key-ordered chunk of entries.

    The chunk is re-sorted by (delete key, sort key), split into pages of
    ``entries_per_page``, and each page is re-sorted by sort key -- the
    key-weaving construction.  With ``pages_per_tile == 1`` the weave is the
    identity and is skipped.
    """
    if not chunk:
        raise ValueError("cannot weave an empty tile")
    if pages_per_tile == 1 or len(chunk) <= entries_per_page:
        pages = [
            Page(chunk[i : i + entries_per_page]) for i in range(0, len(chunk), entries_per_page)
        ]
        return DeleteTile(pages)
    # ``chunk`` arrives sort-key-ordered, so a *stable* sort on the delete
    # key alone equals sorting on (delete_key, sort_key) -- one attrgetter
    # key instead of a tuple allocation per entry.
    by_delete_key = sorted(chunk, key=_BY_DELETE_KEY)
    pages = []
    for start in range(0, len(by_delete_key), entries_per_page):
        page_entries = sorted(by_delete_key[start : start + entries_per_page], key=_BY_KEY)
        pages.append(Page(page_entries))
    return DeleteTile(pages)
