"""The LSM-tree: ingestion, reads, flushing, and the maintenance loop.

One class serves every engine variant in the repository.  Delete-awareness
is attached, not forked:

* when the config carries a ``delete_persistence_threshold``, a
  :class:`~repro.core.fade.FadeScheduler` is wired into the maintenance
  loop (expiry-driven compactions and early buffer flushes);
* a :class:`~repro.core.persistence.DeleteLifecycleListener` (usually the
  :class:`~repro.core.persistence.PersistenceTracker`) observes every
  tombstone's registration, supersession, and persistence;
* the physical layout (classic vs KiWi weave) is decided by
  ``pages_per_tile`` inside the file builder.

Durability is optional: construct with a :class:`~repro.storage.FileStore`
(or use :meth:`LSMTree.open`) and every flush/compaction is persisted --
files first, then an atomic manifest swap -- with WAL protection for the
buffer.  Benchmarks run memory-only; the simulated disk accounts I/O either
way.

Timing convention: the logical clock advances by one tick per ingest
operation (put or delete).  Reads do not advance time; call
:meth:`advance_time` to model idle periods.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.clock import LogicalClock
from repro.config import LSMConfig
from repro.errors import ConfigError, EngineClosedError
from repro.lsm.entry import Entry
from repro.lsm.iterator import scan_merge
from repro.lsm.level import Level
from repro.lsm.memtable import Memtable
from repro.lsm.page import DeleteTile, Page
from repro.lsm.run import FileIdAllocator, PageReader, Run, SSTableFile, build_files
from repro.lsm.compaction.executor import CompactionEvent, execute_task
from repro.lsm.compaction.planner import SaturationPlanner
from repro.lsm.compaction.task import (
    CompactionReason,
    CompactionTask,
    OutputPlacement,
    TaskInput,
)
from repro.filters.bloom import BloomFilter
from repro.storage.cache import BlockCache
from repro.storage.disk import CATEGORY_FLUSH, SimulatedDisk
from repro.storage.filestore import FileStore
from repro.storage.wal import WriteAheadLog


class LSMTree:
    """A complete LSM-tree storage engine (see module docstring)."""

    def __init__(
        self,
        config: LSMConfig,
        disk: SimulatedDisk | None = None,
        cache: BlockCache | None = None,
        clock: LogicalClock | None = None,
        listener: Any = None,
        store: FileStore | None = None,
        wal_sync: bool = False,
        read_only: bool = False,
    ) -> None:
        self.config = config
        self.disk = disk or SimulatedDisk(config.disk)
        self.cache = cache or BlockCache(config.cache_pages)
        self.clock = clock or LogicalClock()
        self.listener = listener
        self.memtable = Memtable(config.memtable_entries)
        self.file_ids = FileIdAllocator()
        self.compaction_log: list[CompactionEvent] = []
        self.flush_count = 0
        self.counters: dict[str, int] = {
            "puts": 0,
            "deletes": 0,
            "gets": 0,
            "gets_found": 0,
            "scans": 0,
            "ingested_bytes": 0,
        }
        self._levels: list[Level] = []
        self._seqno = 0
        self._planner = SaturationPlanner(config)
        self._fade = None
        if config.fade_enabled:
            from repro.core.fade import FadeScheduler  # avoid import cycle

            self._fade = FadeScheduler(config)
        self._store = store
        self._read_only = read_only
        self._wal = (
            WriteAheadLog(store.wal_path, sync=wal_sync)
            if store is not None and not read_only
            else None
        )
        self._closed = False

    # ==================================================================
    # construction from disk
    # ==================================================================
    @classmethod
    def open(
        cls,
        config: LSMConfig | None,
        directory: str,
        listener: Any = None,
        wal_sync: bool = False,
        read_only: bool = False,
    ) -> "LSMTree":
        """Open (or create) a durable tree rooted at ``directory``.

        ``config=None`` loads the configuration recorded in the manifest
        (a durable directory is self-describing); passing a config on an
        existing directory overrides the recorded one -- safe for
        runtime-only knobs (cache size, disk model), at the caller's risk
        for layout knobs.

        ``read_only=True`` opens for inspection: the store is never
        touched (no WAL handle, no flush on close, no manifest writes)
        and every mutating operation raises.

        Recovery order: manifest -> files -> WAL replay into the memtable.
        Tombstones replayed from the WAL are re-registered with the
        listener so persistence tracking survives a restart.
        """
        store = FileStore(directory)
        if config is None:
            manifest = store.read_manifest()
            if manifest is None or "config" not in manifest:
                raise ConfigError(
                    f"no config given and {directory} has no recorded one "
                    "(empty or pre-1.0 store)"
                )
            config = LSMConfig.from_dict(manifest["config"])
        tree = cls(
            config, listener=listener, store=store, wal_sync=wal_sync, read_only=read_only
        )
        manifest = store.read_manifest()
        if manifest is not None:
            tree._restore_from_manifest(manifest)
        for entry in WriteAheadLog.replay(store.wal_path):
            tree.memtable.add(entry)
            tree._seqno = max(tree._seqno, entry.seqno)
            tree.clock.advance_to(entry.write_time + 1)
            if entry.is_tombstone and tree.listener is not None:
                tree.listener.tombstone_registered(entry, tree.clock.now())
        return tree

    def _restore_from_manifest(self, manifest: dict) -> None:
        self._seqno = manifest["seqno"]
        self.clock.advance_to(manifest["clock"])
        self.flush_count = manifest.get("flush_count", 0)
        for level_offset, run_lists in enumerate(manifest["levels"]):
            level = self.level(level_offset + 1)
            for file_ids in run_lists:  # stored newest-first
                files = [self._load_file(fid, level.index) for fid in file_ids]
                level.add_oldest_run(Run(files))
                for file in files:
                    self._register_file(file, level.index)
        self.file_ids.advance_past(manifest["next_file_id"] - 1)

    def _load_file(self, file_id: int, level: int = 1) -> SSTableFile:
        assert self._store is not None
        tile_entries, meta = self._store.read_sstable(file_id)
        tiles = [DeleteTile([Page(page) for page in pages]) for pages in tile_entries]
        keys = [e.key for tile in tiles for page in tile.pages for e in page.entries]
        bits = self.config.bloom_bits_for_level(level)
        bloom = BloomFilter.build(keys, bits)
        if self.config.kiwi_page_filters and self.config.pages_per_tile > 1:
            from repro.lsm.run import attach_page_filters

            attach_page_filters(tiles, bits)
        return SSTableFile(file_id, tiles, bloom, meta.get("created_at", 0))

    # ==================================================================
    # write path
    # ==================================================================
    def put(self, key: Any, value: Any, delete_key: int | None = None) -> None:
        """Insert or update ``key``.

        ``delete_key`` is the secondary attribute used by range deletes
        (defaults to the current tick, i.e. an insertion timestamp).
        """
        self._check_open()
        now = self.clock.now()
        entry = Entry.put(key, value, self._next_seqno(), now, delete_key)
        self.counters["puts"] += 1
        self.counters["ingested_bytes"] += self.config.entry_bytes(is_tombstone=False)
        self._ingest(entry)

    def delete(self, key: Any) -> None:
        """Logically delete ``key`` by inserting a tombstone.

        The tombstone is *registered* with the lifecycle listener; with
        FADE enabled it is guaranteed to be physically purged within
        ``D_th`` ticks.
        """
        self._check_open()
        now = self.clock.now()
        entry = Entry.tombstone(key, self._next_seqno(), now)
        self.counters["deletes"] += 1
        self.counters["ingested_bytes"] += self.config.entry_bytes(is_tombstone=True)
        if self.listener is not None:
            self.listener.tombstone_registered(entry, now)
        self._ingest(entry)

    def _next_seqno(self) -> int:
        self._seqno += 1
        return self._seqno

    def _ingest(self, entry: Entry) -> None:
        self._check_writable()
        displaced = self.memtable.get(entry.key)
        if displaced is not None and displaced.is_tombstone and self.listener is not None:
            self.listener.tombstone_superseded(displaced, self.clock.now())
        if self._wal is not None:
            self._wal.append(entry)
        self.memtable.add(entry)
        self.clock.tick()
        self._maybe_flush()
        self.maintain()

    def _maybe_flush(self) -> None:
        if self.memtable.is_full:
            self._flush()
            return
        # FADE: the buffer holds its own slice of D_th; flush early if the
        # oldest buffered tombstone is about to overstay it.
        if self._fade is not None and self.memtable.first_tombstone_time is not None:
            deadline = self._fade.buffer_deadline(
                self.memtable.first_tombstone_time, self.deepest_nonempty_level()
            )
            if self.clock.now() >= deadline:
                self._flush()

    def flush(self) -> None:
        """Force the memtable to disk (no-op when empty)."""
        self._check_open()
        self._check_writable()
        if not self.memtable.is_empty:
            self._flush()
            self.maintain()

    def _flush(self) -> None:
        entries = self.memtable.drain()
        if not entries:
            return
        now = self.clock.now()
        files = build_files(entries, self.config, self.file_ids, now)
        self.disk.write_pages(sum(f.page_count for f in files), CATEGORY_FLUSH)
        self.level(1).add_newest_run(Run(files))
        for file in files:
            self._register_file(file, 1)
            self._persist_file(file)
        self.flush_count += 1
        if self._wal is not None:
            self._wal.truncate()
        self._persist_manifest()

    # ==================================================================
    # maintenance (compaction loop)
    # ==================================================================
    def maintain(self) -> int:
        """Run compactions until no trigger fires; returns how many ran.

        Saturation/structural tasks drain first so FADE always plans
        against a structurally quiescent tree; expiry tasks then run until
        no deadline is due.  All work is synchronous and instantaneous in
        simulated time (the clock only moves on ingestion).
        """
        self._check_open()
        executed = 0
        while True:
            task = self._planner.plan(self)
            if task is None and self._fade is not None:
                task = self._fade.plan(self)
            if task is None:
                break
            event = execute_task(task, self)
            self.compaction_log.append(event)
            executed += 1
        if executed:
            self._persist_manifest()
        return executed

    def full_compaction(self) -> CompactionEvent | None:
        """Merge the entire tree into a single bottom run, purging deletes.

        This is the expensive "full tree merge" the paper notes is the
        baseline's only way to force deletes out; exposed both as a user
        utility and as the comparator in experiment F5.
        """
        self._check_open()
        self._check_writable()
        self.flush()
        inputs = [
            TaskInput(level.index, run, list(run.files))
            for level in self.iter_levels()
            for run in level.runs
        ]
        if not inputs:
            return None
        target = max(self.deepest_nonempty_level(), 1)
        task = CompactionTask(
            reason=CompactionReason.LEVEL_COLLAPSE,
            inputs=inputs,
            target_level=target,
            placement=OutputPlacement.NEW_RUN,
            drop_tombstones=True,
            notes="full tree compaction",
        )
        event = execute_task(task, self)
        self.compaction_log.append(event)
        self._persist_manifest()
        return event

    # ==================================================================
    # read path
    # ==================================================================
    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup; returns ``default`` for missing or deleted keys."""
        self._check_open()
        self.counters["gets"] += 1
        entry = self._get_entry(key)
        if entry is None or entry.is_tombstone:
            return default
        self.counters["gets_found"] += 1
        return entry.value

    def contains(self, key: Any) -> bool:
        """True when ``key`` currently maps to a live value."""
        self._check_open()
        entry = self._get_entry(key)
        return entry is not None and entry.is_put

    def _get_entry(self, key: Any) -> Entry | None:
        entry = self.memtable.get(key)
        if entry is not None:
            return entry
        reader = PageReader(self.disk, self.cache)
        for level in self.iter_levels():
            for run in level.runs:  # newest first
                found = run.get(key, reader)
                if found is not None:
                    return found
        return None

    def scan(
        self,
        lo: Any,
        hi: Any,
        limit: int | None = None,
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Live ``(key, value)`` pairs with ``lo <= key <= hi``.

        Ascending by default; ``reverse=True`` walks from ``hi`` down to
        ``lo`` (``limit`` then takes the topmost keys).  Lazy: page reads
        are charged as the iterator is consumed.
        """
        self._check_open()
        self.counters["scans"] += 1
        reader = PageReader(self.disk, self.cache)
        buffered = list(self.memtable.range(lo, hi))
        if reverse:
            buffered.reverse()
        sources = [buffered]
        for level in self.iter_levels():
            for run in level.runs:
                if reverse:
                    sources.append(run.range_entries_desc(lo, hi, reader))
                else:
                    sources.append(run.range_entries(lo, hi, reader))
        for entry in scan_merge(sources, limit=limit, reverse=reverse):
            yield entry.key, entry.value

    # ==================================================================
    # structure accessors
    # ==================================================================
    def level(self, index: int) -> Level:
        """Level ``index`` (1-based), created on demand."""
        if index < 1:
            raise ValueError(f"on-disk levels are 1-based, got {index}")
        while len(self._levels) < index:
            self._levels.append(Level(len(self._levels) + 1))
        return self._levels[index - 1]

    def iter_levels(self) -> Iterator[Level]:
        """Existing levels, shallow to deep (some may be empty)."""
        return iter(self._levels)

    def deepest_nonempty_level(self) -> int:
        """Index of the deepest level holding data, or 0 when none do."""
        for level in reversed(self._levels):
            if not level.is_empty:
                return level.index
        return 0

    @property
    def entry_count_on_disk(self) -> int:
        return sum(level.entry_count for level in self._levels)

    @property
    def tombstone_count_on_disk(self) -> int:
        return sum(level.tombstone_count for level in self._levels)

    @property
    def page_count_on_disk(self) -> int:
        return sum(level.page_count for level in self._levels)

    # ==================================================================
    # file lifecycle hooks (executor / secondary deletes call these)
    # ==================================================================
    def on_file_added(self, file: SSTableFile, level_index: int) -> None:
        self._register_file(file, level_index)
        self._persist_file(file)

    def on_file_removed(self, file: SSTableFile, level_index: int) -> None:
        if self._fade is not None:
            self._fade.file_removed(file.file_id)
        if self._store is not None and not self._read_only:
            self._store.delete_sstable(file.file_id)

    def on_file_moved(self, file: SSTableFile, from_level: int, to_level: int) -> None:
        """A trivial move: same file object, new depth.

        The durable copy needs no rewrite (the manifest records the new
        level); FADE deadlines are depth-dependent, so re-register.
        """
        if self._fade is not None:
            self._fade.file_removed(file.file_id)
            self._fade.file_added(file, to_level, self.deepest_nonempty_level())

    def _register_file(self, file: SSTableFile, level_index: int) -> None:
        if self._fade is not None:
            self._fade.file_added(file, level_index, self.deepest_nonempty_level())

    def _persist_file(self, file: SSTableFile) -> None:
        if self._store is None or self._read_only:
            return
        tiles = [[page.entries for page in tile.pages] for tile in file.tiles]
        self._store.write_sstable(file.file_id, tiles, {"created_at": file.created_at})

    def _persist_manifest(self) -> None:
        if self._store is None or self._read_only:
            return
        levels = [
            [[f.file_id for f in run.files] for run in level.runs] for level in self._levels
        ]
        self._store.write_manifest(
            {
                "levels": levels,
                "next_file_id": self.file_ids.peek(),
                "seqno": self._seqno,
                "clock": self.clock.now(),
                "flush_count": self.flush_count,
                "config": self.config.to_dict(),
            }
        )

    # ==================================================================
    # lifecycle & utilities
    # ==================================================================
    def advance_time(self, ticks: int) -> None:
        """Model an idle period of ``ticks``.

        The clock is advanced *deadline by deadline*: whenever a FADE file
        deadline or the buffer's tombstone deadline falls inside the
        window, time stops there, the due maintenance runs, and only then
        does time continue -- exactly as a background compaction thread
        would behave.  Jumping the whole window at once would make expiry
        compactions appear late and violate ``D_th`` spuriously.
        """
        self._check_open()
        self._check_writable()
        if ticks < 0:
            raise ValueError(f"cannot advance time backwards ({ticks})")
        target = self.clock.now() + ticks
        while True:
            now = self.clock.now()
            if now >= target:
                break
            stop = target
            if self._fade is not None:
                next_deadline = self._fade.next_deadline()
                if next_deadline is not None and now < next_deadline < stop:
                    stop = next_deadline
                if self.memtable.first_tombstone_time is not None:
                    buffer_deadline = self._fade.buffer_deadline(
                        self.memtable.first_tombstone_time, self.deepest_nonempty_level()
                    )
                    if now < buffer_deadline < stop:
                        stop = buffer_deadline
            self.clock.advance_to(stop)
            self._maybe_flush()
            self.maintain()

    def close(self) -> None:
        """Flush state to disk (durable mode) and refuse further use."""
        if self._closed:
            return
        if self._store is not None and not self._read_only and not self.memtable.is_empty:
            self._flush()
            self.maintain()
        if self._wal is not None:
            self._wal.close()
        self._closed = True

    def __enter__(self) -> "LSMTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError("this tree has been closed")

    def _check_writable(self) -> None:
        if self._read_only:
            raise EngineClosedError("this tree was opened read-only")

    @property
    def fade(self) -> Any:
        """The FADE scheduler, or None for a baseline tree."""
        return self._fade

    def check_invariants(self) -> None:
        """Deep structural self-check (tests; AssertionError on failure)."""
        for level in self._levels:
            for run in level.runs:
                for file in run.files:
                    file.check_invariants()
        # Per-key version ordering: shallower copies must be newer.
        best_seqno: dict[Any, int] = {}
        for entry in self.memtable:
            best_seqno[entry.key] = entry.seqno
        for level in self._levels:
            level_best: dict[Any, int] = {}
            for run in level.runs:
                for file in run.files:
                    for entry in file.iter_all_entries():
                        prev = best_seqno.get(entry.key)
                        assert prev is None or entry.seqno < prev, (
                            f"key {entry.key!r}: seqno {entry.seqno} at L{level.index} "
                            f"not older than {prev} above"
                        )
                        existing = level_best.get(entry.key)
                        if existing is None or entry.seqno > existing:
                            level_best[entry.key] = entry.seqno
            best_seqno.update(level_best)
