"""The LSM-tree: ingestion, reads, flushing, and the maintenance loop.

One class serves every engine variant in the repository.  Delete-awareness
is attached, not forked:

* when the config carries a ``delete_persistence_threshold``, a
  :class:`~repro.core.fade.FadeScheduler` is wired into the maintenance
  loop (expiry-driven compactions and early buffer flushes);
* a :class:`~repro.core.persistence.DeleteLifecycleListener` (usually the
  :class:`~repro.core.persistence.PersistenceTracker`) observes every
  tombstone's registration, supersession, and persistence;
* the physical layout (classic vs KiWi weave) is decided by
  ``pages_per_tile`` inside the file builder.

Durability is optional: construct with a :class:`~repro.storage.FileStore`
(or use :meth:`LSMTree.open`) and every flush/compaction is persisted --
files first, then an atomic manifest swap -- with WAL protection for the
buffer.  Benchmarks run memory-only; the simulated disk accounts I/O either
way.

Timing convention: the logical clock advances by one tick per ingest
operation (put or delete).  Reads do not advance time; call
:meth:`advance_time` to model idle periods.
"""

from __future__ import annotations

from bisect import bisect_right
from operator import attrgetter
from typing import Any, Iterable, Iterator

from repro.clock import LogicalClock
from repro.config import CompactionStyle, LSMConfig
from repro.errors import (
    ConfigError,
    CorruptionError,
    EngineClosedError,
    InvariantViolationError,
    StorageError,
)
from repro.lsm.entry import Entry
from repro.lsm.fence import (
    RangeFence,
    file_fully_shadowed,
    file_shadowable,
    shadow_check,
)
from repro.lsm.iterator import scan_fused
from repro.lsm.level import Level
from repro.lsm.memtable import Memtable
from repro.lsm.page import DeleteTile, Page
from repro.lsm.run import FileIdAllocator, PageReader, Run, SSTableFile, build_files
from repro.lsm.compaction.executor import CompactionEvent, execute_task
from repro.lsm.compaction.planner import SaturationPlanner
from repro.lsm.compaction.task import (
    CompactionReason,
    CompactionTask,
    OutputPlacement,
    TaskInput,
)
from repro.filters.bloom import (
    BloomFilter,
    _key_bytes,
    generate_salt,
    hash_pair,
    key_hash_pair,
)
from repro.storage.cache import BlockCache
from repro.storage.disk import CATEGORY_FLUSH, SimulatedDisk
from repro.storage.faults import FaultInjector
from repro.storage.filestore import FileStore
from repro.storage.wal import WriteAheadLog

#: C-implemented row shaper for :meth:`LSMTree.scan`.
_ENTRY_PAIR = attrgetter("key", "value")


class LSMTree:
    """A complete LSM-tree storage engine (see module docstring)."""

    def __init__(
        self,
        config: LSMConfig,
        disk: SimulatedDisk | None = None,
        cache: BlockCache | None = None,
        clock: LogicalClock | None = None,
        listener: Any = None,
        store: FileStore | None = None,
        wal_sync: bool = False,
        read_only: bool = False,
        workers: int = 1,
    ) -> None:
        self.config = config
        self.disk = disk or SimulatedDisk(config.disk)
        self.cache = cache or BlockCache(
            config.cache_pages, hardened=config.cache_hardened
        )
        #: Per-tree bloom salt (None on unsalted trees).  Generated fresh
        #: at create when the config opts in; :meth:`_restore_from_manifest`
        #: overrides with the persisted salt on reopen so every filter
        #: rebuilt from recovered files probes through the original keyed
        #: digest.
        self.bloom_salt: bytes | None = (
            generate_salt() if config.bloom_salted else None
        )
        self.clock = clock or LogicalClock()
        self.listener = listener
        #: Live write-buffer soft limit (entries).  Advisory governor
        #: state, never persisted: the per-op flush trigger and the
        #: concurrent write path's rotation both size against this, so
        #: the memory governor can shrink or grow a buffer at runtime;
        #: every reopen starts back at ``config.memtable_entries``.
        self.memtable_budget = config.memtable_entries
        self.memtable = Memtable(config.memtable_entries)
        #: One long-lived, cache-aware page reader shared by every lookup
        #: and scan.  Constructing a reader per call (the seed behaviour)
        #: cost an allocation per read and, worse, obscured that the block
        #: cache is shared state -- the reader *is* the read path's handle
        #: to it.
        self._reader = PageReader(self.disk, self.cache)
        self.file_ids = FileIdAllocator()
        self.compaction_log: list[CompactionEvent] = []
        self.flush_count = 0
        self.counters: dict[str, int] = {
            "puts": 0,
            "deletes": 0,
            "gets": 0,
            "gets_found": 0,
            "scans": 0,
            "ingested_bytes": 0,
        }
        self._levels: list[Level] = []
        self._seqno = 0
        #: Cache of :meth:`deepest_nonempty_level`, invalidated whenever a
        #: level's run list changes (levels call back via their observer).
        self._deepest_cache: int | None = None
        #: True when the level structure may have changed since the last
        #: quiescent maintenance pass.  While clean, ``maintain()`` skips
        #: the planner entirely (the saturation triggers are functions of
        #: structure alone, so an unchanged tree cannot need work).
        self._maintenance_dirty = True
        #: Escape hatch for the perf suite: set False to force every
        #: ``maintain()`` call through the full planner evaluation,
        #: reproducing the pre-cache write-path cost for comparison runs.
        self.maintenance_fast_path = True
        self._planner = SaturationPlanner(config)
        #: Live policy-switch bookkeeping (the self-tuning compaction
        #: seam, :meth:`set_policy`).  The *applied* policy is durable
        #: config state -- every switch republishes the manifest -- but
        #: these counters are process-local observability.
        self.policy_switches = 0
        self.last_policy_switch_tick: int | None = None
        self._fade = None
        if config.fade_enabled:
            from repro.core.fade import FadeScheduler  # avoid import cycle

            self._fade = FadeScheduler(config)
        self._store = store
        self._read_only = read_only
        self._wal = (
            WriteAheadLog(store.wal_path, sync=wal_sync, faults=store.faults)
            if store is not None and not read_only
            else None
        )
        self._closed = False
        #: SSTable file ids detached from the tree but not yet physically
        #: deleted.  Physical deletion is deferred until the next manifest
        #: publication: deleting an input file before the manifest stops
        #: referencing it would make a crash in between unrecoverable.
        self._doomed_files: list[int] = []
        #: Live range-tombstone fences (lazy secondary range deletes),
        #: oldest first.  Always rebound as a whole tuple, never mutated,
        #: so concurrent readers snapshot it with one attribute load.
        self._fences: tuple[RangeFence, ...] = ()
        #: High-water sequence number of entries durable in *runs* (i.e.
        #: flushed).  Distinct from ``_seqno``, which also counts entries
        #: living only in the memtable+WAL: the WAL replay filter must
        #: compare against the flushed mark, or a manifest published by a
        #: compaction (with a non-empty memtable) would make recovery skip
        #: acknowledged buffered writes.
        self._flushed_seqno = 0
        #: Recovery bookkeeping (populated by :meth:`open`).
        self.degraded = False
        self.recovery_errors: list[str] = []
        self.recovery_log: list[str] = []
        self._degraded_ok = False
        #: The concurrent write-path controller, or None in serial mode.
        #: ``workers`` is a runtime-only knob (never recorded in the
        #: manifest): with the default of 1 every code path below is the
        #: untouched serial one, bit-for-bit.
        self._wp = None
        if workers > 1 and not read_only:
            self._start_write_path(workers)

    # ==================================================================
    # construction from disk
    # ==================================================================
    @classmethod
    def open(
        cls,
        config: LSMConfig | None,
        directory: str,
        listener: Any = None,
        wal_sync: bool = False,
        read_only: bool = False,
        faults: FaultInjector | None = None,
        degraded_ok: bool = False,
        cache: BlockCache | None = None,
        workers: int = 1,
    ) -> "LSMTree":
        """Open (or create) a durable tree rooted at ``directory``.

        ``cache`` lets the caller share a block cache across reopens; any
        pages belonging to crash-orphaned sstables are invalidated during
        recovery, so a shared cache never serves stale data.

        ``config=None`` loads the configuration recorded in the manifest
        (a durable directory is self-describing); passing a config on an
        existing directory overrides the recorded one -- safe for
        runtime-only knobs (cache size, disk model), at the caller's risk
        for layout knobs.

        ``read_only=True`` opens for inspection: the store is never
        touched (no WAL handle, no flush on close, no manifest writes)
        and every mutating operation raises.

        Recovery sequence (each step ordered after the previous):

        1. sweep ``*.tmp`` orphans left by interrupted publications;
        2. load and verify the manifest (epoch + checksum);
        3. load every referenced SSTable, rebuilding FADE deadline and
           oldest-tombstone metadata from the recovered runs;
        4. garbage-collect SSTables the manifest does not reference
           (outputs of a flush/compaction that crashed before publish);
        5. replay the WAL into the memtable, *skipping* records at or
           below the manifest's seqno high-water mark (duplicates from a
           crash between manifest publish and WAL rotation);
        6. re-register every recovered tombstone (on disk and in the WAL)
           with the lifecycle listener, preserving original write times
           so persistence ages survive the restart;
        7. run :meth:`verify_invariants` over the recovered tree.

        ``degraded_ok=True`` turns unrecoverable SSTable corruption into
        a *degraded read-only* open instead of an exception: broken files
        are skipped (recorded in ``tree.recovery_errors``), the WAL is
        not opened for writing, and every mutating operation raises.

        ``faults`` attaches a :class:`FaultInjector` to the store and WAL
        so tests can interrupt any durable transition.
        """
        store = FileStore(directory, faults=faults)
        swept = store.clean_temp_files() if not read_only else []
        if config is None:
            manifest = store.read_manifest()
            if manifest is None or "config" not in manifest:
                raise ConfigError(
                    f"no config given and {directory} has no recorded one "
                    "(empty or pre-1.0 store)"
                )
            config = LSMConfig.from_dict(manifest["config"])
        tree = cls(
            config,
            cache=cache,
            listener=listener,
            store=store,
            wal_sync=wal_sync,
            read_only=read_only,
        )
        tree._degraded_ok = degraded_ok
        if swept:
            tree.recovery_log.append(f"removed {len(swept)} orphan temp file(s)")
        manifest = store.read_manifest()
        manifest_seqno = 0
        if manifest is not None:
            tree._restore_from_manifest(manifest)
            # Filter replay against the *flushed* high-water mark, not the
            # global one: a compaction publishes a manifest whose `seqno`
            # covers buffered entries that exist only in the WAL.
            manifest_seqno = manifest.get("flushed_seqno", manifest["seqno"])
        if tree.recovery_errors:
            # Unrecoverable corruption, caller opted into salvage mode:
            # serve what is readable, refuse every mutation.
            tree.degraded = True
            tree._read_only = True
            if tree._wal is not None:
                tree._wal.close()
                tree._wal = None
        if manifest is not None and not tree._read_only:
            live = {
                fid
                for run_lists in manifest["levels"]
                for file_ids in run_lists
                for fid in file_ids
            }
            orphans = store.garbage_collect(live)
            if orphans:
                # File-id immutability: an orphan's id must never be
                # reassigned to different content, or a cache entry keyed
                # by (file_id, page) could silently go stale.  Advance the
                # allocator past every GC'd id and drop any pages a shared
                # cache may still hold for them.
                for fid in orphans:
                    tree.cache.invalidate_file(fid)
                tree.file_ids.advance_past(max(orphans))
                tree.recovery_log.append(
                    f"garbage-collected {len(orphans)} unreferenced sstable(s): {orphans}"
                )
        # Tombstones already persisted in recovered runs: re-register so
        # the persistence tracker's pending set (and its ages, anchored on
        # each entry's write_time) survives the restart.
        if tree.listener is not None:
            now = tree.clock.now()
            for level in tree.iter_levels():
                for run in level.runs:
                    for file in run.files:
                        for entry in file.iter_all_entries():
                            if entry.is_tombstone:
                                tree.listener.tombstone_registered(entry, now)
        skipped = 0
        try:
            for entry in WriteAheadLog.replay(store.wal_path):
                if entry.is_range_fence:
                    # A fence never enters the memtable and is *not*
                    # filtered by the flushed mark (it is no flushable
                    # datum); the manifest usually already carries it --
                    # the WAL copy only closes the crash window between
                    # fence append and manifest publish.
                    fence = RangeFence.from_entry(entry)
                    if all(f.seqno != fence.seqno for f in tree._fences):
                        tree._install_fence(fence)
                        tree.recovery_log.append(
                            f"restored fence seq={fence.seqno} from the WAL"
                        )
                    tree._seqno = max(tree._seqno, entry.seqno)
                    tree.clock.advance_to(entry.write_time + 1)
                    continue
                if entry.seqno <= manifest_seqno:
                    skipped += 1  # already durable via the manifest's flushed runs
                    continue
                tree.memtable.add(entry)
                tree._seqno = max(tree._seqno, entry.seqno)
                tree.clock.advance_to(entry.write_time + 1)
                if entry.is_tombstone and tree.listener is not None:
                    tree.listener.tombstone_registered(entry, tree.clock.now())
        except CorruptionError as exc:
            if not degraded_ok:
                raise
            tree.recovery_errors.append(f"WAL: {exc}")
            tree.degraded = True
            tree._read_only = True
            if tree._wal is not None:
                tree._wal.close()
                tree._wal = None
        if skipped:
            tree.recovery_log.append(
                f"skipped {skipped} WAL record(s) at or below flushed seqno "
                f"{manifest_seqno}"
            )
        tree.verify_invariants()
        # Concurrency starts only after recovery is fully settled: every
        # step above runs on the untouched serial code paths.
        if workers > 1 and not tree._read_only and not tree.degraded:
            tree._start_write_path(workers)
        return tree

    def _restore_from_manifest(self, manifest: dict) -> None:
        # Salt before any file load: the filters rebuilt below must probe
        # through the same keyed digest the tree will use for lookups.  A
        # manifest without the key (pre-salt store, or salting just turned
        # on) keeps the salt chosen at construction time, so an upgraded
        # tree simply rebuilds every recovered filter under its new salt.
        salt_hex = manifest.get("bloom_salt")
        if salt_hex:
            self.bloom_salt = bytes.fromhex(salt_hex)
        self._seqno = manifest["seqno"]
        self._flushed_seqno = manifest.get("flushed_seqno", manifest["seqno"])
        self.clock.advance_to(manifest["clock"])
        self.flush_count = manifest.get("flush_count", 0)
        for level_offset, run_lists in enumerate(manifest["levels"]):
            level = self.level(level_offset + 1)
            for file_ids in run_lists:  # stored newest-first
                files: list[SSTableFile] = []
                for fid in file_ids:
                    try:
                        files.append(self._load_file(fid, level.index))
                    except (CorruptionError, StorageError) as exc:
                        if not self._degraded_ok:
                            raise
                        self.recovery_errors.append(
                            f"sstable {fid} (L{level.index}): {exc}"
                        )
                if files:
                    level.add_oldest_run(Run(files))
                    for file in files:
                        self._register_file(file, level.index)
        self.file_ids.advance_past(manifest["next_file_id"] - 1)
        for row in manifest.get("fences", ()):
            self._install_fence(RangeFence.from_row(row))

    def _load_file(self, file_id: int, level: int = 1) -> SSTableFile:
        assert self._store is not None
        tile_entries, meta = self._store.read_sstable(file_id)
        tiles = [DeleteTile([Page(page) for page in pages]) for pages in tile_entries]
        keys = [e.key for tile in tiles for page in tile.pages for e in page.entries]
        bits = self.config.bloom_bits_for_level(level)
        bloom = BloomFilter.build(keys, bits, salt=self.bloom_salt)
        if self.config.kiwi_page_filters and self.config.pages_per_tile > 1:
            from repro.lsm.run import attach_page_filters

            attach_page_filters(tiles, bits, salt=self.bloom_salt)
        return SSTableFile(file_id, tiles, bloom, meta.get("created_at", 0))

    # ==================================================================
    # write path
    # ==================================================================
    def put(self, key: Any, value: Any, delete_key: int | None = None) -> None:
        """Insert or update ``key``.

        ``delete_key`` is the secondary attribute used by range deletes
        (defaults to the current tick, i.e. an insertion timestamp).
        """
        self._check_open()
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            self._check_writable()
            wp.apply_batch((("put", key, value, delete_key),))
            return
        now = self.clock.now()
        entry = Entry.put(key, value, self._next_seqno(), now, delete_key)
        self.counters["puts"] += 1
        self.counters["ingested_bytes"] += self.config.entry_bytes(is_tombstone=False)
        self._ingest(entry)

    def delete(self, key: Any) -> None:
        """Logically delete ``key`` by inserting a tombstone.

        The tombstone is *registered* with the lifecycle listener; with
        FADE enabled it is guaranteed to be physically purged within
        ``D_th`` ticks.
        """
        self._check_open()
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            self._check_writable()
            wp.apply_batch((("delete", key),))
            return
        now = self.clock.now()
        entry = Entry.tombstone(key, self._next_seqno(), now)
        self.counters["deletes"] += 1
        self.counters["ingested_bytes"] += self.config.entry_bytes(is_tombstone=True)
        if self.listener is not None:
            self.listener.tombstone_registered(entry, now)
        self._ingest(entry)

    def put_many(self, items: Iterable[tuple]) -> int:
        """Batched :meth:`put`: ``items`` are ``(key, value)`` or
        ``(key, value, delete_key)`` tuples; returns how many were applied.

        Semantically identical to issuing the puts one by one -- same final
        tree shape, counters, compaction log, and simulated I/O -- but the
        per-operation overhead (WAL appends, open/writable checks, call
        layering) is amortized across the batch.  See :meth:`apply_batch`
        for durability semantics.
        """
        return self.apply_batch(("put", *item) for item in items)

    def apply_batch(self, ops: Iterable[tuple]) -> int:
        """Apply a batch of ingest operations; returns how many ran.

        Each op is ``("put", key, value)``, ``("put", key, value,
        delete_key)``, or ``("delete", key)``.  Flush and maintenance
        triggers are evaluated after every operation exactly as in the
        per-op path (both are O(1) checks), so batching never changes
        engine behaviour -- the amortization is in WAL appends (buffered
        and written in one call; entries that flush within the batch are
        durable via their SSTables and never touch the WAL at all) and in
        skipped per-op bookkeeping.

        Durability note: in durable mode the batch is acknowledged when
        this method returns; a crash mid-batch may lose the tail of the
        batch (per-op ``put`` narrows that window to one operation).
        """
        self._check_open()
        self._check_writable()
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            return wp.apply_batch(ops)
        wal = self._wal
        pending: list[Entry] = []
        memtable = self.memtable
        listener = self.listener
        clock = self.clock
        counters = self.counters
        config = self.config
        fade = self._fade
        fast = self.maintenance_fast_path
        make_put = Entry.put
        make_tombstone = Entry.tombstone
        clock_now = clock.now
        clock_tick = clock.tick
        memtable_add = memtable.add
        # ``_flush`` drains the skip list in place (never rebinds it), so
        # the fill check can read it directly instead of going through the
        # ``is_full`` property on every operation.
        mt_map = memtable._map
        capacity = memtable.capacity
        put_bytes = config.entry_bytes(is_tombstone=False)
        tombstone_bytes = config.entry_bytes(is_tombstone=True)
        puts = deletes = ingested = 0
        count = 0
        try:
            for op in ops:
                kind = op[0]
                now = clock_now()
                seqno = self._seqno + 1
                self._seqno = seqno
                if kind == "put":
                    entry = make_put(
                        op[1],
                        op[2],
                        seqno,
                        now,
                        op[3] if len(op) > 3 else None,
                    )
                    puts += 1
                    ingested += put_bytes
                elif kind == "delete":
                    entry = make_tombstone(op[1], seqno, now)
                    deletes += 1
                    ingested += tombstone_bytes
                    if listener is not None:
                        listener.tombstone_registered(entry, now)
                else:
                    raise ValueError(f"unknown batch op kind {kind!r}")
                if wal is not None:
                    pending.append(entry)
                displaced = memtable_add(entry)
                if displaced is not None and displaced.is_tombstone and listener is not None:
                    listener.tombstone_superseded(displaced, now)
                clock_tick()
                count += 1
                # Inline _maybe_flush: same O(1) checks, but entries that
                # flush here are persisted by the flush itself, so their
                # buffered WAL records are dropped unwritten.
                if len(mt_map) >= capacity:
                    pending.clear()
                    self._flush()
                    # The flush drains in place, but the governor may have
                    # retargeted the soft limit mid-batch -- re-read it so
                    # the next fill check sees the live budget.
                    capacity = memtable.capacity
                elif fade is not None and memtable.first_tombstone_time is not None:
                    deadline = fade.buffer_deadline(
                        memtable.first_tombstone_time, self.deepest_nonempty_level()
                    )
                    if clock_now() >= deadline:
                        pending.clear()
                        self._flush()
                        capacity = memtable.capacity
                # Inline maintain()'s fast path: when nothing structural
                # changed and no expiry is due, maintain() would return
                # without planning -- skip even the call.
                if (
                    not fast
                    or self._maintenance_dirty
                    or (fade is not None and self._fade_deadline_due())
                ):
                    self.maintain()
        finally:
            counters["puts"] += puts
            counters["deletes"] += deletes
            counters["ingested_bytes"] += ingested
            if wal is not None and pending:
                wal.append_many(pending)
        return count

    def _next_seqno(self) -> int:
        self._seqno += 1
        return self._seqno

    def _ingest(self, entry: Entry) -> None:
        self._check_writable()
        if self._wal is not None:
            self._wal.append(entry)
        displaced = self.memtable.add(entry)
        if displaced is not None and displaced.is_tombstone and self.listener is not None:
            self.listener.tombstone_superseded(displaced, self.clock.now())
        self.clock.tick()
        self._maybe_flush()
        self.maintain()

    def _maybe_flush(self) -> None:
        if self.memtable.is_full:
            self._flush()
            return
        # FADE: the buffer holds its own slice of D_th; flush early if the
        # oldest buffered tombstone is about to overstay it.
        if self._fade is not None and self.memtable.first_tombstone_time is not None:
            deadline = self._fade.buffer_deadline(
                self.memtable.first_tombstone_time, self.deepest_nonempty_level()
            )
            if self.clock.now() >= deadline:
                self._flush()

    def set_memtable_budget(self, entries: int) -> None:
        """Retarget the live write-buffer soft limit (advisory).

        Takes effect immediately on the active memtable -- a shrink below
        the current fill simply makes the next per-op flush check fire,
        draining through the normal path (inline serially; rotation into
        the frozen queue under workers>0, whose protocol is untouched) --
        and on every memtable created afterwards
        (:meth:`~repro.lsm.writepath.WritePathController._rotate` sizes
        replacements from this budget).  Never persisted: reopen resets
        to ``config.memtable_entries``.
        """
        if entries < 1:
            raise ValueError(f"memtable budget must be >= 1, got {entries}")
        self.memtable_budget = entries
        self.memtable.capacity = entries

    @property
    def policy(self) -> CompactionStyle:
        """The live compaction policy (mutable via :meth:`set_policy`)."""
        return self.config.policy

    def set_policy(self, style: CompactionStyle) -> bool:
        """Switch the live compaction policy; True when it changed.

        The self-tuning seam: leveling -> tiering/lazy-leveling simply
        relaxes the triggers and takes effect at the next plan, while
        tiering -> leveling leaves multi-run levels the new policy must
        consolidate -- the planner's ordinary ``LEVEL_COLLAPSE`` path
        schedules those merges through the normal executor (FADE
        priority and fence resolution preserved), so no ``exclusive()``
        drain is needed in either direction.

        Unlike the advisory memory budgets, the applied policy is
        **durable tree state**: the switch rewrites the manifest's
        recorded config, so a reopened store keeps its tuned policy.
        """
        self._check_open()
        self._check_writable()
        if not isinstance(style, CompactionStyle):
            raise ConfigError(
                f"set_policy expects a CompactionStyle, got {style!r}"
            )
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            return wp.set_policy(style)
        changed = self._apply_policy_switch(style)
        if changed:
            # Serial mode consolidates inline: drain any transition
            # compactions (tiering -> leveling run collapses) right away.
            self.maintain()
        return changed

    def _apply_policy_switch(self, style: CompactionStyle) -> bool:
        """Rebind the live config to ``style`` and persist it (no-op when
        already current).  The caller holds whatever exclusion the mode
        requires: nothing serially, the writer lock + ``_cv`` in
        concurrent mode (all planning happens under ``_cv``)."""
        if style is self.config.policy:
            return False
        new_config = self.config.with_updates(policy=style)
        self.config = new_config
        self._planner.config = new_config
        if self._fade is not None:
            # FADE reads the policy lazily at plan time and caches D_th
            # separately, so rebinding its config is the entire hand-off
            # -- deadlines, the tracked-file heap, and the delete
            # guarantee are untouched by a policy switch.
            self._fade.config = new_config
        self.policy_switches += 1
        self.last_policy_switch_tick = self.clock.now()
        # The planner's triggers changed shape even though no run did:
        # force the next maintenance pass to evaluate.
        self._maintenance_dirty = True
        self._persist_manifest()
        return True

    def flush(self) -> None:
        """Force the memtable to disk (no-op when empty).

        In concurrent mode this is a full pipeline drain: the active
        memtable rotates, the frozen queue and every in-flight compaction
        complete, and the WAL rotates -- the only point (besides close)
        where it safely can.
        """
        self._check_open()
        self._check_writable()
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            wp.flush()
            return
        if not self.memtable.is_empty:
            self._flush()
            self.maintain()

    def _flush(self) -> None:
        entries = self.memtable.drain()
        if not entries:
            return
        self._flushed_seqno = max(self._flushed_seqno, max(e.seqno for e in entries))
        # Range-tombstone fences resolve buffered data here: shadowed
        # values are dropped before they ever reach a file, exactly as an
        # eager delete purges them from the memtable (the flushed mark
        # above still covers them, so WAL replay never resurrects them
        # into a tree whose fences could have retired meanwhile).
        check = shadow_check(self._fences)
        if check is not None:
            entries = [e for e in entries if not check(e)]
        now = self.clock.now()
        if entries:
            files = build_files(
                entries, self.config, self.file_ids, now, salt=self.bloom_salt
            )
            self.disk.write_pages(sum(f.page_count for f in files), CATEGORY_FLUSH)
            self.level(1).add_newest_run(Run(files))
            for file in files:
                self._register_file(file, 1)
                self._persist_file(file)
        self.flush_count += 1
        if self._fences:
            self._retire_resolved_fences()
        # Write-ordering protocol: the WAL may only be rotated once the
        # flushed entries are durable through the *published* manifest.
        # Rotating first would leave a crash window in which the entries
        # exist neither in the WAL nor in any manifest-referenced run.
        self._persist_manifest()
        if self._wal is not None:
            self._wal.truncate()

    # ==================================================================
    # maintenance (compaction loop)
    # ==================================================================
    def maintain(self) -> int:
        """Run compactions until no trigger fires; returns how many ran.

        Saturation/structural tasks drain first so FADE always plans
        against a structurally quiescent tree; expiry tasks then run until
        no deadline is due.  All work is synchronous and instantaneous in
        simulated time (the clock only moves on ingestion).

        Cheap-trigger fast path: the saturation planner is a pure function
        of the level structure, so if nothing structural changed since the
        last quiescent pass (flush, compaction, secondary delete) and no
        FADE deadline has come due, the full planner evaluation is skipped
        -- an O(1) flag check plus an O(1) heap peek instead of a walk over
        every level.  This is what makes per-operation maintenance free.

        In concurrent mode maintenance is continuous (the pump runs after
        every install), so this degrades to a barrier: wait until the
        background machinery is quiescent, then report 0 (the work is
        attributed to the workers, not to this call).
        """
        self._check_open()
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            wp.barrier()
            return 0
        if (
            self.maintenance_fast_path
            and not self._maintenance_dirty
            and not self._fade_deadline_due()
        ):
            return 0
        executed = 0
        retired = 0
        while True:
            task = self._planner.plan(self)
            if task is None and self._fade is not None:
                task = self._fade.plan(self)
            if task is None:
                if (
                    self._fences
                    and self._fade is not None
                    and self._fade.fence_overdue(self.clock.now())
                ):
                    # An overdue fence the compaction planner cannot act
                    # on: its remaining shadowed data is buffered (the
                    # flush filter drops it, after which the fence can
                    # retire) or already gone (retire directly).  Both
                    # branches strictly shrink the overdue set, so the
                    # retry terminates.
                    if not self.memtable.is_empty and self._buffer_shadowable():
                        self._flush()
                        continue
                    if self._retire_resolved_fences():
                        retired += 1
                        continue
                break
            event = execute_task(task, self)
            self.compaction_log.append(event)
            executed += 1
        if executed and self._fences:
            retired += self._retire_resolved_fences()
        # Quiescent: no saturation trigger fires and no expiry is due, so
        # the next maintain() may skip planning until structure changes.
        self._maintenance_dirty = False
        if executed or retired:
            self._persist_manifest()
        return executed

    def _fade_deadline_due(self) -> bool:
        """True when the earliest FADE deadline is at or before now (O(1))."""
        if self._fade is None:
            return False
        deadline = self._fade.next_deadline()
        return deadline is not None and deadline <= self.clock.now()

    def full_compaction(self) -> CompactionEvent | None:
        """Merge the entire tree into a single bottom run, purging deletes.

        This is the expensive "full tree merge" the paper notes is the
        baseline's only way to force deletes out; exposed both as a user
        utility and as the comparator in experiment F5.
        """
        self._check_open()
        self._check_writable()
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            with wp.exclusive():
                return self.full_compaction()
        self.flush()
        inputs = [
            TaskInput(level.index, run, list(run.files))
            for level in self.iter_levels()
            for run in level.runs
        ]
        if not inputs:
            return None
        target = max(self.deepest_nonempty_level(), 1)
        task = CompactionTask(
            reason=CompactionReason.LEVEL_COLLAPSE,
            inputs=inputs,
            target_level=target,
            placement=OutputPlacement.NEW_RUN,
            drop_tombstones=True,
            notes="full tree compaction",
        )
        event = execute_task(task, self)
        self.compaction_log.append(event)
        if self._fences:
            self._retire_resolved_fences()
        self._persist_manifest()
        return event

    # ==================================================================
    # read path
    # ==================================================================
    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup; returns ``default`` for missing or deleted keys."""
        self._check_open()
        self.counters["gets"] += 1
        entry = self._get_entry(key)
        if entry is None or entry.is_tombstone:
            return default
        self.counters["gets_found"] += 1
        return entry.value

    def contains(self, key: Any) -> bool:
        """True when ``key`` currently maps to a live value."""
        self._check_open()
        entry = self._get_entry(key)
        return entry is not None and entry.is_put

    def _get_entry(self, key: Any) -> Entry | None:
        """The pruned point lookup (the tentpole of the read overhaul).

        Per run, in cost order: (1) the run's ``[min_key, max_key]`` span
        and the file/tile fence pointers -- pure in-memory comparisons --
        skip runs that cannot hold the key; (2) when the fences name a
        single candidate page and it is already cached, the lookup is
        answered from it directly (a resident page is cheaper than a
        filter probe, and exact); (3) otherwise the file's Bloom filter
        is probed with a hash pair computed at most *once* per lookup
        (and only when some run survives the range check, so out-of-range
        probes never pay the digest); (4) only then does the file descend
        to pages, through the shared cache-aware reader.  Level-1 pages --
        the hottest, most-churned data -- are inserted pinned.  Every
        skip/probe is accounted per level (see :meth:`read_stats`).

        Concurrent mode routes through the controller's published
        snapshot (active memtable -> frozen queue -> versioned levels);
        the two-instruction guard below is the read path's entire
        concurrency cost in serial mode.
        """
        wp = self._wp
        if wp is not None:
            return wp.get_entry(key)
        fences = self._fences
        check = shadow_check(fences)
        entry = self.memtable.get(key)
        if entry is not None:
            if check is None or not check(entry):
                return entry
            # Fence-shadowed: the buffered version is deleted, but an
            # older out-of-window version may survive below -- descend.
        hashed = None
        reader = self._reader
        cache_get = self.cache.get
        # With classical single-page tiles every surviving lookup descends
        # to exactly one fence-named page, so the descent is inlined below
        # (no file.get / read_page frames on the hottest path).
        single_page = self.config.pages_per_tile == 1
        for level in self._levels:
            pinned = level.index == 1
            for run in level.runs:  # newest first
                files = run.files
                if key < files[0].min_key or key > files[-1].max_key:
                    level.lookup_skips_range += 1
                    continue
                fence = run.file_fence
                idx = bisect_right(fence.mins, key) - 1
                if idx < 0 or key > fence.maxes[idx]:
                    level.lookup_skips_range += 1
                    continue
                file = files[idx]
                # Fence check ordered before the Bloom probe and page
                # descent: a file whose every entry is shadowed by a
                # range-tombstone fence serves nothing, so the lookup
                # skips its I/O entirely.
                if check is not None and file_fully_shadowed(file, fences):
                    level.lookup_skips_fence += 1
                    continue
                if hashed is None:
                    try:
                        hashed = key_hash_pair(key, self.bloom_salt)
                    except TypeError:  # unhashable key: digest directly
                        hashed = hash_pair(_key_bytes(key), self.bloom_salt)
                if not file.bloom.might_contain_hashed(hashed[0], hashed[1]):
                    level.lookup_skips_bloom += 1
                    continue
                level.lookup_probes += 1
                if single_page:
                    tile_fence = file.tile_fence
                    tidx = bisect_right(tile_fence.mins, key) - 1
                    if tidx < 0 or key > tile_fence.maxes[tidx]:
                        continue  # filter false positive, key between tiles
                    pages = file.tiles[tidx].pages
                    if len(pages) != 1:  # layout drift (recovered file)
                        found = file.get(key, reader, pinned, tidx)
                    else:
                        # One page per tile => the flat page index IS the
                        # tile index.  Same accounting as read_page, with
                        # no wrapper frames.
                        page = cache_get(file.file_id, tidx)
                        if page is None:
                            self.disk.read_pages(1, reader.category)
                            page = pages[0]
                            self.cache.put(file.file_id, tidx, page, pinned)
                            found = page.get(key)
                            if found is None:
                                # Negative-lookup guard (hardened caches
                                # only): this page was admitted solely to
                                # answer a bloom false positive -- drop it
                                # before a flood of such misses evicts the
                                # hot set.  No-op when hardening is off.
                                self.cache.note_negative(file.file_id, tidx)
                        else:
                            level.lookup_cache_direct += 1
                            found = page.get(key)
                else:
                    found = file.get(key, reader, pinned)
                if found is not None:
                    if check is not None and check(found):
                        # Shadowed by a fence: keep descending -- an older
                        # out-of-window version below may still be live.
                        continue
                    level.lookup_serves += 1
                    return found
        return None

    def scan(
        self,
        lo: Any,
        hi: Any,
        limit: int | None = None,
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Live ``(key, value)`` pairs with ``lo <= key <= hi``.

        Ascending by default; ``reverse=True`` walks from ``hi`` down to
        ``lo`` (``limit`` then takes the topmost keys).  Lazy: page reads
        are charged as the iterator is consumed.

        The fused path: runs whose key span misses ``[lo, hi]`` are pruned
        up front without I/O (at call time), each surviving run streams
        per-tile blocks with batched prefetching (:meth:`Run.scan_blocks`),
        and :func:`scan_fused` merges the blocks, skipping
        tombstone-shadowed keys without materializing them and
        early-exiting on ``limit``.  The returned iterator is a C-level
        ``map`` over the fused merge -- no per-row Python frame here.
        """
        self._check_open()
        self.counters["scans"] += 1
        if limit is not None and limit <= 0:
            return iter(())  # LIMIT 0: empty, not "unlimited"
        wp = self._wp
        if wp is not None:
            return wp.scan(lo, hi, limit=limit, reverse=reverse)
        reader = self._reader
        buffered = list(self.memtable.range(lo, hi))
        if reverse:
            buffered.reverse()
        sources: list = []
        if buffered:
            sources.append((buffered,))
        for level in self._levels:
            for run in level.runs:
                if run.max_key < lo or run.min_key > hi:
                    level.scan_runs_pruned += 1
                    continue
                sources.append(run.scan_blocks(lo, hi, reader, reverse))
        if not sources:
            return iter(())
        return map(
            _ENTRY_PAIR,
            scan_fused(
                sources,
                limit=limit,
                reverse=reverse,
                drop=shadow_check(self._fences),
            ),
        )

    def read_stats(self) -> dict[str, Any]:
        """Read-path observability: cache stats + per-level pruning counters.

        Mirrors the cache's hit/miss/eviction totals into
        ``tree.counters`` (so any counters dump carries them) and returns
        the full picture: the ``cache`` section plus one row per level
        with probe/skip/serve counts -- how often fence pointers and Bloom
        filters saved page I/O.
        """
        cache_stats = self.cache.stats()
        counters = self.counters
        counters["cache_hits"] = cache_stats["hits"]
        counters["cache_misses"] = cache_stats["misses"]
        counters["cache_evictions"] = cache_stats["evictions"]
        levels = [
            {
                "level": level.index,
                "lookup_probes": level.lookup_probes,
                "lookup_skips_range": level.lookup_skips_range,
                "lookup_skips_bloom": level.lookup_skips_bloom,
                "lookup_skips_fence": level.lookup_skips_fence,
                "lookup_serves": level.lookup_serves,
                "lookup_cache_direct": level.lookup_cache_direct,
                "scan_runs_pruned": level.scan_runs_pruned,
            }
            for level in self._levels
        ]
        return {"cache": cache_stats, "levels": levels}

    # ==================================================================
    # structure accessors
    # ==================================================================
    def level(self, index: int) -> Level:
        """Level ``index`` (1-based), created on demand."""
        if index < 1:
            raise ValueError(f"on-disk levels are 1-based, got {index}")
        while len(self._levels) < index:
            self._levels.append(
                Level(len(self._levels) + 1, observer=self._on_structure_change)
            )
        return self._levels[index - 1]

    def _on_structure_change(self) -> None:
        """A level's run list changed: invalidate structure-derived caches."""
        self._deepest_cache = None
        self._maintenance_dirty = True

    def iter_levels(self) -> Iterator[Level]:
        """Existing levels, shallow to deep (some may be empty)."""
        return iter(self._levels)

    def deepest_nonempty_level(self) -> int:
        """Index of the deepest level holding data, or 0 when none do.

        O(1) between structural changes: the scan result is cached and
        invalidated by the level observer on any run-list mutation.
        """
        cached = self._deepest_cache
        if cached is None:
            cached = 0
            for level in reversed(self._levels):
                if level.runs:
                    cached = level.index
                    break
            self._deepest_cache = cached
        return cached

    @property
    def entry_count_on_disk(self) -> int:
        return sum(level.entry_count for level in self._levels)

    @property
    def tombstone_count_on_disk(self) -> int:
        return sum(level.tombstone_count for level in self._levels)

    @property
    def page_count_on_disk(self) -> int:
        return sum(level.page_count for level in self._levels)

    # ==================================================================
    # file lifecycle hooks (executor / secondary deletes call these)
    # ==================================================================
    def on_file_added(self, file: SSTableFile, level_index: int) -> None:
        self._register_file(file, level_index)
        self._persist_file(file)

    def on_file_removed(self, file: SSTableFile, level_index: int) -> None:
        if self._fade is not None:
            self._fade.file_removed(file.file_id)
        if self._store is not None and not self._read_only:
            # Defer the physical unlink until the next manifest publish:
            # the current manifest still references this file, and it must
            # stay readable for recovery until a manifest without it is
            # durable on disk.
            self._doomed_files.append(file.file_id)

    def on_file_moved(self, file: SSTableFile, from_level: int, to_level: int) -> None:
        """A trivial move: same file object, new depth.

        The durable copy needs no rewrite (the manifest records the new
        level); FADE deadlines are depth-dependent, so re-register.
        """
        if self._fade is not None:
            self._fade.file_removed(file.file_id)
            self._fade.file_added(file, to_level, self.deepest_nonempty_level())

    def _register_file(self, file: SSTableFile, level_index: int) -> None:
        if self._fade is not None:
            self._fade.file_added(file, level_index, self.deepest_nonempty_level())

    def _persist_file(self, file: SSTableFile) -> None:
        if self._store is None or self._read_only:
            return
        tiles = [[page.entries for page in tile.pages] for tile in file.tiles]
        self._store.write_sstable(file.file_id, tiles, {"created_at": file.created_at})

    def _persist_manifest(self) -> None:
        if self._store is None or self._read_only:
            return
        levels = [
            [[f.file_id for f in run.files] for run in level.runs] for level in self._levels
        ]
        manifest = {
            "levels": levels,
            "next_file_id": self.file_ids.peek(),
            "seqno": self._seqno,
            "flushed_seqno": self._flushed_seqno,
            "clock": self.clock.now(),
            "flush_count": self.flush_count,
            "config": self.config.to_dict(),
        }
        if self._fences:
            # Back-compat: the key is absent while no fence is live, so
            # manifests from fence-free trees are byte-identical to old
            # ones and old manifests restore cleanly.
            manifest["fences"] = [f.to_row() for f in self._fences]
        if self.bloom_salt is not None:
            # Same back-compat idiom: unsalted trees write manifests
            # byte-identical to pre-salt ones.
            manifest["bloom_salt"] = self.bloom_salt.hex()
        self._store.write_manifest(manifest)
        # The new manifest no longer references the doomed files; their
        # physical deletion is now safe (and crash-idempotent: a crash
        # mid-loop leaves unreferenced files that startup GC removes).
        if self._doomed_files:
            doomed, self._doomed_files = self._doomed_files, []
            for file_id in doomed:
                self._store.delete_sstable(file_id)

    def _sync_wal_with_memtable(self) -> None:
        """Atomically rewrite the WAL to hold exactly the buffered entries.

        Called after an operation purges entries from the memtable without
        flushing it (secondary range deletes): replaying the old log would
        resurrect the purged values.  Ordered *after* the manifest publish
        so a crash in between merely un-acks the purge (the old log and
        the old buffered values come back together).
        """
        if self._wal is None:
            return
        records = list(self.memtable)
        # Live fences keep their WAL belt across the rewrite (they are
        # also in the manifest, but the WAL copy covers the crash window
        # of the *next* manifest publish).
        records.extend(f.to_entry() for f in self._fences)
        self._wal.rewrite(records)

    # ==================================================================
    # range-tombstone fences (lazy secondary range deletes)
    # ==================================================================
    @property
    def fences(self) -> tuple[RangeFence, ...]:
        """The live range-tombstone fences (a snapshot; oldest first)."""
        return self._fences

    def append_range_fence(self, lo: int, hi: int) -> RangeFence:
        """Durably record a range-tombstone fence over ``[lo, hi]``.

        O(1) in the amount of covered data: one WAL append plus one
        manifest publish, no file rewrites and no ``exclusive()`` section.
        In concurrent mode the controller wraps this under its write lock
        (see :meth:`WritePathController.append_range_fence`); the serial
        path below is the whole protocol.

        Durability order: WAL first (covers a crash during the manifest
        write), then the in-memory install, then the manifest (covers
        every later WAL truncation -- a flush or close may rotate the log
        at any time, and the fence must survive that).
        """
        self._check_open()
        self._check_writable()
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            return wp.append_range_fence(lo, hi)
        fence = RangeFence(lo, hi, self._next_seqno(), self.clock.now())
        if self._wal is not None:
            self._wal.append(fence.to_entry())
        self._install_fence(fence)
        self._persist_manifest()
        return fence

    def _install_fence(self, fence: RangeFence) -> None:
        """Attach ``fence`` to the live set (no durability side effects)."""
        self._fences = self._fences + (fence,)
        # The read path changed shape even though no run did: force the
        # next maintenance pass to evaluate (fence resolution may already
        # be plannable) and drop the structure-derived fast path.
        self._maintenance_dirty = True
        if self._fade is not None:
            self._fade.fence_added(fence, self.deepest_nonempty_level())

    def _buffer_shadowable(self, buffers: Iterable[Iterable[Entry]] = ()) -> bool:
        """True when the memtable (or ``buffers``) holds a shadowed entry."""
        check = shadow_check(self._fences)
        if check is None:
            return False
        # Snapshot the sidecar dict, not the skip-list: background
        # threads audit this while a writer may be inserting, and a
        # dict-values copy is atomic under the GIL.
        for entry in list(self.memtable._map._index.values()):
            if check(entry):
                return True
        for buffer in buffers:
            for entry in buffer:
                if check(entry):
                    return True
        return False

    def _fence_unresolved(
        self, fence: RangeFence, buffers: Iterable[Iterable[Entry]] = ()
    ) -> bool:
        """True while some live entry is still shadowed by ``fence``.

        ``buffers`` lets the concurrent controller include its frozen
        memtables in the audit.
        """
        lo, hi, seq = fence.lo, fence.hi, fence.seqno
        # Dict snapshot for the same thread-safety reason as
        # _buffer_shadowable above.
        for entry in list(self.memtable._map._index.values()):
            if entry.is_put and entry.seqno < seq and lo <= entry.delete_key <= hi:
                return True
        for buffer in buffers:
            for entry in buffer:
                if entry.is_put and entry.seqno < seq and lo <= entry.delete_key <= hi:
                    return True
        for level in self._levels:
            for run in level.runs:
                for file in run.files:
                    if file_shadowable(file, fence):
                        return True
        return False

    def _retire_resolved_fences(
        self, buffers: Iterable[Iterable[Entry]] = ()
    ) -> int:
        """Drop fences no remaining entry is shadowed by; returns how many.

        The caller is responsible for publishing the manifest afterwards
        (every call site already sits on a publish path).
        """
        fences = self._fences
        if not fences:
            return 0
        live = tuple(f for f in fences if self._fence_unresolved(f, buffers))
        if len(live) == len(fences):
            return 0
        self._fences = live
        if self._fade is not None:
            kept = {f.seqno for f in live}
            for fence in fences:
                if fence.seqno not in kept:
                    self._fade.fence_removed(fence.seqno)
        return len(fences) - len(live)

    # ==================================================================
    # lifecycle & utilities
    # ==================================================================
    def advance_time(self, ticks: int) -> None:
        """Model an idle period of ``ticks``.

        The clock is advanced *deadline by deadline*: whenever a FADE file
        deadline or the buffer's tombstone deadline falls inside the
        window, time stops there, the due maintenance runs, and only then
        does time continue -- exactly as a background compaction thread
        would behave.  Jumping the whole window at once would make expiry
        compactions appear late and violate ``D_th`` spuriously.
        """
        self._check_open()
        self._check_writable()
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            wp.advance_time(ticks)
            return
        if ticks < 0:
            raise ValueError(f"cannot advance time backwards ({ticks})")
        target = self.clock.now() + ticks
        while True:
            now = self.clock.now()
            if now >= target:
                break
            stop = target
            if self._fade is not None:
                next_deadline = self._fade.next_deadline()
                if next_deadline is not None and now < next_deadline < stop:
                    stop = next_deadline
                if self.memtable.first_tombstone_time is not None:
                    buffer_deadline = self._fade.buffer_deadline(
                        self.memtable.first_tombstone_time, self.deepest_nonempty_level()
                    )
                    if now < buffer_deadline < stop:
                        stop = buffer_deadline
            self.clock.advance_to(stop)
            self._maybe_flush()
            self.maintain()

    def close(self) -> None:
        """Flush state to disk (durable mode) and refuse further use.

        In concurrent mode the controller drains and stops its workers
        first; a pending background error (e.g. an injected crash inside
        a worker) is re-raised here, after the WAL handle is closed and
        the tree is marked closed, exactly as a crash inside a serial
        close would surface.
        """
        if self._closed:
            return
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            try:
                wp.close()
            finally:
                # Clear the controller only after its workers have
                # stopped: a reader racing with close keeps taking the
                # published-snapshot path while the drain is still
                # installing flushes/compactions, instead of iterating
                # half-installed levels through the serial body.
                self._wp = None
                if self._wal is not None:
                    self._wal.close()
                self._closed = True
            return
        if self._store is not None and not self._read_only and not self.memtable.is_empty:
            self._flush()
            self.maintain()
        if self._wal is not None:
            self._wal.close()
        self._closed = True

    def __enter__(self) -> "LSMTree":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError("this tree has been closed")

    def _check_writable(self) -> None:
        if self._read_only:
            raise EngineClosedError("this tree was opened read-only")

    @property
    def fade(self) -> Any:
        """The FADE scheduler, or None for a baseline tree."""
        return self._fade

    # ==================================================================
    # concurrent write path
    # ==================================================================
    def _start_write_path(self, workers: int) -> None:
        """Attach and start the background flush/compaction controller."""
        from repro.lsm.writepath import WritePathController

        self._wp = WritePathController(self, workers)
        self._wp.start()

    @property
    def write_path(self) -> Any:
        """The concurrent write-path controller, or None in serial mode."""
        return self._wp

    def write_barrier(self) -> None:
        """Wait for all background flushes and compactions (no-op serially)."""
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            wp.barrier()

    def write_stats(self) -> dict[str, Any]:
        """Write-path observability (see :mod:`repro.metrics.writepath`).

        Serial trees report the inline equivalents (every flush and
        compaction ran on the caller's thread; there is no queue and
        there are no stalls), so dashboards render identically in both
        modes.
        """
        wp = self._wp
        if wp is not None:
            return wp.report()
        return {
            "mode": "serial",
            "workers": 1,
            "rotations": self.flush_count,
            "queue_depth": 0,
            "queue_peak": 0,
            "flush_jobs": self.flush_count,
            "flush_memtables": self.flush_count,
            "flush_entries": 0,
            "flush_wall_ms": 0.0,
            "flush_max_ms": 0.0,
            "compaction_jobs": len(self.compaction_log),
            "compaction_inflight": 0,
            "compaction_inflight_peak": 0,
            "compaction_wall_ms": 0.0,
            "compaction_max_ms": 0.0,
            "soft_delays": 0,
            "hard_stalls": 0,
            "stall_seconds": 0.0,
            "pages_written_by_worker": {},
        }

    def verify_invariants(self) -> None:
        """Recovery-time integrity check over the whole tree.

        Raises :class:`~repro.errors.InvariantViolationError` when the
        recovered structure is inconsistent: duplicate file ids, runs
        whose files overlap (level ordering broken), cached entry /
        tombstone / page accounting that disagrees with the actual files,
        or sequence numbers / write times beyond the recovered high-water
        marks.  Run by :meth:`open` on every recovery, and available to
        callers as a cheap post-hoc audit.  Unlike
        :meth:`check_invariants` (an exhaustive assert-based test helper)
        this never uses ``assert``, so it works under ``python -O``.

        In concurrent mode the background machinery is drained first so
        the walk sees a quiescent structure (entries parked in frozen
        memtables are flushed by the drain and audited as usual).
        """
        wp = self._wp
        if wp is not None and not wp.owns_inline():
            wp.barrier()
        seen_ids: set[int] = set()
        max_seqno = 0
        max_write_time = 0
        for level in self._levels:
            entries, tombstones, pages = level.recompute_counts()
            if (level.entry_count, level.tombstone_count, level.page_count) != (
                entries,
                tombstones,
                pages,
            ):
                raise InvariantViolationError(
                    f"L{level.index} accounting mismatch: cached "
                    f"({level.entry_count}, {level.tombstone_count}, "
                    f"{level.page_count}) != actual ({entries}, {tombstones}, {pages})"
                )
            for run in level.runs:
                ordered = sorted(run.files, key=lambda f: f.min_key)
                for left, right in zip(ordered, ordered[1:]):
                    if right.min_key <= left.max_key:
                        raise InvariantViolationError(
                            f"L{level.index}: files {left.file_id} and "
                            f"{right.file_id} overlap within one run"
                        )
                for file in run.files:
                    if file.file_id in seen_ids:
                        raise InvariantViolationError(
                            f"file id {file.file_id} appears twice in the tree"
                        )
                    seen_ids.add(file.file_id)
                    for entry in file.iter_all_entries():
                        if entry.seqno > max_seqno:
                            max_seqno = entry.seqno
                        if entry.write_time > max_write_time:
                            max_write_time = entry.write_time
        for entry in self.memtable:
            if entry.seqno > max_seqno:
                max_seqno = entry.seqno
            if entry.write_time > max_write_time:
                max_write_time = entry.write_time
        if max_seqno > self._seqno:
            raise InvariantViolationError(
                f"entry seqno {max_seqno} exceeds the recovered high-water "
                f"mark {self._seqno}"
            )
        for fence in self._fences:
            if fence.seqno > self._seqno:
                raise InvariantViolationError(
                    f"fence seqno {fence.seqno} exceeds the recovered "
                    f"high-water mark {self._seqno}"
                )
            if fence.lo > fence.hi:
                raise InvariantViolationError(
                    f"fence window inverted: [{fence.lo}, {fence.hi}]"
                )
        if max_write_time > self.clock.now():
            raise InvariantViolationError(
                f"entry write_time {max_write_time} is in the future "
                f"(clock at {self.clock.now()})"
            )

    def check_invariants(self) -> None:
        """Deep structural self-check (tests; AssertionError on failure)."""
        for level in self._levels:
            # Cache coherence: the incremental counters must equal a fresh
            # recomputation from the (immutable) files at all times.
            entries, tombstones, pages = level.recompute_counts()
            assert level.entry_count == entries, (
                f"L{level.index} cached entry_count {level.entry_count} != {entries}"
            )
            assert level.tombstone_count == tombstones, (
                f"L{level.index} cached tombstone_count "
                f"{level.tombstone_count} != {tombstones}"
            )
            assert level.page_count == pages, (
                f"L{level.index} cached page_count {level.page_count} != {pages}"
            )
            for run in level.runs:
                assert run.entry_count == sum(f.entry_count for f in run.files)
                assert run.tombstone_count == sum(f.tombstone_count for f in run.files)
                assert run.page_count == sum(f.page_count for f in run.files)
                for file in run.files:
                    file.check_invariants()
        fresh_deepest = max(
            (level.index for level in self._levels if level.runs), default=0
        )
        assert self.deepest_nonempty_level() == fresh_deepest, (
            f"cached deepest level {self.deepest_nonempty_level()} != {fresh_deepest}"
        )
        # Per-key version ordering: shallower copies must be newer.
        best_seqno: dict[Any, int] = {}
        for entry in self.memtable:
            best_seqno[entry.key] = entry.seqno
        for level in self._levels:
            level_best: dict[Any, int] = {}
            for run in level.runs:
                for file in run.files:
                    for entry in file.iter_all_entries():
                        prev = best_seqno.get(entry.key)
                        assert prev is None or entry.seqno < prev, (
                            f"key {entry.key!r}: seqno {entry.seqno} at L{level.index} "
                            f"not older than {prev} above"
                        )
                        existing = level_best.get(entry.key)
                        if existing is None or entry.seqno > existing:
                            level_best[entry.key] = entry.seqno
            best_seqno.update(level_best)
