"""Acheron reproduction: persisting tombstones in LSM engines.

A complete, pure-Python reproduction of the system demonstrated in
*"Acheron: Persisting Tombstones in LSM Engines"* (SIGMOD 2023): an
LSM-tree storage engine with

* **FADE** -- delete-aware compaction that guarantees every tombstone is
  physically purged within a user-defined threshold ``D_th``;
* **KiWi** -- a key-weaving physical layout enabling cheap range deletes
  on a secondary attribute (page drops instead of a full-tree rewrite);
* classical **leveling/tiering baselines**, a simulated block device with
  exact I/O accounting, workload generation, and the full reconstructed
  evaluation suite (see DESIGN.md and EXPERIMENTS.md).

Quickstart::

    from repro import AcheronEngine

    with AcheronEngine.acheron(delete_persistence_threshold=20_000) as db:
        db.put(1, "hello")
        db.delete(1)
        print(db.stats().persistence.pending)
"""

from repro.clock import AutoTickClock, LogicalClock
from repro.config import (
    CompactionStyle,
    DiskModel,
    FilePickPolicy,
    LSMConfig,
    acheron_config,
    baseline_config,
)
from repro.core.engine import AcheronEngine, EngineStats
from repro.core.kiwi import SecondaryDeleteReport
from repro.core.persistence import PersistenceStats, PersistenceTracker
from repro.core.retention import PurgeRecord, RetentionPolicy
from repro.analysis.model import CostModel, WorkloadProfile
from repro.errors import (
    AcheronError,
    CompactionError,
    ConfigError,
    CorruptionError,
    EngineClosedError,
    InvariantViolationError,
    StorageError,
    WALError,
    WorkloadError,
)
from repro.lsm.compaction.tuner import (
    CompactionTuner,
    PolicyCostModel,
    PolicyTunerConfig,
)
from repro.lsm.tree import LSMTree
from repro.memory import MemoryBudget, MemoryGovernor, MemoryGovernorConfig
from repro.server import (
    AdmissionConfig,
    EngineClient,
    EngineServer,
    ServerConfig,
    ServerError,
)
from repro.shard import PartitionMap, ShardedEngine

__version__ = "1.0.0"

__all__ = [
    "AcheronEngine",
    "AcheronError",
    "AdmissionConfig",
    "AutoTickClock",
    "CompactionError",
    "CompactionStyle",
    "CompactionTuner",
    "CostModel",
    "ConfigError",
    "CorruptionError",
    "DiskModel",
    "EngineClient",
    "EngineClosedError",
    "EngineServer",
    "EngineStats",
    "FilePickPolicy",
    "InvariantViolationError",
    "LSMConfig",
    "LSMTree",
    "LogicalClock",
    "MemoryBudget",
    "MemoryGovernor",
    "MemoryGovernorConfig",
    "PartitionMap",
    "PersistenceStats",
    "PersistenceTracker",
    "PolicyCostModel",
    "PolicyTunerConfig",
    "PurgeRecord",
    "RetentionPolicy",
    "SecondaryDeleteReport",
    "ServerConfig",
    "ServerError",
    "ShardedEngine",
    "StorageError",
    "WALError",
    "WorkloadError",
    "WorkloadProfile",
    "acheron_config",
    "baseline_config",
    "__version__",
]
