"""Exception hierarchy for the Acheron reproduction.

Every error raised by this library derives from :class:`AcheronError`, so
callers can catch one base class.  Sub-classes are deliberately fine-grained:
configuration mistakes, storage corruption, and engine misuse are different
failure modes and should be distinguishable without string matching.
"""

from __future__ import annotations


class AcheronError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(AcheronError):
    """An :class:`~repro.config.LSMConfig` field is invalid or inconsistent."""


class StorageError(AcheronError):
    """Base class for errors in the simulated/persistent storage layer."""


class CorruptionError(StorageError):
    """A page, WAL record, or manifest failed its checksum or decode step."""


class PageNotFoundError(StorageError):
    """A page id was requested that the disk has no record of."""


class WALError(StorageError):
    """The write-ahead log is in an unusable state (closed, truncated...)."""


class EngineClosedError(AcheronError):
    """An operation was attempted on an engine after :meth:`close`."""


class CompactionError(AcheronError):
    """A compaction task could not be planned or executed."""


class InvariantViolationError(AcheronError):
    """An internal structural invariant was found broken.

    Raised by the self-check utilities (``check_invariants`` methods); seeing
    this outside of a test indicates a bug in the library itself.
    """


class WorkloadError(AcheronError):
    """A workload specification is invalid (bad mix weights, empty keyspace)."""
