"""Command-line interface.

Five subcommands mirror the ways the demonstration was driven:

* ``demo``     -- the side-by-side baseline-vs-Acheron walkthrough;
* ``workload`` -- run one configurable workload on one engine and print
  its dashboards;
* ``inspect``  -- open a durable directory (read-only semantics: no new
  ops are issued) and print its dashboards;
* ``verify``   -- run the store doctor against a durable directory; exit
  status 1 when corruption is found;
* ``scrub``    -- checksum every SSTable and validate the manifest's
  integrity envelope (the periodic media-scrubber pass); exit status 1
  when any checksum fails;
* ``stats``    -- dump one :class:`EngineStats` snapshot of a durable
  store; ``--json`` emits the machine-readable form (including the
  read-path, write-path, cache, and shard sections) for scripting and
  dashboards;
* ``shell``    -- the hands-on mode: an interactive prompt over one
  engine (put/get/del/purge/dashboards), reading stdin;
* ``record``   -- materialize a generated workload into a checksummed
  trace file that ``workload --replay`` (or any other tool) can replay;
* ``serve``    -- serve a durable store over TCP (the master/executor
  server in :mod:`repro.server.core`); pair with
  ``workload --connect HOST:PORT --clients N`` to replay any workload
  (including ``--adversary``) over the wire.

``workload`` accepts ``--shards N`` to run against a range-partitioned
:class:`~repro.shard.engine.ShardedEngine`; ``inspect``/``stats``/
``verify``/``scrub`` all recognize sharded store roots automatically.
``workload --adversary <name>`` swaps the generated stream for one of the
seeded attack workloads in :mod:`repro.workload.adversarial`, and
``--defended`` turns on the hardened counter-measures (salted blooms,
flood-proof cache admission, hot-shard auto-split under ``--shards``).

Usage: ``python -m repro.cli <command> --help``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.config import CompactionStyle, acheron_config, baseline_config
from repro.core.engine import AcheronEngine
from repro.demo.inspector import ShardInspector, TreeInspector
from repro.demo.scenarios import run_side_by_side
from repro.shard import ShardedEngine, is_sharded_root
from repro.tools.doctor import diagnose_store, scrub_store
from repro.workload.adversarial import ADVERSARIES, build_adversary
from repro.workload.generator import KEY_STRIDE, WorkloadGenerator
from repro.workload.runner import run_workload
from repro.workload.spec import WorkloadSpec

_POLICIES = {style.value: style for style in CompactionStyle}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Acheron reproduction: delete-aware LSM engine tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="side-by-side baseline vs Acheron walkthrough")
    demo.add_argument("--ops", type=int, default=8_000, help="mixed-phase operations")
    demo.add_argument("--preload", type=int, default=4_000, help="preload inserts")
    demo.add_argument("--d-th", type=int, default=10_000, help="delete persistence threshold")
    demo.add_argument("--deletes", type=float, default=0.25, help="delete fraction")
    demo.add_argument("--seed", type=int, default=0xACE)

    wl = sub.add_parser("workload", help="run one workload on one engine")
    wl.add_argument("--engine", choices=["baseline", "acheron"], default="acheron")
    wl.add_argument("--policy", choices=sorted(_POLICIES), default="leveling")
    wl.add_argument("--ops", type=int, default=10_000)
    wl.add_argument("--preload", type=int, default=5_000)
    wl.add_argument("--deletes", type=float, default=0.15, help="delete fraction")
    wl.add_argument("--d-th", type=int, default=10_000)
    wl.add_argument("--pages-per-tile", type=int, default=8, help="KiWi h")
    wl.add_argument("--distribution", choices=["uniform", "zipfian", "hotspot"],
                    default="uniform")
    wl.add_argument("--seed", type=int, default=0xACE)
    wl.add_argument("--directory", default=None, help="durable store directory")
    wl.add_argument("--replay", default=None, help="replay a recorded trace instead of generating")
    wl.add_argument("--shards", type=int, default=1,
                    help="range-partition across this many shard trees")
    wl.add_argument("--writers", type=int, default=None,
                    help="concurrent (shard-affine) writer threads for the replay")
    wl.add_argument("--method", choices=["eager", "lazy", "auto"], default="auto",
                    help="secondary range-delete executor: eager file rewrites, "
                         "lazy O(1) range-tombstone fences, or auto (eager, "
                         "paper-accurate physical cost)")
    wl.add_argument("--adversary", choices=sorted(ADVERSARIES), default=None,
                    help="replace the generated stream with a seeded attack "
                         "workload (see repro.workload.adversarial)")
    wl.add_argument("--defended", action="store_true",
                    help="enable the hardened defenses: salted blooms, "
                         "flood-proof cache admission, and (with --shards) "
                         "hot-shard auto-split")
    wl.add_argument("--memory-budget", type=int, default=None, metavar="PAGES",
                    help="per-shard block-cache budget in pages (the global "
                         "pool is shards x this; default: the engine preset)")
    wl.add_argument("--memory-governor", action="store_true",
                    help="arm the adaptive memory governor (requires "
                         "--shards > 1): live write-buffer/block-cache "
                         "arbitration across shards from observed write "
                         "rate, hit rate, and tombstone density")
    wl.add_argument("--policy-tuner", action="store_true",
                    help="arm the self-tuning compaction governor "
                         "(requires --shards > 1): per-shard live policy "
                         "switching from the observed read/write/delete/"
                         "scan mix, behind hysteresis")
    wl.add_argument("--shard-policies", default=None, metavar="IDX=POLICY,...",
                    help="per-shard compaction policy overrides for "
                         "heterogeneous manual layouts (requires "
                         "--shards > 1), e.g. 0=tiering,2=lazy_leveling; "
                         "unlisted shards keep --policy")
    wl.add_argument("--connect", default=None, metavar="HOST:PORT",
                    help="replay against a live `repro serve` endpoint "
                         "instead of an embedded engine; engine-local "
                         "flags are refused (the server owns the engine)")
    wl.add_argument("--clients", type=int, default=None, metavar="N",
                    help="concurrent pipelined client connections for "
                         "--connect (default 1)")

    serve = sub.add_parser(
        "serve", help="serve a durable store over TCP (master/executor workers)"
    )
    serve.add_argument("directory", help="durable store root (created if missing)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral; the bound address is printed)")
    serve.add_argument("--workers", type=int, default=None,
                       help="executor workers (default: one per shard, max 8)")
    serve.add_argument("--shards", type=int, default=None,
                       help="shard count when creating a new store "
                            "(existing stores keep their recorded layout)")
    serve.add_argument("--key-space", type=int, default=None, metavar="HI",
                       help="upper key bound for the uniform shard "
                            "boundaries of a NEW store; size it to the "
                            "workload's footprint ((preload+ops) x key "
                            "stride 4) or traffic piles into shard 0 "
                            "(default: 1<<20)")

    record = sub.add_parser("record", help="write a generated workload to a trace file")
    record.add_argument("trace_path")
    record.add_argument("--ops", type=int, default=10_000)
    record.add_argument("--preload", type=int, default=5_000)
    record.add_argument("--deletes", type=float, default=0.15)
    record.add_argument("--distribution", choices=["uniform", "zipfian", "hotspot"],
                        default="uniform")
    record.add_argument("--seed", type=int, default=0xACE)

    inspect = sub.add_parser("inspect", help="print dashboards of a durable store")
    inspect.add_argument("directory")

    stats = sub.add_parser("stats", help="dump an EngineStats snapshot of a durable store")
    stats.add_argument("directory")
    stats.add_argument("--json", action="store_true",
                       help="machine-readable JSON instead of dashboards")

    verify = sub.add_parser("verify", help="run the store doctor (exit 1 on corruption)")
    verify.add_argument("directory")

    scrub = sub.add_parser(
        "scrub", help="checksum all sstables + validate the manifest (exit 1 on corruption)"
    )
    scrub.add_argument("directory")

    shell = sub.add_parser("shell", help="interactive engine shell (reads stdin)")
    shell.add_argument("--engine", choices=["baseline", "acheron"], default="acheron")
    shell.add_argument("--d-th", type=int, default=10_000)
    shell.add_argument("--directory", default=None, help="durable store directory")

    return parser


def _spec_from_args(args: argparse.Namespace) -> WorkloadSpec:
    spec = WorkloadSpec(
        operations=args.ops,
        preload=args.preload,
        distribution=getattr(args, "distribution", "uniform"),
        seed=args.seed,
    )
    return spec.with_delete_fraction(args.deletes)


def _cmd_demo(args: argparse.Namespace) -> int:
    scenario = run_side_by_side(
        _spec_from_args(args),
        delete_persistence_threshold=args.d_th,
        memtable_entries=512,
        entries_per_page=32,
    )
    print(scenario.render())
    return 0


#: ``workload`` flags that configure the *embedded* engine and therefore
#: cannot apply when ``--connect`` hands the engine to a remote server:
#: (flag, detector for "the user set it to a non-default value").
_ENGINE_LOCAL_FLAGS = [
    ("--directory", lambda a: a.directory is not None),
    ("--shards", lambda a: a.shards != 1),
    ("--writers", lambda a: a.writers is not None),
    ("--engine", lambda a: a.engine != "acheron"),
    ("--policy", lambda a: a.policy != "leveling"),
    ("--d-th", lambda a: a.d_th != 10_000),
    ("--pages-per-tile", lambda a: a.pages_per_tile != 8),
    ("--defended", lambda a: a.defended),
    ("--memory-budget", lambda a: a.memory_budget is not None),
    ("--memory-governor", lambda a: a.memory_governor),
    ("--policy-tuner", lambda a: a.policy_tuner),
    ("--shard-policies", lambda a: a.shard_policies is not None),
]


def _cmd_workload_connect(args: argparse.Namespace) -> int:
    """The ``workload --connect`` arm: replay over the wire."""
    offending = [flag for flag, is_set in _ENGINE_LOCAL_FLAGS if is_set(args)]
    if offending:
        print(
            f"--connect replays against a remote server, which owns its own "
            f"engine; these engine-local flag(s) cannot apply there: "
            f"{', '.join(offending)}.  Configure the engine on the "
            f"`repro serve` side instead.",
            file=sys.stderr,
        )
        return 2
    if args.clients is not None and args.clients < 1:
        print("--clients must be >= 1", file=sys.stderr)
        return 2
    if args.replay:
        from repro.workload.trace import load_trace

        operations = load_trace(args.replay)
    elif args.adversary:
        # Mirror the embedded arm's build parameters (`repro serve`
        # builds its stores at the same 512-entry memtable scale).
        knobs = {}
        if args.adversary in ("bloom_defeat", "empty_flood"):
            knobs["memtable_entries"] = 512
        operations = build_adversary(
            args.adversary,
            seed=args.seed,
            preload=args.preload,
            operations=args.ops,
            **knobs,
        )
    else:
        operations = WorkloadGenerator(_spec_from_args(args)).operations()
    result = run_workload(
        None,
        operations,
        connect=args.connect,
        clients=args.clients,
        secondary_delete_method=args.method,
    )
    from repro.metrics.server import format_server_load
    from repro.server.client import EngineClient

    with EngineClient(args.connect, pool_size=1) as client:
        remote = client.stats()
    print(format_server_load(remote.get("server", {}), name=args.connect))
    served = result.served or {}
    latencies = sorted(served.get("latencies_us", []))

    def pct(p: float) -> float:
        return latencies[min(len(latencies) - 1, int(p * len(latencies)))] if latencies else 0.0

    print(
        f"\n{result.operations} ops over the wire, {result.wall_seconds:.2f}s wall, "
        f"{served.get('clients', 1)} client(s), "
        f"{result.modeled_throughput_ops_per_s():,.0f} modeled ops/s"
    )
    print(
        f"wall latency p50/p95/p99 (us): "
        f"{pct(0.50):,.0f} / {pct(0.95):,.0f} / {pct(0.99):,.0f}; "
        f"sheds seen {served.get('sheds_seen', 0)}, "
        f"reconnects {served.get('reconnects', 0)}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.server import EngineServer, ServerConfig

    if is_sharded_root(args.directory):
        if args.shards is not None or args.key_space is not None:
            print(
                f"{args.directory} is an existing sharded store; its recorded "
                f"layout decides the shard count and boundaries "
                f"(drop --shards/--key-space)",
                file=sys.stderr,
            )
            return 2
        engine = ShardedEngine(directory=args.directory)
    else:
        engine = ShardedEngine(
            acheron_config(memtable_entries=512, entries_per_page=32),
            directory=args.directory,
            shards=args.shards,
            key_space=(0, args.key_space if args.key_space else 1 << 20),
        )
    server = EngineServer(
        engine,
        ServerConfig(host=args.host, port=args.port, workers=args.workers),
    ).start()
    # The parseable readiness line CI and scripts wait for.
    print(f"serving {args.directory} at {server.address} "
          f"({len(engine.shards)} shard(s))", flush=True)
    done = threading.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        signal.signal(sig, lambda *_: done.set())
    done.wait()
    print("shutting down", flush=True)
    server.stop(close_engine=True)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    if args.connect:
        return _cmd_workload_connect(args)
    if args.clients is not None:
        print("--clients requires --connect", file=sys.stderr)
        return 2
    scale = {
        "memtable_entries": 512,
        "entries_per_page": 32,
        "policy": _POLICIES[args.policy],
    }
    if args.defended:
        scale["bloom_salted"] = True
        scale["cache_hardened"] = True
    if args.memory_budget is not None:
        if args.memory_budget < 0:
            print("--memory-budget must be >= 0", file=sys.stderr)
            return 2
        scale["cache_pages"] = args.memory_budget
    if args.memory_governor and args.shards <= 1:
        print("--memory-governor requires --shards > 1", file=sys.stderr)
        return 2
    if args.policy_tuner and args.shards <= 1:
        print("--policy-tuner requires --shards > 1", file=sys.stderr)
        return 2
    shard_policies = None
    if args.shard_policies:
        if args.shards <= 1:
            print("--shard-policies requires --shards > 1", file=sys.stderr)
            return 2
        shard_policies = {}
        for item in args.shard_policies.split(","):
            index, sep, policy = item.partition("=")
            if not sep or policy not in _POLICIES or not index.strip().isdigit():
                print(
                    f"--shard-policies entry {item!r} is not IDX=POLICY "
                    f"(policies: {', '.join(sorted(_POLICIES))})",
                    file=sys.stderr,
                )
                return 2
            shard_policies[int(index)] = _POLICIES[policy]
    if args.shards > 1:
        if args.engine == "acheron":
            cfg = acheron_config(
                delete_persistence_threshold=args.d_th,
                pages_per_tile=args.pages_per_tile,
                **scale,
            )
        else:
            cfg = baseline_config(**scale)
        auto_split = None
        if args.defended:
            from repro.shard import AutoSplitConfig

            auto_split = AutoSplitConfig(window_ops=1024, cooldown_ops=4096)
        memory_governor = None
        if args.memory_governor:
            from repro.shard import MemoryGovernorConfig

            memory_governor = MemoryGovernorConfig(window_ops=1024)
        policy_tuner = None
        if args.policy_tuner:
            from repro.shard import PolicyTunerConfig

            policy_tuner = PolicyTunerConfig(window_ops=1024)
        engine = ShardedEngine(
            cfg,
            directory=args.directory,
            shards=args.shards,
            key_space=(0, max(args.shards, (args.preload + args.ops) * KEY_STRIDE)),
            auto_split=auto_split,
            memory_governor=memory_governor,
            shard_policies=shard_policies,
            policy_tuner=policy_tuner,
        )
    elif args.engine == "acheron":
        engine = AcheronEngine.acheron(
            delete_persistence_threshold=args.d_th,
            pages_per_tile=args.pages_per_tile,
            directory=args.directory,
            **scale,
        )
    else:
        engine = AcheronEngine.baseline(directory=args.directory, **scale)
    if args.replay:
        from repro.workload.trace import load_trace

        operations = load_trace(args.replay)
        result = run_workload(
            engine,
            operations,
            writers=args.writers,
            secondary_delete_method=args.method,
        )
    elif args.adversary:
        # Crafted streams must mirror the engine's build parameters
        # (memtable batching and filter sizing) to land their hits.
        knobs = {}
        if args.adversary in ("bloom_defeat", "empty_flood"):
            knobs["memtable_entries"] = scale["memtable_entries"]
        operations = build_adversary(
            args.adversary,
            seed=args.seed,
            preload=args.preload,
            operations=args.ops,
            **knobs,
        )
        result = run_workload(
            engine,
            operations,
            writers=args.writers,
            secondary_delete_method=args.method,
        )
    else:
        generator = WorkloadGenerator(_spec_from_args(args))
        result = run_workload(
            engine,
            generator.operations(),
            writers=args.writers,
            secondary_delete_method=args.method,
        )
    if args.shards > 1:
        engine.write_barrier()
        inspector = ShardInspector(engine, name=args.engine)
    else:
        inspector = TreeInspector(engine, name=args.engine)
    print(inspector.dashboard())
    print(
        f"\n{result.operations} ops, {result.wall_seconds:.2f}s wall, "
        f"{result.modeled_throughput_ops_per_s():,.0f} modeled ops/s"
    )
    engine.close()
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.workload.generator import generate_operations
    from repro.workload.trace import record_trace

    count = record_trace(generate_operations(_spec_from_args(args)), args.trace_path)
    print(f"recorded {count} operations to {args.trace_path}")
    return 0


def _open_readonly(directory: str):
    """Open a durable store read-only, dispatching on its layout."""
    if is_sharded_root(directory):
        return ShardedEngine(directory=directory, read_only=True)
    return AcheronEngine(config=None, directory=directory, read_only=True)


def _cmd_inspect(args: argparse.Namespace) -> int:
    engine = _open_readonly(args.directory)
    if isinstance(engine, ShardedEngine):
        print(ShardInspector(engine, name=args.directory).dashboard(per_shard=True))
    else:
        print(TreeInspector(engine, name=args.directory).dashboard())
    engine.close()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    engine = _open_readonly(args.directory)
    stats = engine.stats()
    if args.json:
        print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
    elif isinstance(engine, ShardedEngine):
        print(ShardInspector(engine, name=args.directory).dashboard())
    else:
        print(TreeInspector(engine, name=args.directory).dashboard())
    engine.close()
    return 0


def _cmd_shell(args: argparse.Namespace) -> int:
    from repro.demo.shell import DemoShell

    if args.engine == "acheron":
        engine = AcheronEngine.acheron(
            delete_persistence_threshold=args.d_th,
            directory=args.directory,
            memtable_entries=512,
            entries_per_page=32,
        )
    else:
        engine = AcheronEngine.baseline(
            directory=args.directory, memtable_entries=512, entries_per_page=32
        )
    DemoShell(engine, name=args.engine).run(sys.stdin, sys.stdout)
    engine.close()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    report = diagnose_store(args.directory)
    print(report.render())
    return 0 if report.healthy else 1


def _cmd_scrub(args: argparse.Namespace) -> int:
    report = scrub_store(args.directory)
    print(report.render())
    return 0 if report.healthy else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "workload": _cmd_workload,
        "inspect": _cmd_inspect,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
        "scrub": _cmd_scrub,
        "shell": _cmd_shell,
        "record": _cmd_record,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
