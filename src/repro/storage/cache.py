"""A shared LRU block cache.

The cache sits between the read path and the :class:`SimulatedDisk`: a hit
serves the page without charging the device; a miss charges a read and
installs the page.  Keys are ``(file_id, page_index)``.  Compaction removing
a file must call :meth:`invalidate_file` so stale pages can never be served
-- the unit tests assert this.

The T2 memory-sensitivity experiment sweeps this cache's capacity.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable


class BlockCache:
    """Fixed-capacity LRU of decoded pages.

    ``capacity`` is in pages; ``0`` disables caching (every lookup misses
    and nothing is stored), which lets callers keep a single code path.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._pages: OrderedDict[tuple[Hashable, int], Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def get(self, file_id: Hashable, page_index: int) -> Any | None:
        """Return the cached page or None; updates recency and hit stats."""
        if self.capacity == 0:
            self.misses += 1
            return None
        key = (file_id, page_index)
        page = self._pages.get(key)
        if page is None:
            self.misses += 1
            return None
        self._pages.move_to_end(key)
        self.hits += 1
        return page

    def put(self, file_id: Hashable, page_index: int, page: Any) -> None:
        """Install a page, evicting the least-recently-used as needed."""
        if self.capacity == 0:
            return
        key = (file_id, page_index)
        if key in self._pages:
            self._pages.move_to_end(key)
            self._pages[key] = page
            return
        self._pages[key] = page
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)

    def invalidate_file(self, file_id: Hashable) -> int:
        """Drop every page of ``file_id``; returns how many were dropped."""
        doomed = [key for key in self._pages if key[0] == file_id]
        for key in doomed:
            del self._pages[key]
        return len(doomed)

    def clear(self) -> None:
        self._pages.clear()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: tuple[Hashable, int]) -> bool:
        return key in self._pages

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
