"""The sharded block cache: LRU-with-admission, fully instrumented.

The cache sits between the read path and the :class:`SimulatedDisk`: a hit
serves the page without charging the device; a miss charges a read and
installs the page.  Keys are ``(file_id, page_index)`` and file ids are
**immutable** -- a file id is never reassigned to different content (the
tree advances its allocator past crash orphans on recovery), so a cached
page can only ever go stale through explicit :meth:`invalidate_file` calls,
which every structural change (compaction, secondary delete, recovery GC)
issues.  Invalidation is therefore *sticky*: an invalidated file id is
retired forever, and later :meth:`put` calls for it are refused.  This is
what keeps the cache coherent under the concurrent write path -- a reader
holding a stale published snapshot may still probe a file that compaction
just retired, and without retirement its re-insert would resurrect dead
pages after the install's invalidation sweep.

Three properties distinguish this cache from a plain LRU:

**Sharding.**  Capacity is split across power-of-two shards selected by the
key's hash.  Each shard is an independent LRU behind its own lock, so the
recency bookkeeping and eviction scans stay small even for large
capacities, and concurrent readers (or the background write path
invalidating files mid-read) contend on one shard, not one global lock.
Small caches (< ``_SHARD_THRESHOLD`` pages) keep a single shard so
eviction order stays exactly LRU -- the T2 memory-sensitivity sweep
depends on that.

**Admission.**  When a shard is full, a newcomer must *earn* its slot: its
observed miss frequency is compared against the eviction victim's (a
TinyLFU-style filter, tracked per shard with periodic halving so old
popularity decays).  One-touch pages from a long sequential scan therefore
cannot wash out a working set that misses repeatedly.  Frequencies tie in
the cold-start case (everything seen once), where admission degrades to
plain LRU.

**Pinning.**  Pages inserted with ``pinned=True`` (the tree pins level-1
pages -- the hottest, most-churned data) are passed over by the eviction
scan while any unpinned victim exists.  Filter and fence blocks never enter
the cache at all: they are always-resident in-memory metadata, the
degenerate case of pinning.

Stats (hits, misses, evictions, rejected admissions, invalidations, bytes)
are aggregated across shards and surfaced through ``repro.metrics`` and the
demo inspector.  The T2 memory-sensitivity experiment sweeps ``capacity``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

#: Below this capacity the cache keeps a single shard, preserving exact
#: global LRU order (tests and the T2 sweep rely on it for small caches).
_SHARD_THRESHOLD = 512

#: Default shard count for large caches (power of two).
_DEFAULT_SHARDS = 8

#: A shard's frequency filter is halved after this many recordings per
#: cached slot, so admission popularity decays instead of accruing forever.
_FREQ_SAMPLE_FACTOR = 16


def _default_sizer(page: Any) -> int:
    """Bytes estimate when the caller supplies none: one unit per entry."""
    try:
        return len(page)
    except TypeError:
        return 1


class _Shard:
    """One LRU segment: an OrderedDict of key -> [page, pinned, size]."""

    __slots__ = (
        "capacity",
        "lock",
        "pages",
        "freq",
        "freq_recordings",
        "freq_sample",
        "bytes",
        "hits",
        "misses",
        "evictions",
        "rejected",
        "invalidations",
        "doorkeeper",
        "doorkeeper_limit",
        "doorkeeper_rejections",
        "negative_drops",
    )

    def __init__(self, capacity: int, hardened: bool = False) -> None:
        self.capacity = capacity
        self.lock = threading.Lock()
        self.pages: OrderedDict[tuple[Hashable, int], list] = OrderedDict()
        self.freq: dict[tuple[Hashable, int], int] = {}
        self.freq_recordings = 0
        self.freq_sample = max(64, capacity * _FREQ_SAMPLE_FACTOR)
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0
        self.invalidations = 0
        #: TinyLFU doorkeeper (hardened mode only, else None): the set of
        #: keys seen missing exactly once.  A first miss lands here instead
        #: of in the frequency filter, so a flood of one-hit wonders can
        #: neither accrue admission credit nor drive the halving decay that
        #: would cool the resident hot set.  Cleared on every halving and
        #: when it outgrows its bound -- deliberately sized near the
        #: capacity (the classic W-TinyLFU shape): a flood cycling more
        #: distinct keys than ~2x capacity keeps resetting the doorkeeper
        #: before any flood key's second touch, so the flood never
        #: graduates into the frequency filter no matter how often its
        #: keys recur, while a genuinely cacheable working set (smaller
        #: than the bound) graduates on its second touch as usual.
        self.doorkeeper: set[tuple[Hashable, int]] | None = (
            set() if hardened else None
        )
        self.doorkeeper_limit = max(64, capacity * 2)
        self.doorkeeper_rejections = 0
        self.negative_drops = 0

    def record_freq(self, key: tuple[Hashable, int]) -> int:
        """Count one access for ``key``; returns its admission estimate.

        Unhardened shards record misses only (the historical behaviour).
        Hardened shards route a key's *first* miss into the doorkeeper --
        no frequency credit, no decay pressure -- so only keys seen at
        least twice ever touch the filter.
        """
        doorkeeper = self.doorkeeper
        if doorkeeper is not None and key not in doorkeeper and key not in self.freq:
            if len(doorkeeper) >= self.doorkeeper_limit:
                doorkeeper.clear()
            doorkeeper.add(key)
            return 1
        freq = self.freq
        count = freq.get(key, 0) + 1
        freq[key] = count
        self.freq_recordings += 1
        if self.freq_recordings >= self.freq_sample:
            # Age the filter: halve every count, drop the zeros.  Keeps the
            # dict bounded and lets yesterday's hot keys cool off.
            self.freq = {k: c >> 1 for k, c in freq.items() if c > 1}
            self.freq_recordings = 0
            if doorkeeper is not None:
                doorkeeper.clear()
        return count

    def estimate(self, key: tuple[Hashable, int]) -> int:
        """Admission estimate: filter count plus the doorkeeper bit."""
        count = self.freq.get(key, 0)
        doorkeeper = self.doorkeeper
        if doorkeeper is not None and key in doorkeeper:
            count += 1
        return count

    def find_victim(self) -> tuple[Hashable, int] | None:
        """The least-recently-used unpinned key (LRU pinned as last resort)."""
        first_pinned = None
        for key, entry in self.pages.items():  # iterates LRU -> MRU
            if not entry[1]:
                return key
            if first_pinned is None:
                first_pinned = key
        return first_pinned

    def evict(self, key: tuple[Hashable, int]) -> None:
        entry = self.pages.pop(key)
        self.bytes -= entry[2]
        self.evictions += 1


class BlockCache:
    """A sharded, capacity-bounded page cache (see module docstring).

    ``capacity`` is in pages; ``0`` disables caching (every lookup misses
    and nothing is stored), which lets callers keep a single code path.
    ``shards`` overrides the shard count (rounded to a power of two);
    ``sizer`` maps a page to its byte estimate for the ``bytes`` stat.

    ``hardened=True`` arms the adversarial defenses: a TinyLFU doorkeeper
    (one-hit wonders earn no admission credit and cannot decay the
    resident hot set's frequencies -- hits then also count as accesses, so
    hot pages keep their credit) and the negative-lookup guard (see
    :meth:`note_negative`).  Off by default; the unhardened paths are
    bit-identical to the historical cache.
    """

    def __init__(
        self,
        capacity: int,
        shards: int | None = None,
        sizer: Callable[[Any], int] | None = None,
        hardened: bool = False,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hardened = hardened
        if shards is None:
            shards = _DEFAULT_SHARDS if capacity >= _SHARD_THRESHOLD else 1
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        nshards = 1
        while nshards < min(shards, max(1, capacity)):
            nshards *= 2
        self._mask = nshards - 1
        base, extra = divmod(capacity, nshards) if capacity else (0, 0)
        self._shards = [
            _Shard(base + (1 if i < extra else 0), hardened=hardened)
            for i in range(nshards)
        ]
        self._sizer = sizer or _default_sizer
        #: File ids whose pages have been invalidated.  Ids are never
        #: reused, so retirement is permanent and the set only grows by
        #: one small int per dead file.  Reads are GIL-atomic; writers
        #: add before sweeping the shards (see invalidate_file).
        self._retired: set[Hashable] = set()
        #: Serializes live resizes (the memory governor may run from any
        #: caller thread); counts completed ones for observability.
        self._resize_lock = threading.Lock()
        self.resizes = 0

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def get(self, file_id: Hashable, page_index: int) -> Any | None:
        """Return the cached page or None; updates recency and hit stats."""
        key = (file_id, page_index)
        shard = self._shards[hash(key) & self._mask]
        with shard.lock:
            entry = shard.pages.get(key)
            if entry is None:
                shard.misses += 1
                if self.capacity:
                    shard.record_freq(key)
                return None
            shard.pages.move_to_end(key)
            shard.hits += 1
            if shard.doorkeeper is not None:
                # Hardened: hits are accesses too, so a resident hot page
                # keeps (and renews) its admission credit instead of
                # looking cold just because it stopped missing.
                shard.record_freq(key)
            return entry[0]

    def put(
        self,
        file_id: Hashable,
        page_index: int,
        page: Any,
        pinned: bool = False,
    ) -> bool:
        """Install a page; returns False when admission rejected it.

        Pinned pages bypass admission.  An existing entry is refreshed in
        place (value, size, recency; a pinned insert keeps a page pinned).
        A retired file id (see :meth:`invalidate_file`) is always refused.
        """
        if self.capacity == 0 or file_id in self._retired:
            return False
        key = (file_id, page_index)
        shard = self._shards[hash(key) & self._mask]
        size = self._sizer(page)
        with shard.lock:
            # Re-check under the shard lock: invalidate_file adds to the
            # retired set *before* sweeping, so an insert racing with the
            # sweep cannot slip a dead page back in.
            if file_id in self._retired:
                return False
            pages = shard.pages
            entry = pages.get(key)
            if entry is not None:
                shard.bytes += size - entry[2]
                entry[0] = page
                entry[1] = entry[1] or pinned
                entry[2] = size
                pages.move_to_end(key)
                return True
            hardened = shard.doorkeeper is not None
            while len(pages) >= shard.capacity:
                victim = shard.find_victim()
                if victim is None:  # capacity 0 shard: nothing fits
                    shard.rejected += 1
                    return False
                if not pinned:
                    if hardened:
                        if shard.estimate(key) < shard.estimate(victim):
                            # The newcomer is colder than what it would
                            # displace; a doorkeeper-only newcomer (never
                            # seen twice) is the signature of a one-hit-
                            # wonder flood.
                            shard.rejected += 1
                            if key not in shard.freq:
                                shard.doorkeeper_rejections += 1
                            return False
                    elif shard.freq.get(key, 1) < shard.freq.get(victim, 1):
                        # The newcomer is colder than what it would displace.
                        shard.rejected += 1
                        return False
                shard.evict(victim)
            pages[key] = [page, pinned, size]
            shard.bytes += size
            return True

    def note_negative(self, file_id: Hashable, page_index: int) -> bool:
        """Drop a page just admitted to answer a *negative* lookup.

        The read path calls this when a page it cached on a miss turned
        out not to hold the probed key -- i.e. the page read was caused by
        a bloom false positive.  An empty-point-query flood manufactures
        exactly such reads; without the guard each one evicts a genuinely
        hot page to cache a page nobody asked for.  Hardened caches drop
        the page (unpinned entries only) and count the drop; unhardened
        caches do nothing, preserving historical behaviour bit for bit.
        """
        if not self.hardened:
            return False
        key = (file_id, page_index)
        shard = self._shards[hash(key) & self._mask]
        with shard.lock:
            entry = shard.pages.get(key)
            if entry is None or entry[1]:  # absent, or pinned (level 1)
                return False
            shard.pages.pop(key)
            shard.bytes -= entry[2]
            shard.negative_drops += 1
        return True

    def invalidate_file(self, file_id: Hashable) -> int:
        """Drop every page of ``file_id``; returns how many were dropped.

        Also retires the id permanently: file ids are never reused, so an
        invalidated file is dead and future :meth:`put` calls for it are
        refused (stale-snapshot readers cannot resurrect its pages).
        """
        self._retired.add(file_id)
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                doomed = [key for key in shard.pages if key[0] == file_id]
                for key in doomed:
                    entry = shard.pages.pop(key)
                    shard.bytes -= entry[2]
                    shard.freq.pop(key, None)
                shard.invalidations += len(doomed)
                dropped += len(doomed)
        return dropped

    def resize(self, capacity: int) -> int:
        """Retarget the cache to ``capacity`` pages, live; returns drops.

        The shard layout is *recomputed* with the same rule as
        ``__init__`` -- a cache resized across ``_SHARD_THRESHOLD`` picks
        up the layout its new size would have been built with instead of
        keeping a stale split.  Resident pages migrate oldest-first
        (interleaved across the old shards), so inserting them in order
        rebuilds each new shard's LRU recency and, when shrinking, the
        coldest pages are the ones squeezed out.  Admission-filter counts
        and the doorkeeper follow their keys; cumulative counters are
        folded into the new shard 0 so every aggregate stat stays
        monotonic across a resize.

        Safe under concurrent lock-free readers without a global lock:
        ``get``/``put`` evaluate ``self._shards[...] & self._mask`` by
        loading ``_shards`` *before* ``_mask``, so the two attributes are
        published in whichever order keeps any interleaved (shards, mask)
        pair in bounds -- mask first when the shard count shrinks (an old
        array indexed by the new, smaller mask), array first when it
        grows (a new array indexed by the old, smaller mask).  A racing
        ``put`` into a just-retired old shard is lost, which for a cache
        is a benign miss later.  Pages of files invalidated mid-migration
        are re-swept after publication, preserving sticky retirement.
        """
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        with self._resize_lock:
            if capacity == self.capacity:
                return 0
            shards = _DEFAULT_SHARDS if capacity >= _SHARD_THRESHOLD else 1
            nshards = 1
            while nshards < min(shards, max(1, capacity)):
                nshards *= 2
            new_mask = nshards - 1
            base, extra = divmod(capacity, nshards) if capacity else (0, 0)
            new_shards = [
                _Shard(base + (1 if i < extra else 0), hardened=self.hardened)
                for i in range(nshards)
            ]
            old_shards = self._shards
            carry = new_shards[0]
            snapshots: list[list[tuple[tuple[Hashable, int], list]]] = []
            for old in old_shards:
                with old.lock:
                    snapshots.append([(k, list(v)) for k, v in old.pages.items()])
                    for key, count in old.freq.items():
                        target = new_shards[hash(key) & new_mask]
                        target.freq[key] = target.freq.get(key, 0) + count
                    if old.doorkeeper:
                        for key in old.doorkeeper:
                            target = new_shards[hash(key) & new_mask]
                            dk = target.doorkeeper
                            if dk is not None and len(dk) < target.doorkeeper_limit:
                                dk.add(key)
                    carry.hits += old.hits
                    carry.misses += old.misses
                    carry.evictions += old.evictions
                    carry.rejected += old.rejected
                    carry.invalidations += old.invalidations
                    carry.doorkeeper_rejections += old.doorkeeper_rejections
                    carry.negative_drops += old.negative_drops
            dropped = 0
            # Oldest-first interleave: position 0 of every old shard, then
            # position 1, ...  Later (more recent) inserts evict earlier
            # (older) ones, so recency survives the re-shard.
            depth = max((len(s) for s in snapshots), default=0)
            for pos in range(depth):
                for snap in snapshots:
                    if pos >= len(snap):
                        continue
                    key, entry = snap[pos]
                    if key[0] in self._retired:
                        dropped += 1
                        continue
                    target = new_shards[hash(key) & new_mask]
                    while len(target.pages) >= target.capacity:
                        victim = target.find_victim()
                        if victim is None:
                            break
                        target.evict(victim)
                        dropped += 1
                    if len(target.pages) >= target.capacity:  # capacity 0
                        dropped += 1
                        continue
                    target.pages[key] = entry
                    target.bytes += entry[2]
            if capacity > self.capacity:
                self._shards = new_shards
                self._mask = new_mask
            else:
                self._mask = new_mask
                self._shards = new_shards
            self.capacity = capacity
            # Re-sweep: a file invalidated while we migrated had its add
            # to _retired published before its sweep; our copies may have
            # dodged that sweep, so drop them now that we're published.
            for shard in new_shards:
                with shard.lock:
                    doomed = [k for k in shard.pages if k[0] in self._retired]
                    for key in doomed:
                        entry = shard.pages.pop(key)
                        shard.bytes -= entry[2]
                        shard.freq.pop(key, None)
                        shard.invalidations += 1
                        dropped += 1
            self.resizes += 1
            return dropped

    def clear(self) -> None:
        """Drop every cached page (stats are preserved; see reset_stats)."""
        for shard in self._shards:
            with shard.lock:
                shard.pages.clear()
                shard.freq.clear()
                shard.freq_recordings = 0
                shard.bytes = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard.pages) for shard in self._shards)

    def __contains__(self, key: tuple[Hashable, int]) -> bool:
        return key in self._shards[hash(key) & self._mask].pages

    def __iter__(self):
        """All cached keys (inspection / coherence tests only)."""
        for shard in self._shards:
            with shard.lock:
                keys = list(shard.pages)
            yield from keys

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self._shards)

    @property
    def rejected_admissions(self) -> int:
        return sum(shard.rejected for shard in self._shards)

    @property
    def invalidations(self) -> int:
        return sum(shard.invalidations for shard in self._shards)

    @property
    def doorkeeper_rejections(self) -> int:
        return sum(shard.doorkeeper_rejections for shard in self._shards)

    @property
    def negative_guard_drops(self) -> int:
        return sum(shard.negative_drops for shard in self._shards)

    @property
    def bytes_cached(self) -> int:
        return sum(shard.bytes for shard in self._shards)

    @property
    def pinned_count(self) -> int:
        count = 0
        for shard in self._shards:
            with shard.lock:
                count += sum(1 for entry in shard.pages.values() if entry[1])
        return count

    @property
    def hit_rate(self) -> float:
        hits = self.hits
        total = hits + self.misses
        return hits / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        """One JSON-safe snapshot of every counter (the ``cache`` section)."""
        hits = self.hits
        misses = self.misses
        return {
            "capacity_pages": self.capacity,
            "shards": len(self._shards),
            "cached_pages": len(self),
            "pinned_pages": self.pinned_count,
            "bytes": self.bytes_cached,
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "evictions": self.evictions,
            "rejected_admissions": self.rejected_admissions,
            "invalidations": self.invalidations,
            # Hardening counters are always present (zero when the
            # defenses are off) so JSON round-trips and cross-shard stat
            # merges never branch on the mode.
            "hardened": self.hardened,
            "doorkeeper_rejections": self.doorkeeper_rejections,
            "negative_guard_drops": self.negative_guard_drops,
        }

    def reset_stats(self) -> None:
        for shard in self._shards:
            shard.hits = 0
            shard.misses = 0
            shard.evictions = 0
            shard.rejected = 0
            shard.invalidations = 0
            shard.doorkeeper_rejections = 0
            shard.negative_drops = 0
