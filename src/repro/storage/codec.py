"""Binary serialization for entries and pages.

Used by the durable backends (:mod:`repro.storage.filestore`,
:mod:`repro.storage.wal`).  The format is deliberately simple and fully
self-describing:

* scalars are tagged (None / int64 / big-int / bytes / str) so the engine
  stays value-agnostic;
* an entry is ``kind(1) seqno(8) write_time(8) delete_key-obj key-obj
  value-obj``;
* a page is ``magic(4) count(4) crc32(4) payload`` where the CRC covers the
  payload -- decode raises :class:`~repro.errors.CorruptionError` on any
  mismatch, never returns garbage.

All integers are little-endian.  The format is versioned through the magic
number; bumping the layout means a new magic.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

from repro.errors import CorruptionError
from repro.lsm.entry import Entry, EntryKind

PAGE_MAGIC = 0x41434831  # "ACH1"

_TAG_NONE = 0
_TAG_INT64 = 1
_TAG_BIGINT = 2
_TAG_BYTES = 3
_TAG_STR = 4

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1

_u8 = struct.Struct("<B")
_i64 = struct.Struct("<q")
_u32 = struct.Struct("<I")
_page_header = struct.Struct("<III")  # magic, count, crc32


def pack_obj(obj: Any, out: bytearray) -> None:
    """Append the tagged encoding of ``obj`` (None/int/bytes/str) to ``out``."""
    if obj is None:
        out += _u8.pack(_TAG_NONE)
    elif isinstance(obj, bool):
        raise TypeError("bool keys/values are not supported; use int")
    elif isinstance(obj, int):
        if _I64_MIN <= obj <= _I64_MAX:
            out += _u8.pack(_TAG_INT64)
            out += _i64.pack(obj)
        else:
            payload = obj.to_bytes((obj.bit_length() + 8) // 8, "little", signed=True)
            out += _u8.pack(_TAG_BIGINT)
            out += _u32.pack(len(payload))
            out += payload
    elif isinstance(obj, bytes):
        out += _u8.pack(_TAG_BYTES)
        out += _u32.pack(len(obj))
        out += obj
    elif isinstance(obj, str):
        payload = obj.encode("utf-8")
        out += _u8.pack(_TAG_STR)
        out += _u32.pack(len(payload))
        out += payload
    else:
        raise TypeError(
            f"cannot serialize {type(obj).__name__}; durable engines support "
            "None, int, bytes, and str keys/values"
        )


def unpack_obj(buf: bytes, offset: int) -> tuple[Any, int]:
    """Decode one tagged object at ``offset``; returns (obj, next offset)."""
    try:
        (tag,) = _u8.unpack_from(buf, offset)
        offset += 1
        if tag == _TAG_NONE:
            return None, offset
        if tag == _TAG_INT64:
            (value,) = _i64.unpack_from(buf, offset)
            return value, offset + 8
        if tag == _TAG_BIGINT:
            (length,) = _u32.unpack_from(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise CorruptionError("truncated big-int payload")
            return int.from_bytes(payload, "little", signed=True), offset + length
        if tag == _TAG_BYTES or tag == _TAG_STR:
            (length,) = _u32.unpack_from(buf, offset)
            offset += 4
            payload = buf[offset : offset + length]
            if len(payload) != length:
                raise CorruptionError("truncated bytes/str payload")
            if tag == _TAG_STR:
                return payload.decode("utf-8"), offset + length
            return bytes(payload), offset + length
    except struct.error as exc:
        raise CorruptionError(f"truncated object at offset {offset}") from exc
    raise CorruptionError(f"unknown object tag {tag} at offset {offset}")


def encode_entry(entry: Entry, out: bytearray) -> None:
    """Append the binary form of ``entry`` to ``out``."""
    out += _u8.pack(int(entry.kind))
    out += _i64.pack(entry.seqno)
    out += _i64.pack(entry.write_time)
    pack_obj(entry.delete_key, out)
    pack_obj(entry.key, out)
    pack_obj(entry.value, out)


def decode_entry(buf: bytes, offset: int) -> tuple[Entry, int]:
    """Decode one entry at ``offset``; returns (entry, next offset)."""
    try:
        (kind_raw,) = _u8.unpack_from(buf, offset)
        offset += 1
        (seqno,) = _i64.unpack_from(buf, offset)
        offset += 8
        (write_time,) = _i64.unpack_from(buf, offset)
        offset += 8
    except struct.error as exc:
        raise CorruptionError(f"truncated entry header at offset {offset}") from exc
    try:
        kind = EntryKind(kind_raw)
    except ValueError as exc:
        raise CorruptionError(f"invalid entry kind {kind_raw}") from exc
    delete_key, offset = unpack_obj(buf, offset)
    key, offset = unpack_obj(buf, offset)
    value, offset = unpack_obj(buf, offset)
    return Entry(key, seqno, kind, value, delete_key, write_time), offset


def encode_page(entries: list[Entry]) -> bytes:
    """Serialize a page of entries with a CRC-protected header."""
    payload = bytearray()
    for entry in entries:
        encode_entry(entry, payload)
    crc = zlib.crc32(payload)
    return _page_header.pack(PAGE_MAGIC, len(entries), crc) + bytes(payload)


def decode_page(data: bytes) -> list[Entry]:
    """Deserialize a page; raises CorruptionError on any damage."""
    if len(data) < _page_header.size:
        raise CorruptionError(f"page shorter than its header ({len(data)} bytes)")
    magic, count, crc = _page_header.unpack_from(data, 0)
    if magic != PAGE_MAGIC:
        raise CorruptionError(f"bad page magic {magic:#x}")
    payload = data[_page_header.size :]
    if zlib.crc32(payload) != crc:
        raise CorruptionError("page checksum mismatch")
    entries: list[Entry] = []
    offset = 0
    for _ in range(count):
        entry, offset = decode_entry(payload, offset)
        entries.append(entry)
    if offset != len(payload):
        raise CorruptionError(f"{len(payload) - offset} trailing bytes after page payload")
    return entries
