"""Deterministic fault injection for the durable storage path.

Every durable transition in the engine -- writing an SSTable, publishing
the manifest, appending to or rotating the WAL, deleting a dead file --
passes through a named **fault point**.  A :class:`FaultInjector` can arm
a fault at any point, so tests (and the crash-matrix harness) can crash,
corrupt, or starve the engine at exactly the byte where a real system
would have been interrupted, and then assert that recovery holds.

Fault kinds
-----------

``crash``
    Raise :class:`SimulatedCrash` *before* the action happens: the
    process "dies" with nothing from this step on disk.
``torn``
    For data-bearing points: persist only the first ``at_byte`` bytes of
    the payload, then raise :class:`SimulatedCrash` -- the classic torn
    write of a power cut mid-``write()``.
``bitflip``
    Flip one bit of the payload and let the operation "succeed": silent
    media corruption, to be caught later by checksums (``doctor scrub``).
``io_error`` / ``enospc``
    Raise a *transient* :class:`OSError` (``EIO`` / ``ENOSPC``) the first
    ``times`` times the point fires, then let it succeed -- exercising the
    bounded retry-with-backoff in the storage layer.
``fsync_drop``
    Silently skip the fsync at an fsync point (a lying disk / ignored
    flush).  The simulated crash model cannot lose page-cache contents,
    so this primarily asserts the engine never *depends* on an fsync for
    logical correctness, only for real-disk durability.

All behaviour is deterministic: the only randomness (the bit chosen by
``bitflip`` when no byte index is given) comes from the injector's seed.

:class:`SimulatedCrash` deliberately does **not** derive from
:class:`~repro.errors.AcheronError`: production ``except AcheronError``
handlers must never swallow a simulated crash.
"""

from __future__ import annotations

import errno
import random
import time
from dataclasses import dataclass


class SimulatedCrash(Exception):
    """The process 'died' at a fault point; everything after is lost."""

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


#: Bounded retry for transient I/O faults: attempts and backoff schedule.
RETRY_ATTEMPTS = 5
RETRY_BASE_DELAY = 0.002
RETRY_MAX_DELAY = 0.05


def retry_transient(action, what: str):
    """Run ``action`` with bounded retry-with-backoff on :class:`OSError`.

    :class:`SimulatedCrash` is never retried -- a crash is a crash.
    Exhaustion raises :class:`~repro.errors.StorageError` chained to the
    last error, so callers see one stable exception type for a device
    that stays broken.
    """
    from repro.errors import StorageError  # local import: errors is leaf-free

    delay = RETRY_BASE_DELAY
    last: OSError | None = None
    for attempt in range(RETRY_ATTEMPTS):
        try:
            return action()
        except SimulatedCrash:
            raise
        except OSError as exc:
            last = exc
            if attempt + 1 < RETRY_ATTEMPTS:
                time.sleep(delay)
                delay = min(delay * 2, RETRY_MAX_DELAY)
    raise StorageError(f"{what} failed after {RETRY_ATTEMPTS} attempts: {last}") from last


#: Registry of every fault point the storage layer declares, name ->
#: human description.  Populated at import time by :func:`fault_point`;
#: the crash-matrix harness iterates this to get exhaustive coverage.
FAULT_POINTS: dict[str, str] = {}


def fault_point(name: str, description: str) -> str:
    """Register (idempotently) and return a fault-point name."""
    FAULT_POINTS.setdefault(name, description)
    return name


# ---------------------------------------------------------------------------
# the storage layer's fault points (one per durable transition)
# ---------------------------------------------------------------------------
SSTABLE_WRITE = fault_point("sstable.write", "writing an SSTable's temp-file bytes")
SSTABLE_FSYNC = fault_point("sstable.fsync", "fsync of the SSTable temp file")
SSTABLE_RENAME = fault_point("sstable.rename", "publishing rename of an SSTable")
SSTABLE_DIRSYNC = fault_point("sstable.dirsync", "directory fsync after SSTable rename")
SSTABLE_DELETE = fault_point("sstable.delete", "unlinking a dead SSTable")
MANIFEST_WRITE = fault_point("manifest.write", "writing the manifest's temp-file bytes")
MANIFEST_FSYNC = fault_point("manifest.fsync", "fsync of the manifest temp file")
MANIFEST_RENAME = fault_point("manifest.rename", "publishing rename of the manifest")
MANIFEST_DIRSYNC = fault_point("manifest.dirsync", "directory fsync after manifest rename")
WAL_APPEND = fault_point("wal.append", "appending a record batch to the WAL")
WAL_FSYNC = fault_point("wal.fsync", "fsync of the WAL after an append")
WAL_ROTATE_WRITE = fault_point("wal.rotate.write", "writing the fresh WAL during rotation")
WAL_ROTATE_RENAME = fault_point("wal.rotate.rename", "renaming the fresh WAL into place")
WAL_ROTATE_DIRSYNC = fault_point("wal.rotate.dirsync", "directory fsync after WAL rotation")

#: Points whose payload is a byte string (``torn`` / ``bitflip`` apply).
DATA_POINTS = frozenset(
    {SSTABLE_WRITE, MANIFEST_WRITE, WAL_APPEND, WAL_ROTATE_WRITE}
)
#: Points that are an fsync (``fsync_drop`` applies).
FSYNC_POINTS = frozenset(
    {SSTABLE_FSYNC, SSTABLE_DIRSYNC, MANIFEST_FSYNC, MANIFEST_DIRSYNC,
     WAL_FSYNC, WAL_ROTATE_DIRSYNC}
)

CRASH = "crash"
TORN = "torn"
BITFLIP = "bitflip"
IO_ERROR = "io_error"
ENOSPC = "enospc"
FSYNC_DROP = "fsync_drop"

FAULT_KINDS = (CRASH, TORN, BITFLIP, IO_ERROR, ENOSPC, FSYNC_DROP)


def kinds_for_point(point: str) -> tuple[str, ...]:
    """The fault kinds that are meaningful at ``point``."""
    kinds = [CRASH, IO_ERROR, ENOSPC]
    if point in DATA_POINTS:
        kinds += [TORN, BITFLIP]
    if point in FSYNC_POINTS:
        kinds.append(FSYNC_DROP)
    return tuple(kinds)


@dataclass
class _ArmedFault:
    kind: str
    #: Fire on the Nth visit to the point (0 = first).
    after: int = 0
    #: For transient kinds: how many visits raise before the fault clears.
    times: int = 1
    #: For ``torn``: byte offset to truncate at (None = half the payload).
    at_byte: int | None = None
    #: For ``bitflip``: byte index to corrupt (None = seeded choice).
    byte_index: int | None = None
    visits: int = 0
    remaining: int = 1

    def __post_init__(self) -> None:
        self.remaining = self.times


class FaultInjector:
    """Arms and fires faults at named points (see module docstring).

    One injector is shared by a :class:`~repro.storage.filestore.FileStore`
    and its :class:`~repro.storage.wal.WriteAheadLog`; pass it to
    ``LSMTree.open`` / ``AcheronEngine`` via the ``faults`` parameter.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._armed: dict[str, _ArmedFault] = {}
        #: point -> number of times code reached it (armed or not).
        self.visits: dict[str, int] = {}
        #: point -> number of times an armed fault actually fired.
        self.fired: dict[str, int] = {}

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(
        self,
        point: str,
        kind: str,
        *,
        after: int = 0,
        times: int = 1,
        at_byte: int | None = None,
        byte_index: int | None = None,
    ) -> None:
        """Arm one fault of ``kind`` at ``point`` (replacing any previous)."""
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        self._armed[point] = _ArmedFault(
            kind=kind, after=after, times=times, at_byte=at_byte, byte_index=byte_index
        )

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point, or every point when ``point`` is None."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def armed_kind(self, point: str) -> str | None:
        fault = self._armed.get(point)
        return fault.kind if fault is not None else None

    # ------------------------------------------------------------------
    # firing (called by the instrumented storage layer)
    # ------------------------------------------------------------------
    def _due(self, point: str) -> _ArmedFault | None:
        """Visit ``point``; return the armed fault if it should act now."""
        self.visits[point] = self.visits.get(point, 0) + 1
        fault = self._armed.get(point)
        if fault is None:
            return None
        fault.visits += 1
        if fault.visits <= fault.after:
            return None
        return fault

    def _record(self, point: str) -> None:
        self.fired[point] = self.fired.get(point, 0) + 1

    def fire(self, point: str) -> None:
        """Raise at ``point`` if a crash/transient fault is due.

        Called *before* the step's side effect: a ``crash`` here means
        nothing from this step reached the device.
        """
        fault = self._due(point)
        if fault is None:
            return
        if fault.kind == CRASH:
            self._record(point)
            raise SimulatedCrash(point)
        if fault.kind in (IO_ERROR, ENOSPC):
            if fault.remaining <= 0:
                return
            fault.remaining -= 1
            self._record(point)
            code = errno.ENOSPC if fault.kind == ENOSPC else errno.EIO
            raise OSError(code, f"injected {fault.kind} at {point}")
        # torn / bitflip / fsync_drop act through mangle()/allows_fsync().

    def mangle(self, point: str, data: bytes) -> tuple[bytes, bool]:
        """Apply a data fault to ``data`` at a data-bearing point.

        Returns ``(payload_to_write, crash_after_write)``: the caller
        must persist the returned payload and, when the flag is set,
        raise :class:`SimulatedCrash` *after* the partial write -- that
        ordering is what makes the write torn rather than absent.
        """
        fault = self._armed.get(point)
        if fault is None or fault.kind not in (TORN, BITFLIP):
            return data, False
        # fire() already counted this visit; mirror its `after` window.
        if fault.visits <= fault.after:
            return data, False
        if fault.kind == TORN:
            self._record(point)
            cut = fault.at_byte if fault.at_byte is not None else max(1, len(data) // 2)
            return data[: min(cut, len(data))], True
        # bitflip: silent corruption, the operation itself succeeds.
        if not data:
            return data, False
        self._record(point)
        index = (
            fault.byte_index
            if fault.byte_index is not None
            else self._rng.randrange(len(data))
        )
        index = min(index, len(data) - 1)
        flipped = bytearray(data)
        flipped[index] ^= 1 << self._rng.randrange(8)
        self._armed.pop(point, None)  # one flip, not one per retry
        return bytes(flipped), False

    def allows_fsync(self, point: str) -> bool:
        """False when an ``fsync_drop`` fault swallows this fsync."""
        fault = self._armed.get(point)
        if fault is None or fault.kind != FSYNC_DROP:
            return True
        self._record(point)
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def fired_count(self, point: str | None = None) -> int:
        if point is not None:
            return self.fired.get(point, 0)
        return sum(self.fired.values())
