"""Write-ahead log for the memtable.

Every ingest (put or tombstone) is appended here before it enters the
memtable; a flush that persists the buffer truncates the log.  On restart,
:meth:`WriteAheadLog.replay` yields the surviving entries in append order so
the engine can rebuild the exact buffer state.

Framing is ``length(4) crc32(4) payload`` per record.  Replay stops cleanly
at the first torn or corrupt record (the normal crash shape: a partial final
append) but raises :class:`~repro.errors.CorruptionError` if damage is
found *before* the tail, since that indicates real corruption rather than a
crash mid-write.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

from repro.errors import CorruptionError, WALError
from repro.lsm.entry import Entry
from repro.storage.codec import decode_entry, encode_entry

_frame = struct.Struct("<II")  # payload length, crc32


class WriteAheadLog:
    """An append-only, checksummed journal of entries."""

    def __init__(self, path: str | Path, sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")
        self.records_appended = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, entry: Entry) -> None:
        """Durably append one entry."""
        if self._fh.closed:
            raise WALError(f"WAL {self.path} is closed")
        payload = bytearray()
        encode_entry(entry, payload)
        self._fh.write(_frame.pack(len(payload), zlib.crc32(payload)))
        self._fh.write(payload)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self.records_appended += 1

    def append_many(self, entries: list[Entry]) -> None:
        """Append a batch of entries with one write, flush, and (optional)
        fsync -- the record framing is identical to per-entry appends, so
        replay cannot tell the difference."""
        if not entries:
            return
        if self._fh.closed:
            raise WALError(f"WAL {self.path} is closed")
        buffer = bytearray()
        for entry in entries:
            payload = bytearray()
            encode_entry(entry, payload)
            buffer += _frame.pack(len(payload), zlib.crc32(payload))
            buffer += payload
        self._fh.write(buffer)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self.records_appended += len(entries)

    def truncate(self) -> None:
        """Discard all records (called after the memtable is persisted)."""
        if self._fh.closed:
            raise WALError(f"WAL {self.path} is closed")
        self._fh.truncate(0)
        self._fh.seek(0)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: str | Path) -> Iterator[Entry]:
        """Yield surviving entries from ``path`` in append order.

        A torn final record (crash mid-append) is tolerated silently;
        corruption anywhere else raises :class:`CorruptionError`.
        """
        path = Path(path)
        if not path.exists():
            return
        data = path.read_bytes()
        offset = 0
        total = len(data)
        while offset < total:
            header = data[offset : offset + _frame.size]
            if len(header) < _frame.size:
                return  # torn tail: header itself is partial
            length, crc = _frame.unpack(header)
            start = offset + _frame.size
            payload = data[start : start + length]
            if len(payload) < length:
                return  # torn tail: payload is partial
            if zlib.crc32(payload) != crc:
                if start + length >= total:
                    return  # corrupt final record: treat as torn tail
                raise CorruptionError(f"WAL record at offset {offset} fails its checksum")
            entry, consumed = decode_entry(payload, 0)
            if consumed != length:
                raise CorruptionError(f"WAL record at offset {offset} has trailing bytes")
            yield entry
            offset = start + length
