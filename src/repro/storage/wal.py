"""Write-ahead log for the memtable.

Every ingest (put or tombstone) is appended here before it enters the
memtable; after a flush has *published* the buffer (files fsynced, manifest
swapped) the log is rotated.  On restart, :meth:`WriteAheadLog.replay`
yields the surviving entries in append order so the engine can rebuild the
exact buffer state.

Framing is ``length(4) crc32(4) payload`` per record.  Replay stops cleanly
at the first torn or corrupt record (the normal crash shape: a partial final
append) but raises :class:`~repro.errors.CorruptionError` if damage is
found *before* the tail, since that indicates real corruption rather than a
crash mid-write.

Rotation is crash-safe: a fresh empty log is written beside the old one and
atomically renamed over it (fsynced when ``sync=True``), so a crash at any
instant leaves either the full old log or the fresh one -- never an
in-place half-truncated file.  The engine orders rotation strictly *after*
manifest publication; see ``DESIGN.md`` ("Durability & crash recovery").

Every durable transition passes through a named fault point (see
:mod:`repro.storage.faults`) when a :class:`FaultInjector` is attached.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

from repro.errors import CorruptionError, WALError
from repro.lsm.entry import Entry
from repro.storage import faults as fp
from repro.storage.codec import decode_entry, encode_entry
from repro.storage.faults import FaultInjector, SimulatedCrash, retry_transient

_frame = struct.Struct("<II")  # payload length, crc32


class WriteAheadLog:
    """An append-only, checksummed journal of entries."""

    def __init__(
        self,
        path: str | Path,
        sync: bool = False,
        faults: FaultInjector | None = None,
    ) -> None:
        self.path = Path(path)
        self.sync = sync
        self.faults = faults
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")
        self.records_appended = 0
        self.rotations = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _write_buffer(self, buffer: bytes) -> None:
        """Append ``buffer``, flush, and (optionally) fsync -- with fault
        points and bounded retry for transient I/O errors."""
        inj = self.faults

        def attempt() -> None:
            if inj is not None:
                inj.fire(fp.WAL_APPEND)
                payload, crash_after = inj.mangle(fp.WAL_APPEND, buffer)
                self._fh.write(payload)
                self._fh.flush()
                if crash_after:
                    raise SimulatedCrash(fp.WAL_APPEND)
            else:
                self._fh.write(buffer)
                self._fh.flush()
            if self.sync:
                if inj is not None:
                    inj.fire(fp.WAL_FSYNC)
                    if not inj.allows_fsync(fp.WAL_FSYNC):
                        return
                os.fsync(self._fh.fileno())

        retry_transient(attempt, f"appending to WAL {self.path.name}")

    def append(self, entry: Entry) -> None:
        """Durably append one entry."""
        if self._fh.closed:
            raise WALError(f"WAL {self.path} is closed")
        payload = bytearray()
        encode_entry(entry, payload)
        buffer = _frame.pack(len(payload), zlib.crc32(payload)) + bytes(payload)
        self._write_buffer(buffer)
        self.records_appended += 1

    def append_many(self, entries: list[Entry]) -> None:
        """Append a batch of entries with one write, flush, and (optional)
        fsync -- the record framing is identical to per-entry appends, so
        replay cannot tell the difference."""
        if not entries:
            return
        if self._fh.closed:
            raise WALError(f"WAL {self.path} is closed")
        buffer = bytearray()
        for entry in entries:
            payload = bytearray()
            encode_entry(entry, payload)
            buffer += _frame.pack(len(payload), zlib.crc32(payload))
            buffer += payload
        self._write_buffer(bytes(buffer))
        self.records_appended += len(entries)

    def truncate(self) -> None:
        """Discard all records via crash-safe rotation.

        A fresh empty log is written to a temp sibling and atomically
        renamed over the live one (fsync of file and directory when
        ``sync=True``).  Called only after the flushed entries have been
        published through the manifest, so a crash at any point here
        loses nothing: either the old log survives (its records replay as
        already-persisted duplicates, filtered by seqno at recovery) or
        the fresh log is in place.
        """
        self._rotate(b"")

    def rewrite(self, entries: list[Entry]) -> None:
        """Atomically replace the log's contents with ``entries``.

        Same crash-safe rotation as :meth:`truncate`, but the fresh log
        carries records: used when an operation removes entries from the
        memtable *without* flushing (a secondary range delete), where the
        old log would resurrect the purged values on replay.  A crash at
        any instant leaves either the complete old log or the complete
        new one.
        """
        buffer = bytearray()
        for entry in entries:
            payload = bytearray()
            encode_entry(entry, payload)
            buffer += _frame.pack(len(payload), zlib.crc32(payload))
            buffer += payload
        self._rotate(bytes(buffer))
        self.records_appended += len(entries)

    def _rotate(self, contents: bytes) -> None:
        if self._fh.closed:
            raise WALError(f"WAL {self.path} is closed")
        inj = self.faults
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")  # wal.log.tmp

        def attempt() -> None:
            if inj is not None:
                inj.fire(fp.WAL_ROTATE_WRITE)
                payload, crash_after = inj.mangle(fp.WAL_ROTATE_WRITE, contents)
                tmp.write_bytes(payload)
                if crash_after:
                    raise SimulatedCrash(fp.WAL_ROTATE_WRITE)
            else:
                tmp.write_bytes(contents)
            if self.sync:
                fd = os.open(tmp, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            if inj is not None:
                inj.fire(fp.WAL_ROTATE_RENAME)
            os.replace(tmp, self.path)
            if self.sync:
                if inj is not None:
                    inj.fire(fp.WAL_ROTATE_DIRSYNC)
                    if not inj.allows_fsync(fp.WAL_ROTATE_DIRSYNC):
                        return
                try:
                    fd = os.open(self.path.parent, os.O_RDONLY)
                except OSError:  # pragma: no cover - platform without dir-open
                    return
                try:
                    os.fsync(fd)
                except OSError:  # pragma: no cover - platform without dir-fsync
                    pass
                finally:
                    os.close(fd)

        retry_transient(attempt, f"rotating WAL {self.path.name}")
        # The live path now names the fresh inode; swap the append handle.
        old = self._fh
        self._fh = open(self.path, "ab")
        old.close()
        self.rotations += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: str | Path) -> Iterator[Entry]:
        """Yield surviving entries from ``path`` in append order.

        A torn final record (crash mid-append) is tolerated silently;
        corruption anywhere else raises :class:`CorruptionError`.
        """
        path = Path(path)
        if not path.exists():
            return
        data = path.read_bytes()
        offset = 0
        total = len(data)
        while offset < total:
            header = data[offset : offset + _frame.size]
            if len(header) < _frame.size:
                return  # torn tail: header itself is partial
            length, crc = _frame.unpack(header)
            start = offset + _frame.size
            payload = data[start : start + length]
            if len(payload) < length:
                return  # torn tail: payload is partial
            if zlib.crc32(payload) != crc:
                if start + length >= total:
                    return  # corrupt final record: treat as torn tail
                raise CorruptionError(f"WAL record at offset {offset} fails its checksum")
            entry, consumed = decode_entry(payload, 0)
            if consumed != length:
                raise CorruptionError(f"WAL record at offset {offset} has trailing bytes")
            yield entry
            offset = start + length
