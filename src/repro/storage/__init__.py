"""Storage substrate: simulated block device, cache, codecs, WAL, files.

The paper's evaluation ran on real SSDs; this reproduction replaces the
device with :class:`SimulatedDisk`, a page-granular accountant that counts
every read/write and prices it with a latency model.  All experiment tables
lead with these device I/O counts (see DESIGN.md, substitution table).

Durability is real, not simulated: :class:`FileStore` serializes runs with a
checksummed binary codec and :class:`WriteAheadLog` journals the buffer, so
an engine opened on an existing directory recovers its exact state.
"""

from repro.storage.cache import BlockCache
from repro.storage.disk import IOStats, SimulatedDisk
from repro.storage.faults import FaultInjector, SimulatedCrash
from repro.storage.filestore import FileStore
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BlockCache",
    "IOStats",
    "SimulatedDisk",
    "FaultInjector",
    "SimulatedCrash",
    "FileStore",
    "WriteAheadLog",
]
