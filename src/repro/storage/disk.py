"""The simulated block device.

Why simulate: the calibration note for this reproduction flags Python
wall-clock I/O evaluation as unconvincing, and it is right -- interpreter
overhead would swamp device behaviour.  But every claim in the paper
(write amplification, space amplification, lookup cost, delete persistence)
is fundamentally a statement about *how many pages move*, not about a
particular SSD.  So the engine routes every page access through this class,
which counts requests and pages per category and prices them with the
:class:`~repro.config.DiskModel`.  Benchmark tables report the counts first
and the modeled microseconds second.

Categories let the metrics layer decompose amplification the way the paper
does: ``flush`` and ``compaction`` writes make up write amplification;
``query`` reads make up lookup cost; ``secondary_delete`` isolates the cost
of KiWi range deletes vs the baseline's full-tree rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import DiskModel

#: Well-known I/O categories.  The disk accepts arbitrary strings, but the
#: engine only ever uses these; metrics code groups on them.
CATEGORY_FLUSH = "flush"
CATEGORY_COMPACTION = "compaction"
CATEGORY_QUERY = "query"
CATEGORY_SECONDARY_DELETE = "secondary_delete"
CATEGORY_WAL = "wal"


@dataclass
class IOStats:
    """A snapshot of device activity.

    ``reads_by_category`` / ``writes_by_category`` map category name to
    pages moved.  ``modeled_us`` is total modeled device time.
    """

    pages_read: int = 0
    pages_written: int = 0
    read_requests: int = 0
    write_requests: int = 0
    modeled_us: float = 0.0
    reads_by_category: dict[str, int] = field(default_factory=dict)
    writes_by_category: dict[str, int] = field(default_factory=dict)

    def copy(self) -> "IOStats":
        return IOStats(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            read_requests=self.read_requests,
            write_requests=self.write_requests,
            modeled_us=self.modeled_us,
            reads_by_category=dict(self.reads_by_category),
            writes_by_category=dict(self.writes_by_category),
        )

    def minus(self, earlier: "IOStats") -> "IOStats":
        """Activity that happened after ``earlier`` was snapshotted."""
        delta = IOStats(
            pages_read=self.pages_read - earlier.pages_read,
            pages_written=self.pages_written - earlier.pages_written,
            read_requests=self.read_requests - earlier.read_requests,
            write_requests=self.write_requests - earlier.write_requests,
            modeled_us=self.modeled_us - earlier.modeled_us,
        )
        for cat, pages in self.reads_by_category.items():
            diff = pages - earlier.reads_by_category.get(cat, 0)
            if diff:
                delta.reads_by_category[cat] = diff
        for cat, pages in self.writes_by_category.items():
            diff = pages - earlier.writes_by_category.get(cat, 0)
            if diff:
                delta.writes_by_category[cat] = diff
        return delta

    @property
    def total_pages(self) -> int:
        return self.pages_read + self.pages_written

    def __str__(self) -> str:
        return (
            f"IOStats(read={self.pages_read}p/{self.read_requests}req, "
            f"write={self.pages_written}p/{self.write_requests}req, "
            f"modeled={self.modeled_us / 1000.0:.2f}ms)"
        )


class SimulatedDisk:
    """Counts and prices page I/O; the only 'device' the engine sees."""

    def __init__(self, model: DiskModel | None = None) -> None:
        self.model = model or DiskModel()
        self._stats = IOStats()
        self._lock = None

    def make_thread_safe(self) -> None:
        """Arm a counter lock for concurrent flush/compaction workers.

        Serial trees never call this, so the hot charging paths keep a
        single ``is None`` test and no lock traffic (the read path's
        per-miss charge is benchmark-gated).
        """
        if self._lock is None:
            import threading

            self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def read_pages(self, count: int, category: str = CATEGORY_QUERY) -> float:
        """Charge a read of ``count`` pages; returns modeled microseconds."""
        if count < 0:
            raise ValueError(f"cannot read a negative page count ({count})")
        if count == 0:
            return 0.0
        cost = self.model.request_overhead_us + count * self.model.read_page_us
        lock = self._lock
        if lock is not None:
            with lock:
                stats = self._stats
                stats.pages_read += count
                stats.read_requests += 1
                stats.modeled_us += cost
                stats.reads_by_category[category] = (
                    stats.reads_by_category.get(category, 0) + count
                )
            return cost
        stats = self._stats
        stats.pages_read += count
        stats.read_requests += 1
        stats.modeled_us += cost
        stats.reads_by_category[category] = stats.reads_by_category.get(category, 0) + count
        return cost

    def write_pages(self, count: int, category: str = CATEGORY_FLUSH) -> float:
        """Charge a write of ``count`` pages; returns modeled microseconds."""
        if count < 0:
            raise ValueError(f"cannot write a negative page count ({count})")
        if count == 0:
            return 0.0
        cost = self.model.request_overhead_us + count * self.model.write_page_us
        lock = self._lock
        if lock is not None:
            with lock:
                stats = self._stats
                stats.pages_written += count
                stats.write_requests += 1
                stats.modeled_us += cost
                stats.writes_by_category[category] = (
                    stats.writes_by_category.get(category, 0) + count
                )
            return cost
        stats = self._stats
        stats.pages_written += count
        stats.write_requests += 1
        stats.modeled_us += cost
        stats.writes_by_category[category] = stats.writes_by_category.get(category, 0) + count
        return cost

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def snapshot(self) -> IOStats:
        """An immutable copy of the counters so far."""
        return self._stats.copy()

    def delta_since(self, snapshot: IOStats) -> IOStats:
        """Activity since ``snapshot`` was taken."""
        return self._stats.minus(snapshot)

    def reset(self) -> None:
        """Zero all counters (benchmark warm-up support)."""
        self._stats = IOStats()

    @property
    def stats(self) -> IOStats:
        """Live view of the counters (do not mutate)."""
        return self._stats
