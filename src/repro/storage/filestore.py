"""Durable storage for runs and the manifest.

The engine can run fully in memory (the benchmark mode: the simulated disk
does the accounting) or durably against a directory.  In durable mode each
file (SSTable) is serialized here and the level structure is recorded in a
JSON manifest, both published with full crash-safety discipline:

1. the payload is written to a ``*.tmp`` sibling;
2. the temp file is fsynced (its bytes are on the device);
3. ``os.replace`` atomically renames it into place;
4. the parent directory is fsynced (the *name* is on the device).

A crash at any point leaves either the old file or the new file -- never a
torn half of each -- and a leftover ``*.tmp`` that startup sweeps away.
Transient I/O errors (``EIO``/``ENOSPC``) are absorbed by a bounded
retry-with-backoff; exhaustion surfaces as :class:`StorageError`.

SSTable file format::

    magic(4) meta_len(4) meta_json
    tile_count(4) [pages_in_tile(4) ...]
    page_count(4) [page_len(4) page_bytes ...]
    crc32(4)                       # over every preceding byte

Pages are the CRC-protected blocks of :mod:`repro.storage.codec`; tile
boundaries preserve the KiWi layout across restarts.  The trailing whole-file
checksum catches corruption in the regions page CRCs cannot see (the header
and tile directory); ``doctor scrub`` re-verifies it offline.

The manifest carries an integrity envelope: a monotonically increasing
``epoch`` (incremented on every publish) and a ``crc`` over its canonical
JSON.  :meth:`read_manifest` verifies and strips the envelope, exposing the
epoch via :attr:`FileStore.manifest_epoch`; corruption raises
:class:`CorruptionError` naming the epoch when one can be recovered.

Every durable transition passes through a named fault point (see
:mod:`repro.storage.faults`), so tests can interrupt or corrupt each step
deterministically.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from pathlib import Path

from repro.errors import CorruptionError, StorageError
from repro.lsm.entry import Entry
from repro.storage import faults as fp
from repro.storage.codec import decode_page, encode_page
from repro.storage.faults import FaultInjector, SimulatedCrash, retry_transient

SSTABLE_MAGIC = 0x41434832  # "ACH2"
MANIFEST_NAME = "MANIFEST.json"

_u32 = struct.Struct("<I")
_epoch_re = re.compile(r'"epoch":\s*(\d+)')


class FileStore:
    """Reads and writes SSTable files and the manifest in one directory."""

    def __init__(self, directory: str | Path, faults: FaultInjector | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Optional fault injector; when set, every durable transition
        #: consults it (see :mod:`repro.storage.faults`).
        self.faults = faults
        #: Epoch of the most recently read or written manifest (None until
        #: either happens).
        self.manifest_epoch: int | None = None

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def sstable_path(self, file_id: int) -> Path:
        return self.directory / f"sst-{file_id:08d}.ach"

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def wal_path(self) -> Path:
        return self.directory / "wal.log"

    # ------------------------------------------------------------------
    # crash-safety primitives
    # ------------------------------------------------------------------
    def _retry(self, action, what: str):
        """Bounded retry-with-backoff (see :func:`retry_transient`)."""
        return retry_transient(action, what)

    def _write_payload(self, tmp: Path, data: bytes, point: str) -> None:
        inj = self.faults
        if inj is None:
            tmp.write_bytes(data)
            return
        inj.fire(point)
        payload, crash_after = inj.mangle(point, data)
        tmp.write_bytes(payload)
        if crash_after:
            raise SimulatedCrash(point)

    def _fsync_file(self, path: Path, point: str) -> None:
        inj = self.faults
        if inj is not None:
            inj.fire(point)
            if not inj.allows_fsync(point):
                return
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _fsync_directory(self, point: str) -> None:
        inj = self.faults
        if inj is not None:
            inj.fire(point)
            if not inj.allows_fsync(point):
                return
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform without dir-fsync
            pass
        finally:
            os.close(fd)

    def _publish(
        self,
        path: Path,
        data: bytes,
        write_point: str,
        fsync_point: str,
        rename_point: str,
        dirsync_point: str,
    ) -> None:
        """fsync-then-rename publication of ``data`` at ``path``."""
        tmp = path.with_suffix(".tmp")

        def attempt() -> None:
            self._write_payload(tmp, data, write_point)
            self._fsync_file(tmp, fsync_point)
            if self.faults is not None:
                self.faults.fire(rename_point)
            os.replace(tmp, path)
            self._fsync_directory(dirsync_point)

        self._retry(attempt, f"publishing {path.name}")

    def temp_files(self) -> list[Path]:
        """Leftover ``*.tmp`` siblings from interrupted publications."""
        return sorted(self.directory.glob("*.tmp"))

    def clean_temp_files(self) -> list[str]:
        """Remove orphaned temp files (startup hygiene); returns their names."""
        removed = []
        for tmp in self.temp_files():
            self._retry(lambda t=tmp: t.unlink(missing_ok=True), f"removing {tmp.name}")
            removed.append(tmp.name)
        return removed

    # ------------------------------------------------------------------
    # sstables
    # ------------------------------------------------------------------
    def write_sstable(
        self,
        file_id: int,
        tiles: list[list[list[Entry]]],
        meta: dict | None = None,
    ) -> int:
        """Persist one SSTable (a list of delete tiles, each a list of
        pages) with full crash-safety discipline; returns its checksum."""
        buf = bytearray()
        meta_json = json.dumps(meta or {}).encode("utf-8")
        buf += _u32.pack(SSTABLE_MAGIC)
        buf += _u32.pack(len(meta_json))
        buf += meta_json
        buf += _u32.pack(len(tiles))
        pages: list[list[Entry]] = []
        for tile in tiles:
            buf += _u32.pack(len(tile))
            pages.extend(tile)
        buf += _u32.pack(len(pages))
        for page in pages:
            blob = encode_page(page)
            buf += _u32.pack(len(blob))
            buf += blob
        checksum = zlib.crc32(bytes(buf))
        buf += _u32.pack(checksum)
        self._publish(
            self.sstable_path(file_id),
            bytes(buf),
            fp.SSTABLE_WRITE,
            fp.SSTABLE_FSYNC,
            fp.SSTABLE_RENAME,
            fp.SSTABLE_DIRSYNC,
        )
        return checksum

    def read_sstable(self, file_id: int) -> tuple[list[list[list[Entry]]], dict]:
        """Load one SSTable; returns (tiles, meta).

        Raises :class:`CorruptionError` on any damage: a failed whole-file
        checksum, a bad magic, torn framing, or a page CRC mismatch.
        """
        path = self.sstable_path(file_id)
        if not path.exists():
            raise StorageError(f"sstable {file_id} not found at {path}")
        data = path.read_bytes()
        # Whole-file footer checksum (absent only in pre-footer files,
        # whose framing is still fully self-terminating).
        body = data
        if len(data) >= 8:
            (footer,) = _u32.unpack_from(data, len(data) - 4)
            if zlib.crc32(data[:-4]) == footer:
                body = data[:-4]
        offset = 0
        try:
            (magic,) = _u32.unpack_from(body, offset)
            offset += 4
            if magic != SSTABLE_MAGIC:
                raise CorruptionError(f"bad sstable magic {magic:#x} in {path}")
            (meta_len,) = _u32.unpack_from(body, offset)
            offset += 4
            meta = json.loads(body[offset : offset + meta_len].decode("utf-8"))
            offset += meta_len
            (tile_count,) = _u32.unpack_from(body, offset)
            offset += 4
            tile_sizes: list[int] = []
            for _ in range(tile_count):
                (size,) = _u32.unpack_from(body, offset)
                offset += 4
                tile_sizes.append(size)
            (page_count,) = _u32.unpack_from(body, offset)
            offset += 4
            pages: list[list[Entry]] = []
            for _ in range(page_count):
                (blob_len,) = _u32.unpack_from(body, offset)
                offset += 4
                pages.append(decode_page(body[offset : offset + blob_len]))
                offset += blob_len
        except struct.error as exc:
            raise CorruptionError(f"truncated sstable file {path}") from exc
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptionError(f"corrupt sstable metadata in {path}") from exc
        if offset != len(body):
            raise CorruptionError(
                f"{len(body) - offset} trailing bytes in sstable file {path}"
            )
        if sum(tile_sizes) != page_count:
            raise CorruptionError(f"tile directory of {path} does not cover its pages")
        tiles: list[list[list[Entry]]] = []
        cursor = 0
        for size in tile_sizes:
            tiles.append(pages[cursor : cursor + size])
            cursor += size
        return tiles, meta

    def checksum_sstable(self, file_id: int) -> int:
        """Verify one SSTable's whole-file checksum; returns it.

        Used by ``doctor scrub``.  Pre-footer files are fully decoded
        instead (their pages carry the only checksums they have).
        """
        path = self.sstable_path(file_id)
        if not path.exists():
            raise StorageError(f"sstable {file_id} not found at {path}")
        data = path.read_bytes()
        if len(data) >= 8:
            (footer,) = _u32.unpack_from(data, len(data) - 4)
            if zlib.crc32(data[:-4]) == footer:
                return footer
        # No (valid) footer: either corruption or a pre-footer file.
        # A full decode distinguishes the two.
        self.read_sstable(file_id)
        return zlib.crc32(data)

    def delete_sstable(self, file_id: int) -> None:
        """Remove one SSTable file (idempotent)."""
        path = self.sstable_path(file_id)

        def attempt() -> None:
            if self.faults is not None:
                self.faults.fire(fp.SSTABLE_DELETE)
            path.unlink(missing_ok=True)

        self._retry(attempt, f"deleting {path.name}")

    def list_sstable_ids(self) -> list[int]:
        """All file ids present on disk, ascending.

        Leftover ``*.tmp`` files from interrupted publications are never
        listed (the glob requires the ``.ach`` suffix); startup removes
        them via :meth:`clean_temp_files`.
        """
        ids = []
        for path in self.directory.glob("sst-*.ach"):
            stem = path.stem  # "sst-00000001"
            try:
                ids.append(int(stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(ids)

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    @staticmethod
    def _canonical_crc(payload: dict) -> int:
        return zlib.crc32(json.dumps(payload, sort_keys=True).encode("utf-8"))

    def _epoch_on_disk(self) -> int:
        """Best-effort epoch of the on-disk manifest (0 when none)."""
        try:
            text = self.manifest_path.read_text()
        except OSError:
            return 0
        match = _epoch_re.search(text)
        return int(match.group(1)) if match else 0

    def write_manifest(self, manifest: dict) -> int:
        """Atomically replace the manifest; returns the new epoch.

        The stored document is ``manifest`` plus an integrity envelope:
        ``epoch`` (monotonic publish counter) and ``crc`` (over the
        canonical JSON of everything else).
        """
        if self.manifest_epoch is None:
            self.manifest_epoch = self._epoch_on_disk()
        epoch = self.manifest_epoch + 1
        payload = dict(manifest)
        payload["epoch"] = epoch
        payload["crc"] = self._canonical_crc(payload)
        self._publish(
            self.manifest_path,
            json.dumps(payload, indent=1, sort_keys=True).encode("utf-8"),
            fp.MANIFEST_WRITE,
            fp.MANIFEST_FSYNC,
            fp.MANIFEST_RENAME,
            fp.MANIFEST_DIRSYNC,
        )
        self.manifest_epoch = epoch
        return epoch

    def read_manifest(self) -> dict | None:
        """The current manifest (envelope verified and stripped), or None
        if the store is empty.

        Raises :class:`CorruptionError` -- naming the manifest epoch when
        one is recoverable -- if the document is not valid JSON or fails
        its checksum.
        """
        if not self.manifest_path.exists():
            return None
        text = self.manifest_path.read_text()
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            epoch = self._scrape_epoch(text)
            raise CorruptionError(
                f"manifest {self.manifest_path} is not valid JSON"
                + (f" (epoch {epoch})" if epoch is not None else "")
            ) from exc
        if not isinstance(document, dict):
            raise CorruptionError(f"manifest {self.manifest_path} is not a JSON object")
        if "crc" in document:
            recorded = document.pop("crc")
            if self._canonical_crc(document) != recorded:
                epoch = document.get("epoch")
                raise CorruptionError(
                    f"manifest {self.manifest_path} fails its checksum"
                    + (f" (epoch {epoch})" if epoch is not None else "")
                )
        epoch = document.pop("epoch", None)
        if isinstance(epoch, int):
            self.manifest_epoch = epoch
        return document

    @staticmethod
    def _scrape_epoch(text: str) -> int | None:
        match = _epoch_re.search(text)
        return int(match.group(1)) if match else None

    def garbage_collect(self, live_file_ids: set[int]) -> list[int]:
        """Delete sstables not referenced by the manifest; returns their ids."""
        removed = []
        for file_id in self.list_sstable_ids():
            if file_id not in live_file_ids:
                self.delete_sstable(file_id)
                removed.append(file_id)
        return removed
