"""Durable storage for runs and the manifest.

The engine can run fully in memory (the benchmark mode: the simulated disk
does the accounting) or durably against a directory.  In durable mode each
file (SSTable) is serialized here and the level structure is recorded in a
JSON manifest written atomically (temp file + rename), so a crash between
operations is always recoverable to a consistent tree.

File format::

    magic(4) meta_len(4) meta_json
    tile_count(4) [pages_in_tile(4) ...]
    page_count(4) [page_len(4) page_bytes ...]

Pages are the CRC-protected blocks of :mod:`repro.storage.codec`; tile
boundaries preserve the KiWi layout across restarts.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path

from repro.errors import CorruptionError, StorageError
from repro.lsm.entry import Entry
from repro.storage.codec import decode_page, encode_page

SSTABLE_MAGIC = 0x41434832  # "ACH2"
MANIFEST_NAME = "MANIFEST.json"

_u32 = struct.Struct("<I")


class FileStore:
    """Reads and writes SSTable files and the manifest in one directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def sstable_path(self, file_id: int) -> Path:
        return self.directory / f"sst-{file_id:08d}.ach"

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def wal_path(self) -> Path:
        return self.directory / "wal.log"

    # ------------------------------------------------------------------
    # sstables
    # ------------------------------------------------------------------
    def write_sstable(
        self,
        file_id: int,
        tiles: list[list[list[Entry]]],
        meta: dict | None = None,
    ) -> None:
        """Persist one SSTable: a list of delete tiles, each a list of pages."""
        buf = bytearray()
        meta_json = json.dumps(meta or {}).encode("utf-8")
        buf += _u32.pack(SSTABLE_MAGIC)
        buf += _u32.pack(len(meta_json))
        buf += meta_json
        buf += _u32.pack(len(tiles))
        pages: list[list[Entry]] = []
        for tile in tiles:
            buf += _u32.pack(len(tile))
            pages.extend(tile)
        buf += _u32.pack(len(pages))
        for page in pages:
            blob = encode_page(page)
            buf += _u32.pack(len(blob))
            buf += blob
        tmp = self.sstable_path(file_id).with_suffix(".tmp")
        tmp.write_bytes(bytes(buf))
        os.replace(tmp, self.sstable_path(file_id))

    def read_sstable(self, file_id: int) -> tuple[list[list[list[Entry]]], dict]:
        """Load one SSTable; returns (tiles, meta)."""
        path = self.sstable_path(file_id)
        if not path.exists():
            raise StorageError(f"sstable {file_id} not found at {path}")
        data = path.read_bytes()
        offset = 0
        try:
            (magic,) = _u32.unpack_from(data, offset)
            offset += 4
            if magic != SSTABLE_MAGIC:
                raise CorruptionError(f"bad sstable magic {magic:#x} in {path}")
            (meta_len,) = _u32.unpack_from(data, offset)
            offset += 4
            meta = json.loads(data[offset : offset + meta_len].decode("utf-8"))
            offset += meta_len
            (tile_count,) = _u32.unpack_from(data, offset)
            offset += 4
            tile_sizes: list[int] = []
            for _ in range(tile_count):
                (size,) = _u32.unpack_from(data, offset)
                offset += 4
                tile_sizes.append(size)
            (page_count,) = _u32.unpack_from(data, offset)
            offset += 4
            pages: list[list[Entry]] = []
            for _ in range(page_count):
                (blob_len,) = _u32.unpack_from(data, offset)
                offset += 4
                pages.append(decode_page(data[offset : offset + blob_len]))
                offset += blob_len
        except struct.error as exc:
            raise CorruptionError(f"truncated sstable file {path}") from exc
        if sum(tile_sizes) != page_count:
            raise CorruptionError(f"tile directory of {path} does not cover its pages")
        tiles: list[list[list[Entry]]] = []
        cursor = 0
        for size in tile_sizes:
            tiles.append(pages[cursor : cursor + size])
            cursor += size
        return tiles, meta

    def delete_sstable(self, file_id: int) -> None:
        """Remove one SSTable file (idempotent)."""
        self.sstable_path(file_id).unlink(missing_ok=True)

    def list_sstable_ids(self) -> list[int]:
        """All file ids present on disk, ascending."""
        ids = []
        for path in self.directory.glob("sst-*.ach"):
            stem = path.stem  # "sst-00000001"
            try:
                ids.append(int(stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(ids)

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def write_manifest(self, manifest: dict) -> None:
        """Atomically replace the manifest."""
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        os.replace(tmp, self.manifest_path)

    def read_manifest(self) -> dict | None:
        """The current manifest, or None if the store is empty."""
        if not self.manifest_path.exists():
            return None
        try:
            return json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CorruptionError(f"manifest {self.manifest_path} is not valid JSON") from exc

    def garbage_collect(self, live_file_ids: set[int]) -> list[int]:
        """Delete sstables not referenced by the manifest; returns their ids."""
        removed = []
        for file_id in self.list_sstable_ids():
            if file_id not in live_file_ids:
                self.delete_sstable(file_id)
                removed.append(file_id)
        return removed
