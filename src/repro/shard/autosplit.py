"""Hot-shard auto-split: turn a write storm into a split, not a stall.

A range-partitioned deployment has a worst case the benign rebalancer
(:meth:`ShardedEngine.rebalance`, size-based) reacts to only after the
damage is done: an adversary -- or just a skewed tenant -- concentrates
*writes* on one shard, saturating its flush/compaction pipeline (PR 4's
backpressure then stalls every writer routed there) long before the shard
is large enough to look skewed by size.

The controller here watches the live signals instead:

* **write rate** -- every routed write is counted per shard; each
  ``window_ops`` writes the window is scored and reset;
* **queue depth** -- the PR 4 backpressure signal
  (``tree.write_stats()["queue_depth"]``): a shard whose flush queue is
  backed up counts as hot at half the share bar, because the storm is
  already outrunning its pipeline.

A shard that stays hot for ``hysteresis`` *consecutive* windows -- the
same shard every time -- triggers a split, after which ``cooldown_ops``
routed writes must pass before another may fire.  Hysteresis is what
makes the controller stable under alternating hot spots: a workload that
ping-pongs between two shards resets the streak on every flip and never
splits (splitting would not help -- neither shard is persistently hot).

The split itself is the existing staged, crash-recoverable protocol
(:meth:`ShardedEngine.split_shard`); the controller only decides *when*
and *which*.  Every decision (and every refusal, e.g. a one-key shard
that cannot split) is recorded in :attr:`AutoSplitController.events` for
the inspector's attack-surface section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class AutoSplitConfig:
    """Tuning knobs for the hot-shard auto-split controller."""

    #: Fraction of a window's routed writes one shard must absorb to be hot.
    hot_share: float = 0.6
    #: Routed writes per evaluation window.
    window_ops: int = 4096
    #: Windows with fewer total writes than this are ignored (a trickle
    #: concentrated on one shard is not a storm).
    min_window_ops: int = 256
    #: Consecutive hot windows (same shard) required to trigger a split.
    hysteresis: int = 3
    #: Flush-queue depth at which a shard counts hot at half the share bar.
    queue_hot_depth: int = 4
    #: Routed writes after a split before another may trigger.
    cooldown_ops: int = 16384

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_share <= 1.0:
            raise ValueError(f"hot_share must be in (0, 1], got {self.hot_share}")
        if self.window_ops < 1:
            raise ValueError(f"window_ops must be >= 1, got {self.window_ops}")
        if self.hysteresis < 1:
            raise ValueError(f"hysteresis must be >= 1, got {self.hysteresis}")


class AutoSplitController:
    """Per-window hot-shard scoring with hysteresis and cooldown."""

    def __init__(self, config: AutoSplitConfig | None = None) -> None:
        self.config = config or AutoSplitConfig()
        #: Routed writes this window, keyed by shard index.
        self.window_counts: dict[int, int] = {}
        self._window_total = 0
        #: The shard hot in every window of the current streak, or None.
        self.hot_shard: int | None = None
        self.hot_streak = 0
        #: Routed writes remaining before the cooldown lifts (0 = armed).
        self.cooldown_remaining = 0
        #: Every decision: triggered splits and refusals, JSON-safe rows.
        self.events: list[dict[str, Any]] = []
        self.windows_evaluated = 0

    # ------------------------------------------------------------------
    # signal intake
    # ------------------------------------------------------------------
    def note_writes(self, index: int, count: int = 1) -> bool:
        """Count ``count`` routed writes for shard ``index``.

        Returns True when a window boundary was crossed -- the caller
        should then ask :meth:`evaluate` for a verdict (the two steps are
        split so the engine can gather queue depths only when needed).
        """
        self.window_counts[index] = self.window_counts.get(index, 0) + count
        self._window_total += count
        if self.cooldown_remaining:
            self.cooldown_remaining = max(0, self.cooldown_remaining - count)
        return self._window_total >= self.config.window_ops

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def evaluate(self, queue_depths: dict[int, int] | None = None) -> int | None:
        """Score the closed window; return a shard index to split, or None.

        ``queue_depths`` maps shard index -> live flush-queue depth (the
        PR 4 backpressure counter); a backed-up shard is held to half the
        share bar.  The window counters are reset either way.
        """
        cfg = self.config
        counts, self.window_counts = self.window_counts, {}
        total, self._window_total = self._window_total, 0
        self.windows_evaluated += 1
        if total < cfg.min_window_ops or not counts:
            # Too little signal to call anything hot; a genuine storm
            # refills the window immediately, so the streak survives.
            return None
        worst = max(counts, key=counts.get)
        share = counts[worst] / total
        depth = (queue_depths or {}).get(worst, 0)
        bar = cfg.hot_share / 2 if depth >= cfg.queue_hot_depth else cfg.hot_share
        if share < bar:
            self.hot_shard = None
            self.hot_streak = 0
            return None
        if worst == self.hot_shard:
            self.hot_streak += 1
        else:
            # A different shard is hot now: the streak restarts.  This is
            # the hysteresis that keeps alternating hot spots from ever
            # triggering (neither shard is *persistently* hot).
            self.hot_shard = worst
            self.hot_streak = 1
        if self.hot_streak < cfg.hysteresis or self.cooldown_remaining:
            return None
        return worst

    # ------------------------------------------------------------------
    # outcomes
    # ------------------------------------------------------------------
    def record_split(self, index: int, tick: int, share: float | None = None) -> None:
        """A split fired for shard ``index``: log it, reset, start cooldown."""
        self.events.append(
            {
                "event": "split",
                "shard": index,
                "tick": tick,
                "streak": self.hot_streak,
                "share": share,
            }
        )
        self._reset_after_decision()

    def record_refusal(self, index: int, tick: int, reason: str) -> None:
        """A triggered split could not run (e.g. too few distinct keys)."""
        self.events.append(
            {"event": "refused", "shard": index, "tick": tick, "reason": reason}
        )
        # Cooldown applies to refusals too, or an unsplittable hot shard
        # would re-trigger on every following window.
        self._reset_after_decision()

    def _reset_after_decision(self) -> None:
        self.hot_shard = None
        self.hot_streak = 0
        self.cooldown_remaining = self.config.cooldown_ops
        # Shard indices shift after a split (the new shard is inserted at
        # source+1), so any in-window counts keyed by old indices are
        # meaningless -- drop them.
        self.window_counts.clear()
        self._window_total = 0

    @property
    def split_count(self) -> int:
        return sum(1 for e in self.events if e["event"] == "split")
