"""Horizontal partitioning: N independent trees behind one router.

See :mod:`repro.shard.engine` for the subsystem overview.
"""

from repro.lsm.compaction.tuner import (
    CompactionTuner,
    PolicyCostModel,
    PolicyTunerConfig,
)
from repro.memory import MemoryBudget, MemoryGovernor, MemoryGovernorConfig
from repro.shard.autosplit import AutoSplitConfig, AutoSplitController
from repro.shard.engine import (
    POLICY_TUNER_ENV,
    SHARDS_ENV,
    ShardedEngine,
    ShardSplitReport,
    default_policy_tuner,
    default_shards,
)
from repro.shard.handoff import PurgeReport, extract_live_range, purge_key_range
from repro.shard.manifest import (
    SHARD_LAYOUT_VERSION,
    SHARD_MANIFEST_NAME,
    ShardRootStore,
    is_sharded_root,
    shard_dir_name,
    validate_layout,
)
from repro.shard.partition import PartitionMap, describe_range

__all__ = [
    "POLICY_TUNER_ENV",
    "SHARDS_ENV",
    "SHARD_LAYOUT_VERSION",
    "SHARD_MANIFEST_NAME",
    "AutoSplitConfig",
    "AutoSplitController",
    "CompactionTuner",
    "MemoryBudget",
    "MemoryGovernor",
    "MemoryGovernorConfig",
    "PartitionMap",
    "PolicyCostModel",
    "PolicyTunerConfig",
    "PurgeReport",
    "ShardRootStore",
    "ShardSplitReport",
    "ShardedEngine",
    "default_policy_tuner",
    "default_shards",
    "describe_range",
    "extract_live_range",
    "is_sharded_root",
    "purge_key_range",
    "shard_dir_name",
    "validate_layout",
]
