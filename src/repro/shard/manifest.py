"""The shard root manifest: topology + in-flight intents, durably.

A sharded store is a root directory holding one subdirectory per shard
(each an ordinary durable tree the single-tree tooling understands) plus a
root-level ``SHARDS.json`` recording the topology:

``boundaries`` / ``shard_dirs``
    The partition map and the index-aligned shard directory names.

``pending_fanout``
    The intent record of an in-flight cross-shard secondary delete.  It is
    published *before* the first shard applies the delete and cleared only
    after the last shard finishes, so a crash anywhere in between leaves a
    durable to-do that recovery replays to completion -- the fan-out is
    all-or-nothing as observed by any post-recovery reader.  (Secondary
    delete application is idempotent, so replaying an already-finished
    fan-out is harmless.)

``pending_split``
    The staged intent of an in-flight shard split (see
    ``ShardedEngine.split_shard`` for the two-stage protocol).

:class:`ShardRootStore` reuses the single-tree :class:`FileStore`
publication machinery -- fsync-then-rename discipline, the epoch + CRC
integrity envelope, bounded transient-error retry, and the ``MANIFEST_*``
fault points -- by overriding only the manifest filename, so the root
document inherits every durability property (and every crash-matrix
surface) the per-tree manifests already have.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import CorruptionError
from repro.shard.partition import PartitionMap
from repro.storage.filestore import FileStore

#: The root manifest filename; its presence is what marks a directory as a
#: sharded store root (``doctor``/CLI dispatch on it).
SHARD_MANIFEST_NAME = "SHARDS.json"

#: Schema version of the root manifest.
SHARD_LAYOUT_VERSION = 1


def shard_dir_name(shard_id: int) -> str:
    return f"shard-{shard_id:02d}"


def is_sharded_root(directory: str | Path) -> bool:
    """True when ``directory`` is (or was) a sharded store root."""
    return (Path(directory) / SHARD_MANIFEST_NAME).exists()


class ShardRootStore(FileStore):
    """A :class:`FileStore` whose manifest is the root ``SHARDS.json``.

    Only the manifest machinery is used at the root (shards keep their own
    sstables and WALs in their subdirectories); inheriting the rest costs
    nothing and keeps ``clean_temp_files`` sweeping interrupted root
    publications.
    """

    @property
    def manifest_path(self) -> Path:
        return self.directory / SHARD_MANIFEST_NAME


def validate_layout(layout: dict) -> PartitionMap:
    """Structural validation of a root manifest; returns its partition map.

    Raises :class:`CorruptionError` on a malformed document (the CRC
    envelope already rules out bit rot, so a failure here means a foreign
    or half-designed file).
    """
    for key in ("shard_layout", "boundaries", "shard_dirs"):
        if key not in layout:
            raise CorruptionError(f"shard manifest missing field {key!r}")
    version = layout["shard_layout"]
    if not isinstance(version, int) or version > SHARD_LAYOUT_VERSION or version < 1:
        raise CorruptionError(f"unsupported shard layout version {version!r}")
    dirs = layout["shard_dirs"]
    boundaries = layout["boundaries"]
    if not isinstance(dirs, list) or not dirs:
        raise CorruptionError("shard manifest lists no shard directories")
    if not isinstance(boundaries, list) or len(boundaries) != len(dirs) - 1:
        raise CorruptionError(
            f"shard manifest has {len(boundaries)} boundaries for "
            f"{len(dirs)} shards (want shards - 1)"
        )
    if len(set(dirs)) != len(dirs):
        raise CorruptionError("shard manifest repeats a shard directory")
    return PartitionMap(boundaries)
