"""Range partitioning: the map from key to shard.

A :class:`PartitionMap` divides the total key order into ``N`` contiguous,
disjoint ranges using ``N - 1`` interior *boundary keys*.  Shard ``i`` owns
the half-open range ``[boundary[i-1], boundary[i])`` with the first shard
unbounded below and the last unbounded above, so **every** key routes
somewhere -- there is no "unassigned" key, and routing is a single
``bisect`` over the (usually tiny) boundary list.

Boundaries are ordinary keys, so anything the engine can sort can be
partitioned (the durable layer additionally requires boundaries to be
JSON-serializable, which holds for the int and string keys the workloads
use).  All keys in one map must be mutually comparable -- mixing ints and
strings raises ``TypeError`` from the comparison itself, exactly like
feeding such keys to a single tree would.

Splitting a shard inserts one new boundary strictly inside its range; the
resulting map is what the rebalancer publishes (see
:mod:`repro.shard.engine` for the staged handoff protocol).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator, Sequence

from repro.errors import ConfigError


class PartitionMap:
    """An immutable sorted-boundary router over ``len(boundaries) + 1`` shards."""

    __slots__ = ("_boundaries",)

    def __init__(self, boundaries: Sequence[Any] = ()) -> None:
        bounds = list(boundaries)
        for left, right in zip(bounds, bounds[1:]):
            if not left < right:
                raise ConfigError(
                    f"partition boundaries must be strictly increasing: "
                    f"{left!r} !< {right!r}"
                )
        self._boundaries = tuple(bounds)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, shards: int, lo: int = 0, hi: int = 1 << 20) -> "PartitionMap":
        """Evenly spaced integer boundaries for ``shards`` shards over
        ``[lo, hi)`` -- the default layout for the integer-keyed workloads.
        Keys outside ``[lo, hi)`` still route (to the edge shards)."""
        if shards < 1:
            raise ConfigError(f"shard count must be >= 1, got {shards}")
        if shards > 1 and hi - lo < shards:
            raise ConfigError(
                f"key space [{lo}, {hi}) too small for {shards} shards"
            )
        step = (hi - lo) / shards
        return cls([lo + round(step * i) for i in range(1, shards)])

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self._boundaries) + 1

    @property
    def boundaries(self) -> tuple:
        return self._boundaries

    def shard_for(self, key: Any) -> int:
        """The index of the shard owning ``key`` (total: never misses)."""
        return bisect_right(self._boundaries, key)

    def shard_range(self, index: int) -> tuple[Any, Any]:
        """``(lo, hi)`` of shard ``index``: inclusive lo, exclusive hi,
        ``None`` for an unbounded end."""
        if not 0 <= index < self.shards:
            raise IndexError(f"shard index {index} out of range 0..{self.shards - 1}")
        lo = self._boundaries[index - 1] if index > 0 else None
        hi = self._boundaries[index] if index < len(self._boundaries) else None
        return lo, hi

    def overlapping(self, lo: Any, hi: Any) -> Iterator[int]:
        """Shard indices whose range intersects the inclusive ``[lo, hi]``,
        in key order (the order a forward cross-shard scan visits them)."""
        if lo > hi:
            return iter(())
        return iter(range(self.shard_for(lo), self.shard_for(hi) + 1))

    def executor_map(self, workers: int) -> list[int]:
        """Worker index owning each shard under a ``workers``-wide pool.

        The fixed round-robin assignment (``shard i -> worker i % W``)
        the served engine and the shard-affine replay pool both use: it
        is stable across calls (ownership never migrates while a topology
        holds), covers every shard, and gives each worker a contiguous
        stride of the key order when ``W`` divides the shard count.  One
        shard maps to exactly one worker, which is what makes
        per-shard state single-writer without cross-worker locking.
        """
        if workers < 1:
            raise ConfigError(f"worker count must be >= 1, got {workers}")
        return [index % workers for index in range(self.shards)]

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def split(self, index: int, split_key: Any) -> "PartitionMap":
        """The map after splitting shard ``index`` at ``split_key``.

        The old shard keeps ``[lo, split_key)``; the new shard (inserted at
        ``index + 1``) takes ``[split_key, hi)``.  ``split_key`` must lie
        strictly inside the shard's current range so neither half is empty
        *by construction*.
        """
        lo, hi = self.shard_range(index)
        if (lo is not None and not lo < split_key) or (
            hi is not None and not split_key < hi
        ):
            raise ConfigError(
                f"split key {split_key!r} not strictly inside shard {index}'s "
                f"range [{lo!r}, {hi!r})"
            )
        bounds = list(self._boundaries)
        bounds.insert(index, split_key)
        return PartitionMap(bounds)

    # ------------------------------------------------------------------
    # serialization / dunder
    # ------------------------------------------------------------------
    def to_list(self) -> list:
        return list(self._boundaries)

    @classmethod
    def from_list(cls, boundaries: Sequence[Any]) -> "PartitionMap":
        return cls(boundaries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PartitionMap) and self._boundaries == other._boundaries

    def __hash__(self) -> int:
        return hash(self._boundaries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionMap(boundaries={list(self._boundaries)!r})"


def describe_range(lo: Any, hi: Any) -> str:
    """Human-readable ``[lo, hi)`` with unbounded ends rendered as ``-inf``/``+inf``."""
    left = "-inf" if lo is None else repr(lo)
    right = "+inf" if hi is None else repr(hi)
    return f"[{left}, {right})"
