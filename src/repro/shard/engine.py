"""The sharded engine: N independent trees behind one router.

:class:`ShardedEngine` range-partitions the keyspace across ``N``
independent :class:`~repro.core.engine.AcheronEngine` instances -- each
with its own directory, WAL, block cache, clock, persistence tracker, and
(PR 4) background write-path workers -- and presents the same data-plane
API as a single engine:

* **routing** -- ``put``/``delete``/``get``/``contains`` dispatch by the
  :class:`~repro.shard.partition.PartitionMap`; batches are grouped per
  shard with per-key order preserved, so sharded contents always equal the
  single-tree replay of the same stream.
* **cross-shard scans** -- each overlapping shard contributes its fused
  scan iterator (:func:`~repro.lsm.iterator.scan_fused` underneath) and a
  k-way heap merge stitches them, preserving limit early-exit and reverse
  order.  Shard ranges are disjoint, so the merge degenerates to an
  ordered chain -- but stays correct mid-rebalance.
* **secondary range deletes** -- a KiWi delete spans *all* shards (the
  delete key is orthogonal to the partition key).  In durable mode the
  fan-out is **all-or-nothing**: an intent record is published to the root
  manifest before the first shard applies the delete and cleared after the
  last, and recovery replays a pending intent to completion before serving
  -- no reader ever observes a half-applied secondary delete across a
  crash (application is idempotent, so replays are harmless).
* **per-shard delete persistence** -- ``D_th`` is a per-tree contract
  (the paper defines it against one tree's compaction cadence), so each
  shard enforces it with its own FADE scheduler and tracker; the engine
  aggregates the ledgers into one shard-global
  :class:`~repro.core.persistence.PersistenceStats` (percentiles computed
  over the concatenated latency populations, not averaged averages).
* **rebalancing** -- ``split_shard`` hands the upper half of a skewed
  shard's range to a fresh shard via a staged, manifest-logged protocol
  (copy -> flip map -> purge source; see :mod:`repro.shard.handoff`) that
  the crash matrix drives under fault injection.

Durable layout: a root directory holding ``SHARDS.json`` (see
:mod:`repro.shard.manifest`) plus one subdirectory per shard, each a
fully self-describing single-tree store the existing doctor/CLI tooling
understands.

The default shard count comes from the ``REPRO_SHARDS`` environment
variable (mirroring ``REPRO_WORKERS``), so the whole test suite can be
re-run sharded without touching call sites.  ``REPRO_POLICY_TUNER=1``
likewise arms the default self-tuning compaction governor on every
writable open that didn't choose explicitly (pass
``policy_tuner=False`` to pin a store static regardless).
"""

from __future__ import annotations

import os
import shutil
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, replace
from heapq import merge as _heap_merge
from itertools import islice
from operator import itemgetter
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.config import CompactionStyle, LSMConfig, acheron_config
from repro.core.engine import AcheronEngine, EngineStats
from repro.core.kiwi import SecondaryDeleteReport
from repro.core.persistence import PersistenceStats
from repro.errors import (
    AcheronError,
    ConfigError,
    EngineClosedError,
    InvariantViolationError,
)
from repro.lsm.compaction.tuner import CompactionTuner, PolicyTunerConfig
from repro.memory import MemoryBudget, MemoryGovernor, MemoryGovernorConfig
from repro.metrics.shape import LevelSummary
from repro.shard.autosplit import AutoSplitConfig, AutoSplitController
from repro.shard.handoff import PurgeReport, extract_live_range, purge_key_range
from repro.shard.manifest import (
    SHARD_LAYOUT_VERSION,
    ShardRootStore,
    shard_dir_name,
    validate_layout,
)
from repro.shard.partition import PartitionMap, describe_range
from repro.storage.disk import IOStats

#: Environment default for the shard count (mirrors ``REPRO_WORKERS``).
SHARDS_ENV = "REPRO_SHARDS"
#: Environment default for the self-tuning compaction governor: a truthy
#: value arms the default :class:`PolicyTunerConfig` on every writable
#: open that left ``policy_tuner`` unset, so the whole test suite can be
#: re-run tuner-armed without touching call sites.
POLICY_TUNER_ENV = "REPRO_POLICY_TUNER"

_SECONDARY_METHODS = ("auto", "kiwi", "full_rewrite", "eager", "lazy")
_FIRST_OF_PAIR = itemgetter(0)


def default_shards() -> int:
    """The ambient shard count: ``REPRO_SHARDS`` or 1."""
    return int(os.environ.get(SHARDS_ENV, "1") or "1")


def default_policy_tuner() -> bool:
    """The ambient tuner arming: ``REPRO_POLICY_TUNER`` truthy, or off."""
    return os.environ.get(POLICY_TUNER_ENV, "") not in ("", "0")


def _coerce_style(value: Any) -> CompactionStyle:
    """Accept a :class:`CompactionStyle` or its string value."""
    if isinstance(value, CompactionStyle):
        return value
    try:
        return CompactionStyle(value)
    except (ValueError, TypeError):
        raise ConfigError(
            f"not a compaction policy: {value!r} (expected one of "
            f"{sorted(s.value for s in CompactionStyle)})"
        ) from None


# ---------------------------------------------------------------------------
# aggregate views over the per-shard devices and clocks
# ---------------------------------------------------------------------------
def _sum_io(parts: Iterable[IOStats]) -> IOStats:
    total = IOStats()
    for part in parts:
        total.pages_read += part.pages_read
        total.pages_written += part.pages_written
        total.read_requests += part.read_requests
        total.write_requests += part.write_requests
        total.modeled_us += part.modeled_us
        for cat, pages in part.reads_by_category.items():
            total.reads_by_category[cat] = total.reads_by_category.get(cat, 0) + pages
        for cat, pages in part.writes_by_category.items():
            total.writes_by_category[cat] = total.writes_by_category.get(cat, 0) + pages
    return total


class _AggregateIOView:
    """A live, read-only sum of every shard's disk counters.

    The workload runner attributes I/O by reading ``engine.disk.stats``
    before and after each operation; these properties keep that protocol
    working against N devices at once.
    """

    __slots__ = ("_engines",)

    def __init__(self, engines: list[AcheronEngine]) -> None:
        self._engines = engines

    @property
    def pages_read(self) -> int:
        return sum(e.tree.disk.stats.pages_read for e in self._engines)

    @property
    def pages_written(self) -> int:
        return sum(e.tree.disk.stats.pages_written for e in self._engines)

    @property
    def read_requests(self) -> int:
        return sum(e.tree.disk.stats.read_requests for e in self._engines)

    @property
    def write_requests(self) -> int:
        return sum(e.tree.disk.stats.write_requests for e in self._engines)

    @property
    def modeled_us(self) -> float:
        return sum(e.tree.disk.stats.modeled_us for e in self._engines)

    @property
    def total_pages(self) -> int:
        return self.pages_read + self.pages_written


class _AggregateDisk:
    """Duck-types the :class:`SimulatedDisk` inspection surface."""

    __slots__ = ("_engines", "stats")

    def __init__(self, engines: list[AcheronEngine]) -> None:
        self._engines = engines
        self.stats = _AggregateIOView(engines)

    def snapshot(self) -> IOStats:
        return _sum_io(e.tree.disk.snapshot() for e in self._engines)

    def delta_since(self, snapshot: IOStats) -> IOStats:
        return self.snapshot().minus(snapshot)


class _ShardClock:
    """The shard-global logical clock: the maximum of the per-shard ticks.

    Each shard advances its own clock per ingested operation; the maximum
    is the natural "how far has this deployment progressed" tick that
    workload-level policies (e.g. the secondary-delete window) key on.
    """

    __slots__ = ("_engines",)

    def __init__(self, engines: list[AcheronEngine]) -> None:
        self._engines = engines

    def now(self) -> int:
        return max((e.clock.now() for e in self._engines), default=0)


# ---------------------------------------------------------------------------
# numeric merging of observability dictionaries
# ---------------------------------------------------------------------------
#: Derived-ratio keys that must be averaged (or recomputed), never summed.
_MEAN_KEYS = frozenset(
    {"hit_rate", "flush_batching", "mean_flush_ms", "mean_compaction_ms"}
)


def _merge_numeric(dicts: list[dict], prefix_subdicts: bool = False) -> dict:
    """Merge stat dicts: counters sum, ratios average, labels must agree.

    ``pages_written_by_worker``-style sub-dicts get their keys prefixed
    with the shard index (worker names repeat across shards).
    """
    out: dict[str, Any] = {}
    for index, d in enumerate(dicts):
        for key, value in d.items():
            if isinstance(value, bool):
                out[key] = out.get(key, False) or value
            elif isinstance(value, (int, float)):
                out[key] = out.get(key, 0) + value
            elif isinstance(value, dict) and prefix_subdicts:
                sub = out.setdefault(key, {})
                for k, v in value.items():
                    sub[f"s{index}:{k}"] = v
            elif key not in out:
                out[key] = value
            elif out[key] != value:
                out[key] = "mixed"
    for key in _MEAN_KEYS & out.keys():
        if dicts:
            out[key] = out[key] / len(dicts)
    # Exact recomputes where the inputs are present in the merged dict.
    if "hits" in out and "misses" in out:
        lookups = out["hits"] + out["misses"]
        out["hit_rate"] = out["hits"] / lookups if lookups else 0.0
    return out


def _merge_read_path(levels_lists: list[list[dict]]) -> list[dict]:
    """Merge per-level read-path counter rows across shards by level."""
    by_level: dict[int, list[dict]] = {}
    for rows in levels_lists:
        for row in rows:
            by_level.setdefault(row["level"], []).append(row)
    merged = []
    for level in sorted(by_level):
        row = _merge_numeric(by_level[level])
        row["level"] = level
        merged.append(row)
    return merged


def _merge_shape(shapes: list[list[LevelSummary]]) -> list[LevelSummary]:
    depth = max((len(s) for s in shapes), default=0)
    merged: list[LevelSummary] = []
    for i in range(depth):
        rows = [s[i] for s in shapes if len(s) > i]
        ages = [r.oldest_tombstone_age for r in rows if r.oldest_tombstone_age is not None]
        merged.append(
            LevelSummary(
                index=rows[0].index,
                runs=sum(r.runs for r in rows),
                files=sum(r.files for r in rows),
                pages=sum(r.pages for r in rows),
                entries=sum(r.entries for r in rows),
                tombstones=sum(r.tombstones for r in rows),
                capacity=sum(r.capacity for r in rows),
                oldest_tombstone_age=max(ages) if ages else None,
            )
        )
    return merged


def _merge_delete_reports(reports: list[SecondaryDeleteReport]) -> SecondaryDeleteReport:
    first = reports[0]
    merged = SecondaryDeleteReport(method=first.method, lo=first.lo, hi=first.hi)
    for r in reports:
        merged.files_examined += r.files_examined
        merged.files_modified += r.files_modified
        merged.files_emptied += r.files_emptied
        merged.pages_kept += r.pages_kept
        merged.pages_dropped += r.pages_dropped
        merged.pages_rewritten += r.pages_rewritten
        merged.entries_deleted += r.entries_deleted
        merged.memtable_entries_deleted += r.memtable_entries_deleted
    merged.io = _sum_io(r.io for r in reports)
    return merged


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------
@dataclass
class ShardSplitReport:
    """What one shard split moved and purged."""

    source: int
    split_key: Any
    new_shard: int
    new_directory: str | None
    entries_moved: int
    purge: PurgeReport

    def summary(self) -> str:
        return (
            f"split shard {self.source} at {self.split_key!r}: moved "
            f"{self.entries_moved} live entries to shard {self.new_shard}, "
            f"purged {self.purge.entries_dropped} on-disk + "
            f"{self.purge.memtable_entries_dropped} buffered entries from the source"
        )


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
class ShardedEngine:
    """A range-partitioned multi-tree engine (see module docstring)."""

    def __init__(
        self,
        config: LSMConfig | None = None,
        directory: str | None = None,
        shards: int | None = None,
        boundaries: Iterable[Any] | None = None,
        key_space: tuple[int, int] = (0, 1 << 20),
        track_persistence: bool = True,
        read_only: bool = False,
        wal_sync: bool = False,
        faults: Any = None,
        degraded_ok: bool = False,
        workers: int | None = None,
        auto_split: "AutoSplitConfig | bool | None" = None,
        memory_governor: "MemoryGovernorConfig | bool | None" = None,
        shard_policies: "dict[int, Any] | Iterable[Any] | None" = None,
        policy_tuner: "PolicyTunerConfig | bool | None" = None,
    ) -> None:
        self.faults = faults
        self._read_only = read_only
        #: Hot-shard auto-split (see :mod:`repro.shard.autosplit`).  Off
        #: by default; ``True`` arms the default config.  The controller
        #: only *decides* -- the split it fires is the ordinary staged,
        #: crash-recoverable :meth:`split_shard`.
        if auto_split and read_only:
            raise ConfigError("auto_split requires a writable engine")
        self._autosplit: AutoSplitController | None = None
        if auto_split:
            cfg = auto_split if isinstance(auto_split, AutoSplitConfig) else None
            self._autosplit = AutoSplitController(cfg)
        #: Adaptive memory governor (see :mod:`repro.memory`).  Off by
        #: default and bit-identical when off; ``True`` arms the default
        #: config.  Budgets are advisory runtime state -- never persisted,
        #: reset to the config defaults on every open -- so arming it
        #: changes *when* flushes and evictions happen, never what the
        #: engine stores.  The ledger is bound after the shards open,
        #: once the recovered shard count is known.
        if memory_governor and read_only:
            raise ConfigError("memory_governor requires a writable engine")
        self._governor: MemoryGovernor | None = None
        if memory_governor:
            cfg = (
                memory_governor
                if isinstance(memory_governor, MemoryGovernorConfig)
                else None
            )
            self._governor = MemoryGovernor(cfg)
        #: Self-tuning compaction (see :mod:`repro.lsm.compaction.tuner`).
        #: Off by default and bit-identical when off; ``True`` arms the
        #: default config.  Unlike the advisory memory budgets, an applied
        #: policy switch is *durable*: the root manifest records the
        #: per-shard policies and every shard's own manifest is rewritten
        #: by its ``set_policy``, so a reopened store keeps its tuned
        #: layout (with the streak/cooldown bookkeeping starting fresh).
        if policy_tuner is None and not read_only:
            # Ambient arming (REPRO_POLICY_TUNER) applies only where an
            # explicit ``policy_tuner=True`` would be legal; read-only
            # opens stay untouched rather than erroring.
            policy_tuner = default_policy_tuner()
        if policy_tuner and read_only:
            raise ConfigError("policy_tuner requires a writable engine")
        self._tuner: CompactionTuner | None = None
        if policy_tuner:
            cfg = (
                policy_tuner if isinstance(policy_tuner, PolicyTunerConfig) else None
            )
            self._tuner = CompactionTuner(cfg)
        self._wal_sync = wal_sync
        self._degraded_ok = degraded_ok
        self._track_persistence = track_persistence
        self._workers = workers
        self._closed = False
        #: Human-readable descriptions of intents a read-only open could
        #: not replay (empty for writable opens: they recover first).
        self.pending_recovery: list[str] = []
        self.directory = Path(directory) if directory is not None else None
        self._store: ShardRootStore | None = None

        layout: dict | None = None
        if self.directory is not None:
            self._store = ShardRootStore(self.directory, faults=faults)
            if not read_only:
                self._store.clean_temp_files()
            layout = self._store.read_manifest()

        if layout is not None:
            pmap = validate_layout(layout)
            if shards is not None and shards != pmap.shards:
                raise ConfigError(
                    f"store at {directory} has {pmap.shards} shard(s), "
                    f"but shards={shards} was requested"
                )
            if boundaries is not None and list(boundaries) != pmap.to_list():
                raise ConfigError(
                    f"store at {directory} records boundaries {pmap.to_list()!r}, "
                    f"which differ from the requested {list(boundaries)!r}"
                )
            if config is None and "config" in layout:
                config = LSMConfig.from_dict(layout["config"])
            dirs = [str(name) for name in layout["shard_dirs"]]
            next_id = int(layout.get("next_shard_id", len(dirs)))
        else:
            if read_only:
                raise ConfigError("read_only requires an initialized sharded store")
            if boundaries is not None:
                pmap = PartitionMap(list(boundaries))
                if shards is not None and shards != pmap.shards:
                    raise ConfigError(
                        f"{len(pmap.boundaries)} boundaries define {pmap.shards} "
                        f"shard(s), but shards={shards} was requested"
                    )
            else:
                if shards is None:
                    shards = default_shards()
                pmap = PartitionMap.uniform(shards, *key_space)
            dirs = [shard_dir_name(i) for i in range(pmap.shards)]
            next_id = pmap.shards

        self.config = config or acheron_config()
        self.partition_map = pmap
        self._shard_dirs = dirs
        self._next_shard_id = next_id
        #: Per-shard compaction policies, parallel to ``_shard_dirs``.
        #: Defaults to the root config's policy for every shard; recorded
        #: layouts restore their saved map, and an explicit
        #: ``shard_policies`` argument overrides both (the same precedence
        #: an explicit ``config`` has over the recorded one).
        self._shard_policies = self._init_shard_policies(
            shard_policies, layout, len(dirs)
        )
        self.shards: list[AcheronEngine] = [
            self._open_shard(name, policy=self._shard_policies[i])
            for i, name in enumerate(dirs)
        ]
        self.disk = _AggregateDisk(self.shards)
        self.clock = _ShardClock(self.shards)
        if self._governor is not None:
            self._governor.bind(MemoryBudget.from_config(self.config, len(dirs)))

        self._pending_fanout = layout.get("pending_fanout") if layout else None
        self._pending_split = layout.get("pending_split") if layout else None
        if layout is None:
            self._publish_layout()
        elif self._pending_fanout or self._pending_split:
            if read_only:
                if self._pending_fanout:
                    f = self._pending_fanout
                    self.pending_recovery.append(
                        f"secondary delete fan-out dkey=[{f['lo']}, {f['hi']}] "
                        "interrupted (a writable open will replay it)"
                    )
                if self._pending_split:
                    s = self._pending_split
                    self.pending_recovery.append(
                        f"shard split of shard {s['source']} at {s['split_key']!r} "
                        f"interrupted in stage {s['stage']!r} (a writable open "
                        "will resume it)"
                    )
            else:
                self._recover_intents()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _init_shard_policies(
        self,
        overrides: "dict[int, Any] | Iterable[Any] | None",
        layout: dict | None,
        count: int,
    ) -> list[CompactionStyle]:
        """Resolve the per-shard policy list (see ``_shard_policies``)."""
        policies = [self.config.policy] * count
        recorded = (layout or {}).get("shard_policies")
        if recorded is not None:
            if len(recorded) != count:
                raise ConfigError(
                    f"layout records {len(recorded)} shard policies for "
                    f"{count} shard(s)"
                )
            policies = [_coerce_style(value) for value in recorded]
        if overrides is None:
            return policies
        if isinstance(overrides, dict):
            for index, value in overrides.items():
                if not 0 <= index < count:
                    raise ConfigError(
                        f"shard_policies index {index} out of range 0..{count - 1}"
                    )
                policies[index] = _coerce_style(value)
            return policies
        explicit = [_coerce_style(value) for value in overrides]
        if len(explicit) != count:
            raise ConfigError(
                f"shard_policies lists {len(explicit)} policies for "
                f"{count} shard(s)"
            )
        return explicit

    def _open_shard(
        self, name: str, policy: CompactionStyle | None = None
    ) -> AcheronEngine:
        directory = str(self.directory / name) if self.directory is not None else None
        config = self.config
        if policy is not None and policy is not config.policy:
            # The per-shard override rides the existing explicit-config
            # precedence: it beats whatever policy the shard's own
            # manifest recorded, which is what makes the root-first
            # durable-switch ordering crash-safe (see _apply_policy).
            config = config.with_updates(policy=policy)
        return AcheronEngine(
            config,
            directory=directory,
            track_persistence=self._track_persistence,
            read_only=self._read_only,
            wal_sync=self._wal_sync,
            faults=self.faults,
            degraded_ok=self._degraded_ok,
            workers=self._workers,
        )

    def _publish_layout(
        self,
        pending_fanout: dict | None = None,
        pending_split: dict | None = None,
    ) -> None:
        """Atomically publish the root manifest (no-op in memory mode)."""
        if self._store is None or self._read_only:
            return
        manifest = {
            "shard_layout": SHARD_LAYOUT_VERSION,
            "config": self.config.to_dict(),
            "boundaries": self.partition_map.to_list(),
            "shard_dirs": list(self._shard_dirs),
            "next_shard_id": self._next_shard_id,
            "pending_fanout": pending_fanout,
            "pending_split": pending_split,
        }
        if any(p is not self.config.policy for p in self._shard_policies):
            # Back-compat: the key is absent while every shard runs the
            # root config's policy, so homogeneous layouts stay
            # byte-identical to pre-tuner ones and old layouts restore
            # cleanly.
            manifest["shard_policies"] = [p.value for p in self._shard_policies]
        self._store.write_manifest(manifest)

    def _recover_intents(self) -> None:
        """Replay interrupted fan-outs/splits to completion before serving."""
        fanout = self._pending_fanout
        if fanout:
            self._pending_fanout = None
            for shard in self.shards:
                shard.delete_range(
                    fanout["lo"], fanout["hi"], method=fanout.get("method", "auto")
                )
            self._publish_layout(pending_split=self._pending_split)
        split = self._pending_split
        if split:
            self._pending_split = None
            index, split_key = split["source"], split["split_key"]
            if split["stage"] == "copy":
                # The map flip never happened: the target (if any bytes
                # landed) is wiped and the whole split redone from intact
                # source state.
                new_map = self.partition_map.split(index, split_key)
                with self._quiesced(index):
                    self._split_inline(index, split_key, new_map, split["new_dir"])
            else:  # stage "purge": the map already flipped; finish the purge
                with self._quiesced(index):
                    self._purge_source(self.shards[index], split_key)
                self._publish_layout()

    @contextmanager
    def _quiesced(self, index: int):
        """Run with shard ``index``'s write path drained and held inline."""
        source = self.shards[index]
        source.tree.write_barrier()
        wp = source.tree.write_path
        ctx = wp.exclusive() if wp is not None and not wp.owns_inline() else nullcontext()
        with ctx:
            yield

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError("operation on a closed ShardedEngine")

    def _check_writable(self) -> None:
        self._check_open()
        if self._read_only:
            raise ConfigError("engine opened read_only; writes are not allowed")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_index_for(self, key: Any) -> int:
        return self.partition_map.shard_for(key)

    def shard_for(self, key: Any) -> AcheronEngine:
        """The shard engine owning ``key``."""
        return self.shards[self.partition_map.shard_for(key)]

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def put(self, key: Any, value: Any, delete_key: int | None = None) -> None:
        self._check_open()
        index = self.partition_map.shard_for(key)
        self.shards[index].put(key, value, delete_key=delete_key)
        if self._autosplit is not None:
            self._note_writes(index, 1)
        if self._governor is not None:
            self._note_memory(index, 1)
        if self._tuner is not None:
            self._note_policy(index, "write", 1)

    def delete(self, key: Any) -> None:
        self._check_open()
        index = self.partition_map.shard_for(key)
        self.shards[index].delete(key)
        if self._autosplit is not None:
            self._note_writes(index, 1)
        if self._governor is not None:
            self._note_memory(index, 1)
        if self._tuner is not None:
            self._note_policy(index, "delete", 1)

    def get(self, key: Any, default: Any = None) -> Any:
        self._check_open()
        index = self.partition_map.shard_for(key)
        value = self.shards[index].get(key, default=default)
        if self._tuner is not None:
            self._note_policy(index, "read", 1)
        return value

    def contains(self, key: Any) -> bool:
        self._check_open()
        index = self.partition_map.shard_for(key)
        found = self.shards[index].contains(key)
        if self._tuner is not None:
            self._note_policy(index, "read", 1)
        return found

    def put_many(self, items: Iterable[tuple]) -> int:
        """Batched puts, grouped per shard with per-key order preserved."""
        self._check_open()
        groups: dict[int, list[tuple]] = {}
        for item in items:
            groups.setdefault(self.partition_map.shard_for(item[0]), []).append(item)
        # Apply every group before feeding the auto-split controller: a
        # split mid-batch would renumber the shards under the remaining
        # (pre-split-indexed) groups.
        applied = sum(self.shards[i].put_many(group) for i, group in groups.items())
        if self._autosplit is not None:
            for i, group in groups.items():
                self._note_writes(i, len(group))
        if self._governor is not None:
            for i, group in groups.items():
                self._note_memory(i, len(group))
        if self._tuner is not None:
            for i, group in groups.items():
                self._note_policy(i, "write", len(group))
        return applied

    def apply_batch(self, ops: Iterable[tuple]) -> int:
        """Mixed ingest batch (``("put", k, v[, dk])`` / ``("delete", k)``),
        grouped per shard with per-key order preserved."""
        self._check_open()
        groups: dict[int, list[tuple]] = {}
        for op in ops:
            groups.setdefault(self.partition_map.shard_for(op[1]), []).append(op)
        applied = sum(self.shards[i].apply_batch(group) for i, group in groups.items())
        if self._autosplit is not None:
            for i, group in groups.items():
                self._note_writes(i, len(group))
        if self._governor is not None:
            for i, group in groups.items():
                self._note_memory(i, len(group))
        if self._tuner is not None:
            for i, group in groups.items():
                deletes = sum(1 for op in group if op[0] == "delete")
                if deletes:
                    self._note_policy(i, "delete", deletes)
                if len(group) - deletes:
                    self._note_policy(i, "write", len(group) - deletes)
        return applied

    def scan(
        self,
        lo: Any,
        hi: Any,
        limit: int | None = None,
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Live pairs with ``lo <= key <= hi`` merged across shards.

        Each overlapping shard contributes its own fused scan (already
        resolved and tombstone-suppressed); a k-way heap merge stitches
        them in global key order.  ``limit`` is pushed down per shard
        *and* applied to the merged stream, so early exit works at both
        layers; ``reverse`` flips both the per-shard scans and the merge.
        """
        self._check_open()
        indices = list(self.partition_map.overlapping(lo, hi))
        if reverse:
            indices.reverse()
        if self._tuner is not None:
            # Fed at issue time, not consumption: the tuner prices the
            # *request* mix, and noting after a lazy iterator drains
            # would tangle controller work into read loops.
            for i in indices:
                self._note_policy(i, "scan", 1)
        streams = [
            self.shards[i].scan(lo, hi, limit=limit, reverse=reverse) for i in indices
        ]
        merged = _heap_merge(*streams, key=_FIRST_OF_PAIR, reverse=reverse)
        return islice(merged, limit) if limit is not None else merged

    def delete_range(
        self, delete_key_lo: int, delete_key_hi: int, method: str = "auto"
    ) -> SecondaryDeleteReport:
        """A secondary range delete fanned out to every shard.

        Durable stores log the fan-out intent in the root manifest before
        the first shard applies it and clear the intent after the last --
        a crash in between leaves a durable to-do that recovery replays,
        so the fan-out is all-or-nothing across restarts.  Arguments are
        validated *before* the intent is published (a poisoned intent
        would fail its replay forever).

        ``method="lazy"`` turns the fan-out from a stop-the-world (each
        shard quiesced and rewritten under ``exclusive()``) into N O(1)
        fence appends: the intent records the fence, each shard durably
        installs it without touching a file, and later per-shard
        compactions resolve it.  A replayed lazy intent appends a fresh
        fence per shard; a duplicate fence on an already-fenced shard is
        harmless (it shadows a subset of what the first one does and
        retires as soon as it is resolved).
        """
        self._check_writable()
        if method not in _SECONDARY_METHODS:
            raise ValueError(f"unknown secondary delete method {method!r}")
        if delete_key_lo > delete_key_hi:
            raise AcheronError(
                f"secondary delete range is empty: [{delete_key_lo}, {delete_key_hi}]"
            )
        self._publish_layout(
            pending_fanout={"lo": delete_key_lo, "hi": delete_key_hi, "method": method}
        )
        reports = [
            shard.delete_range(delete_key_lo, delete_key_hi, method=method)
            for shard in self.shards
        ]
        self._publish_layout()
        return _merge_delete_reports(reports)

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def split_shard(self, index: int, split_key: Any = None) -> ShardSplitReport:
        """Split shard ``index`` at ``split_key`` (default: its median key).

        The staged protocol (each stage a durable intent in the root
        manifest, so a crash at any byte resumes cleanly):

        1. **copy** -- publish the intent, then copy every live entry with
           ``key >= split_key`` (delete keys preserved) into a fresh shard
           directory and flush it.  The partition map is untouched, so the
           copy is invisible; a crash wipes the target and redoes it.
        2. **flip + purge** -- atomically publish the new partition map
           (the target starts owning its range) together with a ``purge``
           intent, then run the bounded key-range purge of the source
           (:func:`~repro.shard.handoff.purge_key_range`) and clear the
           intent.  The purge is idempotent; a crash mid-purge redoes it
           on recovery.  Routing is range-based, so leftover source
           entries are unreachable during the window anyway.
        """
        self._check_writable()
        if not 0 <= index < len(self.shards):
            raise IndexError(f"shard index {index} out of range 0..{len(self.shards) - 1}")
        with self._quiesced(index):
            if split_key is None:
                split_key = self._median_key(index)
                if split_key is None:
                    raise AcheronError(
                        f"shard {index} holds too few distinct keys to split"
                    )
            new_map = self.partition_map.split(index, split_key)  # validates the key
            return self._split_inline(
                index, split_key, new_map, shard_dir_name(self._next_shard_id)
            )

    def _split_inline(
        self, index: int, split_key: Any, new_map: PartitionMap, new_dir: str
    ) -> ShardSplitReport:
        """The split body; the caller holds the source quiesced."""
        source = self.shards[index]
        self._publish_layout(
            pending_split={
                "stage": "copy",
                "source": index,
                "split_key": split_key,
                "new_dir": new_dir,
            }
        )
        if self.directory is not None:
            target_path = self.directory / new_dir
            if target_path.exists():
                # A re-run after a crash mid-copy: the half-written target
                # is garbage (nothing routed to it yet); start clean.
                shutil.rmtree(target_path)
        # The target inherits the source's (possibly tuned) policy: a
        # split halves a shard's range, not its workload character.
        target = self._open_shard(new_dir, policy=self._shard_policies[index])
        moved = extract_live_range(source.tree, split_key)
        if moved:
            target.put_many(moved)
        # Make the copy durable through sstables (not just the WAL) before
        # the map flips: the purge stage must never depend on replaying a
        # tail the target had no chance to sync.
        target.flush()
        target.tree.write_barrier()

        self._next_shard_id += 1
        self.partition_map = new_map
        self._shard_dirs.insert(index + 1, new_dir)
        self.shards.insert(index + 1, target)
        self._shard_policies.insert(index + 1, self._shard_policies[index])
        if self._tuner is not None:
            # Window counts, streaks, and cooldowns are indexed by shard
            # position; the insert just renumbered everything after it.
            self._tuner.reset_topology()
        self._publish_layout(
            pending_split={
                "stage": "purge",
                "source": index,
                "split_key": split_key,
                "new_dir": new_dir,
            }
        )
        purge = self._purge_source(source, split_key)
        self._publish_layout()
        return ShardSplitReport(
            source=index,
            split_key=split_key,
            new_shard=index + 1,
            new_directory=new_dir if self.directory is not None else None,
            entries_moved=len(moved),
            purge=purge,
        )

    def _purge_source(self, source: AcheronEngine, split_key: Any) -> PurgeReport:
        purge = purge_key_range(source.tree, split_key)
        source.tree._persist_manifest()  # noqa: SLF001 - shard layer, by design
        source.tree._sync_wal_with_memtable()  # noqa: SLF001 - shard layer, by design
        return purge

    def _median_key(self, index: int) -> Any:
        """The median routable key of shard ``index`` (None: unsplittable)."""
        tree = self.shards[index].tree
        lo, hi = self.partition_map.shard_range(index)
        keys = {e.key for e in tree.memtable}
        for level in tree.iter_levels():
            for run in level.runs:
                for entry in run.iter_all_entries():
                    keys.add(entry.key)
        candidates = sorted(
            k for k in keys if (lo is None or k > lo) and (hi is None or k < hi)
        )
        return candidates[len(candidates) // 2] if candidates else None

    def _note_writes(self, index: int, count: int) -> None:
        """Feed routed writes to the auto-split controller; act on verdicts."""
        ctl = self._autosplit
        if ctl is None or not ctl.note_writes(index, count):
            return
        # Window boundary: gather the live backpressure signal (PR 4's
        # flush-queue depth; identically 0 for serial shards) and score.
        depths = {
            i: shard.tree.write_stats().get("queue_depth", 0)
            for i, shard in enumerate(self.shards)
        }
        target = ctl.evaluate(depths)
        if target is None:
            return
        tick = self.clock.now()
        try:
            self.split_shard(target)
        except AcheronError as exc:
            # An unsplittable hot shard (e.g. a single-key storm): log the
            # refusal; the controller's cooldown stops an immediate retry.
            ctl.record_refusal(target, tick, str(exc))
        else:
            ctl.record_split(target, tick)

    @property
    def auto_split_events(self) -> list[dict]:
        """Auto-split decision log (empty when the controller is off)."""
        return list(self._autosplit.events) if self._autosplit is not None else []

    def _note_memory(self, index: int, count: int) -> None:
        """Feed routed writes to the memory governor; apply its decisions."""
        gov = self._governor
        if gov is None or not gov.note_writes(index, count):
            return
        # Window boundary: re-sync the ledger if a split (auto or manual)
        # changed the topology since the last decision, then gather the
        # observed per-shard signals and let the controller score them.
        budget = gov.budget
        if budget is not None and budget.shard_count != len(self.shards):
            budget.rebind(
                [
                    (shard.tree.memtable_budget, shard.tree.cache.capacity)
                    for shard in self.shards
                ]
            )
        signals: dict[int, dict] = {}
        for i, shard in enumerate(self.shards):
            tree = shard.tree
            memtable = tree.memtable
            buffered = len(memtable)
            density = memtable.tombstone_count / buffered if buffered else 0.0
            fade = tree._fade  # noqa: SLF001 - shard layer, by design
            if fade is not None:
                # FADE's delete-pressure view: the share of on-disk files
                # still carrying live tombstone deadlines.
                nfiles = sum(
                    len(run.files)
                    for level in tree.iter_levels()
                    for run in level.runs
                )
                if nfiles:
                    density = max(density, fade.tracked_file_count() / nfiles)
            signals[i] = {
                "hits": tree.cache.hits,
                "misses": tree.cache.misses,
                "memtable_fill": buffered / max(1, memtable.capacity),
                "tombstone_density": density,
            }
        for decision in gov.evaluate(signals):
            tree = self.shards[decision["shard"]].tree
            if decision["cache_pages"] != tree.cache.capacity:
                tree.cache.resize(decision["cache_pages"])
            if decision["memtable_entries"] != tree.memtable_budget:
                tree.set_memtable_budget(decision["memtable_entries"])

    @property
    def memory_events(self) -> list[dict]:
        """Memory-governor decision log (empty when the governor is off)."""
        return list(self._governor.events) if self._governor is not None else []

    def _note_policy(self, index: int, kind: str, count: int = 1) -> None:
        """Feed routed ops to the policy tuner; apply its switch verdicts."""
        tuner = self._tuner
        if tuner is None or not tuner.note_ops(index, kind, count):
            return
        # Window boundary: gather each shard's live policy and observed
        # layout depth (the cost model's only tree-shape input) and let
        # the controller score the closed window.
        signals: dict[int, dict] = {}
        for i, shard in enumerate(self.shards):
            tree = shard.tree
            signals[i] = {
                "policy": tree.config.policy,
                "depth": max(1, tree.deepest_nonempty_level()),
                "size_ratio": tree.config.size_ratio,
                "entries_per_page": tree.config.entries_per_page,
            }
        tick = self.clock.now()
        for decision in tuner.evaluate(signals, tick):
            self._apply_policy(decision["shard"], decision["policy"])

    def _apply_policy(self, index: int, style: CompactionStyle) -> None:
        """Durably switch shard ``index`` to ``style``.

        Root first, shard second: ``_open_shard`` passes the root-recorded
        policy as an explicit config override, so a crash between the two
        publishes recovers onto the *new* policy either way -- the switch
        is atomic at the root manifest.  The shard-side
        :meth:`AcheronEngine.set_policy` is live-safe under background
        workers and schedules any transition compactions itself.
        """
        if self._shard_policies[index] is style:
            return
        self._shard_policies[index] = style
        self._publish_layout(
            pending_fanout=self._pending_fanout, pending_split=self._pending_split
        )
        self.shards[index].set_policy(style)

    @property
    def shard_policies(self) -> list[CompactionStyle]:
        """The live per-shard compaction policies (a snapshot)."""
        return list(self._shard_policies)

    @property
    def policy_events(self) -> list[dict]:
        """Policy-tuner decision log (empty when the tuner is off)."""
        return list(self._tuner.events) if self._tuner is not None else []

    def set_shard_policy(self, index: int, style: Any) -> bool:
        """Manually switch one shard's compaction policy; True on change.

        The same durable, live-safe path the tuner's decisions take --
        usable without arming the tuner (heterogeneous manual layouts).
        """
        self._check_writable()
        if not 0 <= index < len(self.shards):
            raise IndexError(
                f"shard index {index} out of range 0..{len(self.shards) - 1}"
            )
        style = _coerce_style(style)
        if self._shard_policies[index] is style:
            return False
        self._apply_policy(index, style)
        return True

    def set_policy(self, style: Any) -> int:
        """Switch every shard to ``style``; returns how many changed."""
        self._check_writable()
        style = _coerce_style(style)
        return sum(
            1 for index in range(len(self.shards))
            if self.set_shard_policy(index, style)
        )

    def rebalance(self, skew_threshold: float = 2.0) -> ShardSplitReport | None:
        """Split the largest shard when its size exceeds ``skew_threshold``
        times the mean shard size.  Returns None when balanced (or when the
        skewed shard has too few distinct keys to split)."""
        self._check_writable()
        sizes = [
            shard.tree.entry_count_on_disk + len(shard.tree.memtable)
            for shard in self.shards
        ]
        total = sum(sizes)
        if not total:
            return None
        mean = total / len(sizes)
        worst = max(range(len(sizes)), key=sizes.__getitem__)
        if sizes[worst] <= skew_threshold * mean:
            return None
        split_key = self._median_key(worst)
        if split_key is None:
            return None
        return self.split_shard(worst, split_key)

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._check_open()
        for shard in self.shards:
            shard.flush()

    def compact_all(self) -> None:
        self._check_open()
        for shard in self.shards:
            shard.compact_all()

    def advance_time(self, ticks: int) -> None:
        self._check_open()
        for shard in self.shards:
            shard.advance_time(ticks)

    def write_barrier(self) -> None:
        for shard in self.shards:
            shard.tree.write_barrier()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return any(shard.degraded for shard in self.shards)

    def stats(self) -> EngineStats:
        """One aggregated snapshot plus a per-shard breakdown section."""
        self._check_open()
        per = [shard.stats() for shard in self.shards]  # each barriers itself
        now = self.clock.now()
        counters: dict[str, int] = {}
        for st in per:
            for key, value in st.counters.items():
                counters[key] = counters.get(key, 0) + value
        if self._autosplit is not None:
            # Only present when the controller is armed, so stats from
            # undefended runs stay byte-identical to earlier releases.
            counters["auto_splits"] = self._autosplit.split_count
            counters["auto_split_refusals"] = (
                len(self._autosplit.events) - self._autosplit.split_count
            )
        if self._tuner is not None:
            # Same armed-only idiom as the governor and auto-split rows.
            counters["policy_switches"] = self._tuner.switch_count
        cache = _merge_numeric([st.cache for st in per])
        io = _sum_io(st.io for st in per)
        return EngineStats(
            io=io,
            amplification=self._merge_amplification(per),
            persistence=self._merged_persistence(per),
            shape=_merge_shape([st.shape for st in per]),
            counters=counters,
            flush_count=sum(st.flush_count for st in per),
            compaction_count=sum(st.compaction_count for st in per),
            cache_hit_rate=cache.get("hit_rate", 0.0),
            tick=now,
            cache=cache,
            read_path=_merge_read_path([st.read_path for st in per]),
            write_path=_merge_numeric(
                [st.write_path for st in per], prefix_subdicts=True
            ),
            shards=self._shard_summaries(per),
            fences=self._merge_fences([st.fences for st in per]),
            # Only populated when the governor is armed, so stats from
            # ungoverned runs stay byte-identical to earlier releases.
            memory=self._governor.summary() if self._governor is not None else None,
            # Same contract for the policy tuner.
            policy=self._tuner.summary() if self._tuner is not None else None,
        )

    @staticmethod
    def _merge_fences(rows: list[dict]) -> dict:
        """Shard-global fence row: counts sum, ages take the worst case."""
        ages = [r["oldest_age"] for r in rows if r.get("oldest_age") is not None]
        flags = [
            r["within_threshold"]
            for r in rows
            if r.get("within_threshold") is not None
        ]
        thresholds = [r["threshold"] for r in rows if r.get("threshold")]
        return {
            "live": sum(r.get("live", 0) for r in rows),
            "oldest_age": max(ages) if ages else None,
            "threshold": min(thresholds) if thresholds else 0,
            "within_threshold": all(flags) if flags else None,
            "entries_resolved_by_compaction": sum(
                r.get("entries_resolved_by_compaction", 0) for r in rows
            ),
        }

    def _merge_amplification(self, per: list[EngineStats]):
        amps = [st.amplification for st in per]
        total_bytes = sum(a.bytes_on_disk for a in amps)
        live_bytes = sum(a.live_bytes for a in amps)
        written_pages = sum(
            a.pages_written_flush
            + a.pages_written_compaction
            + a.pages_written_secondary_delete
            for a in amps
        )
        ingested = sum(
            shard.tree.counters["ingested_bytes"] for shard in self.shards
        )
        base = amps[0]
        return replace(
            base,
            write_amplification=(
                written_pages * self.config.page_size_bytes / ingested
                if ingested
                else 0.0
            ),
            space_amplification=(
                total_bytes / live_bytes
                if live_bytes
                else (float("inf") if total_bytes else 1.0)
            ),
            bytes_on_disk=total_bytes,
            live_bytes=live_bytes,
            tombstones_on_disk=sum(a.tombstones_on_disk for a in amps),
            entries_on_disk=sum(a.entries_on_disk for a in amps),
            pages_written_flush=sum(a.pages_written_flush for a in amps),
            pages_written_compaction=sum(a.pages_written_compaction for a in amps),
            pages_written_secondary_delete=sum(
                a.pages_written_secondary_delete for a in amps
            ),
            pages_read_query=sum(a.pages_read_query for a in amps),
            lookups=sum(a.lookups for a in amps),
        )

    def _merged_persistence(self, per: list[EngineStats]) -> PersistenceStats:
        """Shard-global delete persistence: percentiles over the merged
        latency population (each shard's latencies are durations in its
        own clock domain, directly comparable)."""
        stats = [st.persistence for st in per]
        latencies = sorted(
            latency
            for shard in self.shards
            if shard.tracker is not None
            for latency in shard.tracker.latencies
        )

        def percentile(fraction: float) -> int | None:
            if not latencies:
                return None
            index = min(len(latencies) - 1, max(0, round(fraction * len(latencies)) - 1))
            return latencies[index]

        ages = [s.oldest_pending_age for s in stats if s.oldest_pending_age is not None]
        thresholds = [s.threshold for s in stats if s.threshold is not None]
        return PersistenceStats(
            registered=sum(s.registered for s in stats),
            persisted=sum(s.persisted for s in stats),
            superseded=sum(s.superseded for s in stats),
            pending=sum(s.pending for s in stats),
            max_latency=latencies[-1] if latencies else None,
            mean_latency=(sum(latencies) / len(latencies)) if latencies else None,
            p50_latency=percentile(0.50),
            p99_latency=percentile(0.99),
            violations=sum(s.violations for s in stats),
            oldest_pending_age=max(ages) if ages else None,
            threshold=min(thresholds) if thresholds else None,
        )

    def _shard_summaries(self, per: list[EngineStats]) -> list[dict]:
        """The per-shard FADE/``D_th`` compliance rows (the ``shards``
        section of :class:`EngineStats`)."""
        rows = []
        for index, (shard, st) in enumerate(zip(self.shards, per)):
            lo, hi = self.partition_map.shard_range(index)
            p = st.persistence
            rows.append(
                {
                    "index": index,
                    "directory": self._shard_dirs[index]
                    if self.directory is not None
                    else None,
                    "range": describe_range(lo, hi),
                    "tick": st.tick,
                    "entries_on_disk": st.amplification.entries_on_disk,
                    "tombstones_on_disk": st.amplification.tombstones_on_disk,
                    "buffered_entries": len(shard.tree.memtable),
                    "pages_read": st.io.pages_read,
                    "pages_written": st.io.pages_written,
                    "flush_count": st.flush_count,
                    "compaction_count": st.compaction_count,
                    "deletes_registered": p.registered,
                    "deletes_pending": p.pending,
                    "oldest_pending_age": p.oldest_pending_age,
                    "violations": p.violations,
                    "d_th": p.threshold,
                    "compliant": p.compliant(),
                    "range_fences": st.fences["live"] if st.fences else 0,
                    "oldest_fence_age": st.fences["oldest_age"] if st.fences else None,
                    "policy": shard.tree.config.policy.value,
                    "policy_switches": shard.tree.policy_switches,
                }
            )
        return rows

    def persistence_stats(self) -> PersistenceStats:
        self._check_open()
        return self._merged_persistence([shard.stats() for shard in self.shards])

    def fence_stats(self) -> dict:
        """Shard-global range-tombstone fence row (see
        :meth:`AcheronEngine.fence_stats`)."""
        self._check_open()
        return self._merge_fences([shard.fence_stats() for shard in self.shards])

    def compliance_report(self) -> dict:
        """The shard-global compliance audit: aggregate + per-shard rows."""
        self._check_open()
        per = [shard.compliance_report() for shard in self.shards]
        aggregate = {
            "tick": self.clock.now(),
            "guarantee_ticks": self.config.delete_persistence_threshold,
            "shard_count": len(self.shards),
            "compliant": all(r["compliant"] for r in per),
        }
        for key in (
            "deletes_registered",
            "deletes_persisted",
            "deletes_superseded",
            "deletes_pending",
            "deadline_violations",
            "tombstones_on_disk",
            "logically_dead_bytes_on_disk",
            "range_fences_live",
        ):
            aggregate[key] = sum(r[key] for r in per)
        ages = [
            r["oldest_pending_age"] for r in per if r["oldest_pending_age"] is not None
        ]
        aggregate["oldest_pending_age"] = max(ages) if ages else None
        fence_ages = [
            r["oldest_fence_age"] for r in per if r["oldest_fence_age"] is not None
        ]
        aggregate["oldest_fence_age"] = max(fence_ages) if fence_ages else None
        fence_flags = [
            r["fences_within_threshold"]
            for r in per
            if r["fences_within_threshold"] is not None
        ]
        aggregate["fences_within_threshold"] = (
            all(fence_flags) if fence_flags else None
        )
        aggregate["shards"] = [
            {"index": i, "range": describe_range(*self.partition_map.shard_range(i)), **r}
            for i, r in enumerate(per)
        ]
        return aggregate

    def verify_invariants(self) -> None:
        """Per-shard tree invariants plus the routing invariant: every key
        physically resident in a shard must route to that shard."""
        self._check_open()
        for index, shard in enumerate(self.shards):
            shard.verify_invariants()
            lo, hi = self.partition_map.shard_range(index)
            for key in self._resident_key_probes(shard):
                if (lo is not None and key < lo) or (hi is not None and key >= hi):
                    raise InvariantViolationError(
                        f"shard {index} {describe_range(lo, hi)} holds key {key!r} "
                        "outside its assigned range"
                    )

    @staticmethod
    def _resident_key_probes(shard: AcheronEngine) -> Iterator[Any]:
        """Cheap coverage of a shard's resident key range: every buffered
        key plus every file's min/max key (interval membership suffices)."""
        tree = shard.tree
        for entry in tree.memtable:
            yield entry.key
        for level in tree.iter_levels():
            for run in level.runs:
                for file in run.files:
                    yield file.min_key
                    yield file.max_key
