"""Bounded key-range extraction and purge: the mechanics of a shard split.

A split hands the upper half of one shard's key range to a fresh shard.
Two primitives implement it against a *quiesced* tree (the caller holds
the write path inline -- see ``ShardedEngine.split_shard``):

:func:`extract_live_range`
    The *copy* side: resolve every visible put with ``key >= split_key``
    (newest version wins, tombstones suppress) and return it as
    ``(key, value, delete_key)`` triples ready for ``put_many`` on the
    target shard.  Delete keys are preserved so KiWi secondary deletes
    keep classifying the moved entries exactly as before the split.
    Tombstones are *not* copied: the target receives only live data, so
    its ``D_th`` ledger starts clean.

:func:`purge_key_range`
    The *handoff* side: a bounded key-range compaction of the source.
    Every entry -- put, shadowed version, or tombstone -- with
    ``key >= split_key`` is dropped; affected runs are rewritten in place
    (levels preserved), the memtable is trimmed, and dropped tombstones
    are reported to the lifecycle listener as *persisted*: the entire key
    range leaves this shard for good, so every older version a tombstone
    guarded is physically gone from it -- the per-shard ``D_th`` clock
    stops, it does not migrate.

Both primitives charge simulated I/O in the ``compaction`` category (a
split *is* a compaction that writes its output elsewhere), and the purge
follows the same crash discipline as every structural rewrite: files are
swapped through ``on_file_added``/``on_file_removed`` and the caller
persists the manifest once at the end, so a crash mid-purge recovers to
the pre-purge structure and the (idempotent) purge is simply redone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.lsm.iterator import merge_resolve
from repro.lsm.run import Run, build_files
from repro.storage.disk import CATEGORY_COMPACTION, IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree


@dataclass
class PurgeReport:
    """What one bounded key-range purge removed from the source shard."""

    split_key: Any
    entries_dropped: int = 0
    tombstones_dropped: int = 0
    memtable_entries_dropped: int = 0
    files_rewritten: int = 0
    files_emptied: int = 0
    io: IOStats = field(default_factory=IOStats)


def extract_live_range(tree: "LSMTree", split_key: Any) -> list[tuple]:
    """Resolved live ``(key, value, delete_key)`` triples with ``key >= split_key``.

    Charges one read per page of every file whose key range reaches
    ``split_key`` (the pages a real engine would stream through the merge).
    The tree must be quiesced (no frozen memtables in flight).
    """
    sources = [[e for e in tree.memtable if e.key >= split_key]]
    pages_to_read = 0
    for level in tree.iter_levels():
        for run in level.runs:
            for file in run.files:
                if file.max_key is not None and file.max_key >= split_key:
                    pages_to_read += file.page_count
                    sources.append(
                        [e for e in file.iter_all_entries() if e.key >= split_key]
                    )
    if pages_to_read:
        tree.disk.read_pages(pages_to_read, CATEGORY_COMPACTION)
    return [
        (e.key, e.value, e.delete_key)
        for e in merge_resolve([s for s in sources if s])
        if e.is_put
    ]


def purge_key_range(tree: "LSMTree", split_key: Any) -> PurgeReport:
    """Drop every entry with ``key >= split_key`` from ``tree`` (idempotent).

    The caller persists the manifest / WAL afterwards (see module
    docstring); this function only restructures the in-memory tree and
    charges I/O.
    """
    report = PurgeReport(split_key=split_key)
    before = tree.disk.snapshot()
    now = tree.clock.now()
    listener = tree.listener

    # -- lifecycle: resolve the doomed range once, like a compaction ----
    # Every version of every key >= split_key leaves this shard, so the
    # winning tombstone of each doomed key is *persisted* (nothing it
    # guards survives here) and shadowed tombstones are *superseded* --
    # exactly the classification a merge of these sources would emit.
    doomed_sources: list[list] = [[e for e in tree.memtable if e.key >= split_key]]
    for level in tree.iter_levels():
        for run in level.runs:
            if run.max_key is not None and run.max_key >= split_key:
                doomed_sources.append(
                    [e for e in run.iter_all_entries() if e.key >= split_key]
                )

    def on_shadowed(loser: Any, winner: Any) -> None:
        if loser.is_tombstone:
            report.tombstones_dropped += 1
            if listener is not None:
                listener.tombstone_superseded(loser, now)

    for entry in merge_resolve([s for s in doomed_sources if s], on_shadowed):
        if entry.is_tombstone:
            report.tombstones_dropped += 1
            if listener is not None:
                listener.tombstone_persisted(entry, now)

    # -- memtable: pure in-memory trim (mirrors the KiWi memtable path) --
    doomed = [e.key for e in tree.memtable if e.key >= split_key]
    for key in doomed:
        tree.memtable._map.remove(key)  # noqa: SLF001 - core module, by design
    report.memtable_entries_dropped = len(doomed)

    # -- on-disk runs: bounded rewrite of every run reaching the range --
    for level in tree.iter_levels():
        for run in list(level.runs):
            if run.max_key is None or run.max_key < split_key:
                continue
            tree.disk.read_pages(run.page_count, CATEGORY_COMPACTION)
            survivors = []
            dropped_here = 0
            for entry in run.iter_all_entries():
                if entry.key < split_key:
                    survivors.append(entry)
                else:
                    dropped_here += 1
            if dropped_here == 0:
                continue
            report.entries_dropped += dropped_here
            for file in run.files:
                tree.cache.invalidate_file(file.file_id)
                tree.on_file_removed(file, level.index)
            if survivors:
                new_files = build_files(
                    survivors, tree.config, tree.file_ids, now,
                    level=level.index, salt=tree.bloom_salt,
                )
                pages = sum(f.page_count for f in new_files)
                tree.disk.write_pages(pages, CATEGORY_COMPACTION)
                report.files_rewritten += len(new_files)
                for file in new_files:
                    tree.on_file_added(file, level.index)
                level.replace_run(run, Run(new_files))
            else:
                report.files_emptied += len(run.files)
                level.replace_run(run, None)

    report.io = tree.disk.delta_since(before)
    return report
