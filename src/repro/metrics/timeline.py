"""Time-series sampling: the data behind the demo's live charts.

The on-stage demo plotted engine state evolving as the workload ran --
tombstone counts sinking, space amplification breathing with compactions,
the pending-delete exposure being clamped by FADE.  A
:class:`TimelineSampler` captures exactly those series: call
:meth:`sample` at any cadence (the workload runner can do it every N
operations) and render the result as aligned text charts.

Series are plain lists of (tick, value) so benchmarks can archive them and
tests can assert on their shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.metrics.amplification import space_amplification, write_amplification
from repro.metrics.reporting import sparkline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import AcheronEngine

#: The series every sample records.
SERIES = (
    "entries_on_disk",
    "tombstones_on_disk",
    "pending_deletes",
    "space_amplification",
    "write_amplification",
    "compactions",
)


@dataclass
class Timeline:
    """Sampled engine state over time."""

    ticks: list[int] = field(default_factory=list)
    series: dict[str, list[float]] = field(
        default_factory=lambda: {name: [] for name in SERIES}
    )

    def __len__(self) -> int:
        return len(self.ticks)

    def values(self, name: str) -> list[float]:
        return self.series[name]

    def final(self, name: str) -> float:
        values = self.series[name]
        if not values:
            raise ValueError("timeline has no samples yet")
        return values[-1]

    def peak(self, name: str) -> float:
        values = self.series[name]
        if not values:
            raise ValueError("timeline has no samples yet")
        return max(values)

    def render(self, width: int = 60) -> str:
        """All series as labeled text sparklines."""
        if not self.ticks:
            return "(no samples)"
        lines = [f"timeline: {len(self.ticks)} samples, ticks {self.ticks[0]}..{self.ticks[-1]}"]
        label_width = max(len(name) for name in SERIES)
        for name in SERIES:
            values = self.series[name]
            chart = sparkline(values, width=width)
            lines.append(
                f"  {name.ljust(label_width)} |{chart}| "
                f"{values[-1]:,.2f} (peak {max(values):,.2f})"
            )
        return "\n".join(lines)


class TimelineSampler:
    """Samples one engine into a :class:`Timeline`.

    ``every`` is a tick interval: :meth:`maybe_sample` is O(1) when no
    sample is due, so it can be called per operation.
    """

    def __init__(self, engine: "AcheronEngine", every: int = 1_000) -> None:
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1 tick, got {every}")
        self.engine = engine
        self.every = every
        self.timeline = Timeline()
        self._next_due = 0

    def maybe_sample(self) -> bool:
        """Sample if the interval elapsed; returns True when it did."""
        now = self.engine.clock.now()
        if now < self._next_due:
            return False
        self.sample()
        return True

    def sample(self) -> None:
        """Record one sample unconditionally."""
        engine = self.engine
        tree = engine.tree
        now = tree.clock.now()
        pending = engine.tracker.pending_count if engine.tracker else 0
        self.timeline.ticks.append(now)
        series = self.timeline.series
        series["entries_on_disk"].append(float(tree.entry_count_on_disk))
        series["tombstones_on_disk"].append(float(tree.tombstone_count_on_disk))
        series["pending_deletes"].append(float(pending))
        series["space_amplification"].append(space_amplification(tree))
        series["write_amplification"].append(write_amplification(tree))
        series["compactions"].append(float(len(tree.compaction_log)))
        self._next_due = now + self.every
