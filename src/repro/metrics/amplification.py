"""Write, space, and read amplification.

Definitions follow the paper's conventions:

* **write amplification** -- total bytes written to the device (flush +
  compaction + secondary-delete rewrites) divided by the logical bytes the
  user ingested.  A pure append store has WA = 1; leveling typically pays
  O(T * L); FADE's expiry compactions add the paper's +4-25% on top.
* **space amplification** -- bytes occupied on the device divided by the
  bytes of *live* (logically visible) data.  Tombstones and the stale
  versions they have not yet purged are exactly the overhead; this is the
  metric FADE improves by 2.1-9.8x in the paper's claims.
* **read cost** -- device pages read per lookup, reported by I/O category.

All byte figures use the configured logical entry sizes (the engine is
value-agnostic; see :class:`~repro.config.LSMConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.lsm.iterator import merge_resolve
from repro.storage.disk import (
    CATEGORY_COMPACTION,
    CATEGORY_FLUSH,
    CATEGORY_QUERY,
    CATEGORY_SECONDARY_DELETE,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree


@dataclass(frozen=True)
class AmplificationReport:
    """One measurement point of the three amplification metrics."""

    write_amplification: float
    space_amplification: float
    bytes_on_disk: int
    live_bytes: int
    tombstones_on_disk: int
    entries_on_disk: int
    pages_written_flush: int
    pages_written_compaction: int
    pages_written_secondary_delete: int
    pages_read_query: int
    lookups: int

    @property
    def pages_read_per_lookup(self) -> float:
        return self.pages_read_query / self.lookups if self.lookups else 0.0


def bytes_on_disk(tree: "LSMTree") -> int:
    """Logical bytes occupied by every on-disk entry (incl. tombstones)."""
    total = 0
    put_bytes = tree.config.entry_bytes(is_tombstone=False)
    del_bytes = tree.config.entry_bytes(is_tombstone=True)
    for level in tree.iter_levels():
        tombstones = level.tombstone_count
        puts = level.entry_count - tombstones
        total += puts * put_bytes + tombstones * del_bytes
    return total


def live_bytes_on_disk(tree: "LSMTree") -> int:
    """Logical bytes of the *visible* on-disk data.

    Resolves every on-disk version (newest wins, tombstones suppress) and
    prices the surviving puts.  O(N); called at measurement points only,
    never on the operational path, and charges no simulated I/O.
    """
    sources = []
    for level in tree.iter_levels():
        for run in level.runs:
            sources.append(run.iter_all_entries())
    live = sum(1 for e in merge_resolve(sources) if e.is_put)
    return live * tree.config.entry_bytes(is_tombstone=False)


def space_amplification(tree: "LSMTree") -> float:
    """bytes-on-disk / live-bytes (>= 1.0; inf for a tree of pure garbage)."""
    total = bytes_on_disk(tree)
    live = live_bytes_on_disk(tree)
    if live == 0:
        return float("inf") if total else 1.0
    return total / live


def write_amplification(tree: "LSMTree") -> float:
    """device-bytes-written / user-bytes-ingested (0.0 before any ingest)."""
    ingested = tree.counters["ingested_bytes"]
    if ingested == 0:
        return 0.0
    writes = tree.disk.stats.writes_by_category
    pages = (
        writes.get(CATEGORY_FLUSH, 0)
        + writes.get(CATEGORY_COMPACTION, 0)
        + writes.get(CATEGORY_SECONDARY_DELETE, 0)
    )
    return pages * tree.config.page_size_bytes / ingested


def read_cost_breakdown(tree: "LSMTree") -> dict[str, int]:
    """Pages read so far, keyed by I/O category."""
    return dict(tree.disk.stats.reads_by_category)


def measure_amplification(tree: "LSMTree") -> AmplificationReport:
    """Snapshot all three amplification metrics for ``tree``."""
    writes = tree.disk.stats.writes_by_category
    reads = tree.disk.stats.reads_by_category
    return AmplificationReport(
        write_amplification=write_amplification(tree),
        space_amplification=space_amplification(tree),
        bytes_on_disk=bytes_on_disk(tree),
        live_bytes=live_bytes_on_disk(tree),
        tombstones_on_disk=tree.tombstone_count_on_disk,
        entries_on_disk=tree.entry_count_on_disk,
        pages_written_flush=writes.get(CATEGORY_FLUSH, 0),
        pages_written_compaction=writes.get(CATEGORY_COMPACTION, 0),
        pages_written_secondary_delete=writes.get(CATEGORY_SECONDARY_DELETE, 0),
        pages_read_query=reads.get(CATEGORY_QUERY, 0),
        lookups=tree.counters["gets"],
    )
