"""Plain-text table rendering for benchmark and demo output.

Every experiment in ``benchmarks/`` prints its rows through
:func:`format_table` so the regenerated tables and figures share one look
and are easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence


def _render_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        magnitude = abs(value)
        if magnitude and (magnitude >= 100_000 or magnitude < 0.01):
            return f"{value:.3e}"
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (numbers right-aligned)."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str], original: Sequence[Any] | None = None) -> str:
        parts = []
        for i, cell in enumerate(cells):
            right = original is not None and isinstance(original[i], (int, float))
            parts.append(cell.rjust(widths[i]) if right else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(rule)
    lines.append(fmt_row(list(headers)))
    lines.append(rule)
    for original, row in zip(rows, rendered):
        lines.append(fmt_row(row, original))
    lines.append(rule)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> None:
    """Convenience wrapper: render and print with surrounding blank lines."""
    print()
    print(format_table(headers, rows, title=title))
    print()


_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values, width: int = 60) -> str:
    """Render ``values`` as a fixed-width text sparkline.

    Values are downsampled (bucket means) to ``width`` characters and
    mapped onto a 10-step density ramp, min-to-max normalized.  Flat
    series render as a mid-level line.  ASCII-only so the charts survive
    any terminal and diff cleanly in archived experiment output.
    """
    values = [float(v) for v in values]
    if not values:
        return " " * width
    if len(values) > width:
        buckets = []
        for i in range(width):
            start = i * len(values) // width
            end = max(start + 1, (i + 1) * len(values) // width)
            chunk = values[start:end]
            buckets.append(sum(chunk) / len(chunk))
        values = buckets
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return (_SPARK_LEVELS[5] * len(values)).ljust(width)
    chars = []
    top = len(_SPARK_LEVELS) - 1
    for value in values:
        index = round((value - lo) / span * top)
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars).ljust(width)
