"""Measurement: amplification metrics, tree shape, table rendering.

Everything here is read-only over a tree/engine; computing a metric never
charges the simulated disk (measurement must not perturb the experiment).
"""

from repro.metrics.amplification import (
    AmplificationReport,
    bytes_on_disk,
    live_bytes_on_disk,
    measure_amplification,
    read_cost_breakdown,
    space_amplification,
    write_amplification,
)
from repro.metrics.readpath import format_cache, format_read_path, read_path_report
from repro.metrics.reporting import format_table, print_table, sparkline
from repro.metrics.server import format_server_load, server_load_report
from repro.metrics.shape import LevelSummary, tree_shape
from repro.metrics.timeline import Timeline, TimelineSampler
from repro.metrics.writepath import format_workers, format_write_path, write_path_report

__all__ = [
    "AmplificationReport",
    "LevelSummary",
    "Timeline",
    "TimelineSampler",
    "bytes_on_disk",
    "format_cache",
    "format_read_path",
    "format_server_load",
    "format_table",
    "format_workers",
    "format_write_path",
    "live_bytes_on_disk",
    "measure_amplification",
    "read_cost_breakdown",
    "read_path_report",
    "print_table",
    "server_load_report",
    "space_amplification",
    "sparkline",
    "tree_shape",
    "write_amplification",
    "write_path_report",
]
