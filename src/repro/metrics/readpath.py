"""Read-path observability: cache effectiveness and pruning counters.

The read overhaul made lookups skip runs by fence pointers and Bloom
filters before paying any page I/O, and put a sharded admission cache under
every page read.  This module turns the raw counters the tree keeps
(:meth:`LSMTree.read_stats`) into JSON-safe reports and rendered tables so
experiments can show *why* a configuration's read amplification looks the
way it does -- how many run probes the pruning order avoided, and how much
of the remaining I/O the cache absorbed.

Read-only over the tree; computing a report never charges the simulated
disk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.metrics.reporting import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree


def read_path_report(tree: "LSMTree") -> dict[str, Any]:
    """JSON-safe read-path snapshot: ``cache`` section + per-level rows.

    Delegates to :meth:`LSMTree.read_stats` (which also mirrors the
    cache's hit/miss/eviction totals into ``tree.counters``) and adds the
    tree-wide aggregates: total run probes, total skips, and the fraction
    of run visits the pruning order answered without page I/O.
    """
    report = tree.read_stats()
    levels = report["levels"]
    probes = sum(row["lookup_probes"] for row in levels)
    skips = sum(
        row["lookup_skips_range"]
        + row["lookup_skips_bloom"]
        + row["lookup_skips_fence"]
        for row in levels
    )
    considered = probes + skips
    report["lookup_run_probes"] = probes
    report["lookup_run_skips"] = skips
    report["lookup_prune_rate"] = skips / considered if considered else 0.0
    return report


def format_read_path(tree: "LSMTree", name: str = "tree") -> str:
    """Per-level pruning counters as an aligned table."""
    report = read_path_report(tree)
    rows = [
        [
            f"L{row['level']}",
            row["lookup_probes"],
            row["lookup_skips_range"],
            row["lookup_skips_bloom"],
            row["lookup_skips_fence"],
            row["lookup_cache_direct"],
            row["lookup_serves"],
            row["scan_runs_pruned"],
        ]
        for row in report["levels"]
    ]
    rows.append(
        [
            "total",
            report["lookup_run_probes"],
            sum(r["lookup_skips_range"] for r in report["levels"]),
            sum(r["lookup_skips_bloom"] for r in report["levels"]),
            sum(r["lookup_skips_fence"] for r in report["levels"]),
            sum(r["lookup_cache_direct"] for r in report["levels"]),
            sum(r["lookup_serves"] for r in report["levels"]),
            sum(r["scan_runs_pruned"] for r in report["levels"]),
        ]
    )
    return format_table(
        ["level", "probes", "skip:range", "skip:bloom", "skip:fence", "cache-direct", "serves", "scan-pruned"],
        rows,
        title=f"[{name}] read-path pruning (prune rate "
        f"{report['lookup_prune_rate']:.0%})",
    )


def format_cache(tree: "LSMTree", name: str = "tree") -> str:
    """The cache section as an aligned two-column table."""
    stats = tree.cache.stats()
    rows = [
        ["capacity (pages)", stats["capacity_pages"]],
        ["shards", stats["shards"]],
        ["cached pages", stats["cached_pages"]],
        ["pinned pages", stats["pinned_pages"]],
        ["bytes (entries)", stats["bytes"]],
        ["hits", stats["hits"]],
        ["misses", stats["misses"]],
        ["hit rate", stats["hit_rate"]],
        ["evictions", stats["evictions"]],
        ["rejected admissions", stats["rejected_admissions"]],
        ["invalidations", stats["invalidations"]],
        ["hardened", stats.get("hardened", False)],
        ["doorkeeper rejections", stats.get("doorkeeper_rejections", 0)],
        ["negative-guard drops", stats.get("negative_guard_drops", 0)],
    ]
    return format_table(
        ["block cache", "value"], rows, title=f"[{name}] cache"
    )
