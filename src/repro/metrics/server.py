"""Served-engine observability: admission, shedding, and throughput.

The mirror of :mod:`repro.metrics.writepath` for the network front door:
turns the server's raw admission counters (the ``server`` section of
:class:`~repro.core.engine.EngineStats`, produced by
:meth:`~repro.server.core.EngineServer.server_report`) into derived
aggregates and a rendered table.  Experiments use it to show *where
requests went* -- how many were executed, how many were shed at the door
(and by which signal: pipelining cap, queue depth, hot shard, flush
backpressure), and how much of the shed volume was the pipeline-abort
suffix rather than the triggering request.

Read-only over the report dict; works on a live server's
``server_report()`` or on a stats dict a client fetched over the wire.
"""

from __future__ import annotations

from typing import Any

from repro.metrics.reporting import format_table


def server_load_report(server: dict[str, Any]) -> dict[str, Any]:
    """Derived aggregates over a raw ``server`` counters section.

    Adds:

    ``shed_rate``
        Shed responses as a fraction of all admission decisions
        (accepted + shed) -- the headline admission-pressure number.
    ``abort_amplification``
        Pipeline-abort responses per triggering shed (how much suffix
        each shed dragged down with it; 0 when nothing was shed).
    ``completion_rate``
        Completed over accepted (1.0 once the server is drained).
    """
    shed = server.get("shed_total", 0)
    accepted = server.get("accepted", 0)
    decisions = accepted + shed
    aborts = server.get("pipeline_aborts", 0)
    return {
        **server,
        "shed_rate": shed / decisions if decisions else 0.0,
        "abort_amplification": aborts / shed if shed else 0.0,
        "completion_rate": server.get("completed", 0) / accepted if accepted else 0.0,
    }


def format_server_load(server: dict[str, Any], name: str = "server") -> str:
    """The served-engine report as an aligned two-column table."""
    report = server_load_report(server)
    queue_depths = report.get("queue_depths", [])
    hot = report.get("hot_shards", [])
    rows = [
        ["workers x shards", f"{report.get('workers', 0)} x {report.get('shards', 0)}"],
        ["connections (open/ever)",
         f"{report.get('connections_open', 0)}/{report.get('connections_opened', 0)}"],
        ["requests accepted", report.get("accepted", 0)],
        ["requests completed", report.get("completed", 0)],
        ["completion rate", f"{report['completion_rate']:.3f}"],
        ["barrier ops", report.get("barrier_ops", 0)],
        ["scatter batches", report.get("scatter_batches", 0)],
        ["shed total", report.get("shed_total", 0)],
        ["shed rate", f"{report['shed_rate']:.4f}"],
        ["  shed: in-flight cap", report.get("shed_inflight", 0)],
        ["  shed: queue depth", report.get("shed_queue", 0)],
        ["  shed: hot shard", report.get("shed_hot_shard", 0)],
        ["  shed: backpressure", report.get("shed_backpressure", 0)],
        ["pipeline aborts", report.get("pipeline_aborts", 0)],
        ["abort amplification", f"{report['abort_amplification']:.2f}"],
        ["hot windows flagged", report.get("hot_windows", 0)],
        ["hot shards (now)", ", ".join(map(str, hot)) if hot else "(none)"],
        ["executor queues (now)", "/".join(map(str, queue_depths)) or "(none)"],
        ["bad requests", report.get("bad_requests", 0)],
        ["engine errors", report.get("engine_errors", 0)],
        ["protocol errors", report.get("protocol_errors", 0)],
    ]
    return format_table(["served engine", "value"], rows, title=f"[{name}] admission")
