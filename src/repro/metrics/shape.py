"""Tree-shape summaries: the data behind the demo's per-level view.

The Acheron demonstration's central visual is a per-level table -- how many
runs/files/entries each level holds, how many are tombstones, and how old
the oldest tombstone is (i.e. how close the level is to its FADE deadline).
:func:`tree_shape` computes exactly those rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree


@dataclass(frozen=True)
class LevelSummary:
    """One row of the per-level table."""

    index: int
    runs: int
    files: int
    pages: int
    entries: int
    tombstones: int
    capacity: int
    oldest_tombstone_age: int | None

    @property
    def tombstone_fraction(self) -> float:
        return self.tombstones / self.entries if self.entries else 0.0

    @property
    def fill_fraction(self) -> float:
        return self.entries / self.capacity if self.capacity else 0.0


def tree_shape(tree: "LSMTree") -> list[LevelSummary]:
    """Per-level summaries, shallow to deep (empty trailing levels kept)."""
    now = tree.clock.now()
    rows = []
    for level in tree.iter_levels():
        oldest: int | None = None
        file_count = 0
        for file in level.iter_files():
            file_count += 1
            t = file.oldest_tombstone_time
            if t is not None and (oldest is None or t < oldest):
                oldest = t
        rows.append(
            LevelSummary(
                index=level.index,
                runs=level.run_count,
                files=file_count,
                pages=level.page_count,
                entries=level.entry_count,
                tombstones=level.tombstone_count,
                capacity=tree.config.level_capacity_entries(level.index),
                oldest_tombstone_age=(now - oldest) if oldest is not None else None,
            )
        )
    return rows
