"""Write-path observability: flush pipeline, compaction pool, stalls.

The concurrent write path moved flushes and compactions off the writer's
thread (:mod:`repro.lsm.writepath`); this module turns the controller's
raw counters (:meth:`LSMTree.write_stats`) into JSON-safe reports and
rendered tables, the mirror of :mod:`repro.metrics.readpath` for the
ingest side.  Experiments use it to show *where* ingest time went -- how
often the memtable rotated, how many memtables each background flush
absorbed, how deep the job queue ran, and how long writers sat in soft
delays or hard stalls.

Serial trees report the inline equivalents (no queue, no stalls), so the
same table renders for both modes and a serial/concurrent comparison is a
diff of two identical layouts.

Read-only over the tree; computing a report never charges the simulated
disk.  Note that in concurrent mode :meth:`LSMTree.write_stats` reads
live counters without quiescing the workers -- numbers are coherent
per-field but may be mid-job; call :meth:`LSMTree.write_barrier` first
for an at-rest snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.metrics.reporting import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree


def write_path_report(tree: "LSMTree") -> dict[str, Any]:
    """JSON-safe write-path snapshot plus derived aggregates.

    Adds to the raw controller counters:

    ``flush_batching``
        Mean memtables absorbed per background flush job (> 1.0 means
        the pipeline coalesced rotations while a flush was running --
        the main source of concurrent ingest speedup).
    ``mean_flush_ms`` / ``mean_compaction_ms``
        Mean wall-clock per background job.
    ``stalled``
        Whether backpressure ever engaged (soft or hard).
    """
    report = tree.write_stats()
    flush_jobs = report["flush_jobs"]
    compaction_jobs = report["compaction_jobs"]
    report["flush_batching"] = (
        report["flush_memtables"] / flush_jobs if flush_jobs else 0.0
    )
    report["mean_flush_ms"] = (
        report["flush_wall_ms"] / flush_jobs if flush_jobs else 0.0
    )
    report["mean_compaction_ms"] = (
        report["compaction_wall_ms"] / compaction_jobs if compaction_jobs else 0.0
    )
    report["stalled"] = bool(report["soft_delays"] or report["hard_stalls"])
    return report


def format_write_path(tree: "LSMTree", name: str = "tree") -> str:
    """The write-path report as an aligned two-column table."""
    report = write_path_report(tree)
    rows = [
        ["mode", report["mode"]],
        ["workers", report["workers"]],
        ["memtable rotations", report["rotations"]],
        ["flush queue depth (now/peak)", f"{report['queue_depth']}/{report['queue_peak']}"],
        ["flush jobs", report["flush_jobs"]],
        ["memtables per flush", f"{report['flush_batching']:.2f}"],
        ["entries flushed", report["flush_entries"]],
        ["mean flush (ms)", f"{report['mean_flush_ms']:.3f}"],
        ["compaction jobs", report["compaction_jobs"]],
        ["compactions in flight (now/peak)",
         f"{report['compaction_inflight']}/{report['compaction_inflight_peak']}"],
        ["mean compaction (ms)", f"{report['mean_compaction_ms']:.3f}"],
        ["soft delays", report["soft_delays"]],
        ["hard stalls", report["hard_stalls"]],
        ["stall time (s)", f"{report['stall_seconds']:.4f}"],
    ]
    return format_table(
        ["write path", "value"],
        rows,
        title=f"[{name}] write path ({report['mode']})",
    )


def format_workers(tree: "LSMTree", name: str = "tree") -> str:
    """Pages written per background worker thread, as a table.

    Serial trees have no workers; the table renders a single ``(inline)``
    row so callers need not special-case the mode.
    """
    report = tree.write_stats()
    by_worker = report["pages_written_by_worker"]
    if by_worker:
        rows = [[worker, pages] for worker, pages in sorted(by_worker.items())]
    else:
        rows = [["(inline)", tree.disk.stats.pages_written]]
    return format_table(
        ["worker", "pages written"], rows, title=f"[{name}] worker throughput"
    )
