"""Fence pointers: in-memory min/max indexes over ordered extents.

A :class:`FenceIndex` is built over any sequence of extents (tiles within a
file, pages within a tile, files within a run) that are **sorted by their
min bound and mutually disjoint**.  It answers two questions without I/O:

* which single extent *can* contain a point key, and
* which contiguous span of extents overlaps a range.

KiWi uses two fence granularities per file: tiles are fenced on the sort
key, and pages inside a tile are fenced on the *delete* key (that second
index is what lets a secondary range delete find droppable pages for free).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Sequence


class FenceIndex:
    """Binary-searchable (min, max) bounds over disjoint sorted extents.

    ``mins`` and ``maxes`` are exposed as plain attributes (no property
    dispatch): the read hot paths bind them once and run C-level bisects
    directly.  They are logically immutable -- callers must never mutate
    them (every structural change builds a new index).
    """

    __slots__ = ("mins", "maxes")

    def __init__(self, mins: Sequence[Any], maxes: Sequence[Any]) -> None:
        if len(mins) != len(maxes):
            raise ValueError("fence mins and maxes must have equal length")
        for lo, hi in zip(mins, maxes):
            if lo > hi:
                raise ValueError(f"fence extent has min {lo!r} > max {hi!r}")
        for i in range(1, len(mins)):
            if mins[i] <= maxes[i - 1]:
                raise ValueError(
                    f"fence extents must be disjoint and sorted; extent {i} "
                    f"starts at {mins[i]!r} <= previous max {maxes[i - 1]!r}"
                )
        self.mins = list(mins)
        self.maxes = list(maxes)

    @classmethod
    def over(cls, extents: Sequence[Any], min_attr: str, max_attr: str) -> "FenceIndex":
        """Build from objects exposing min/max attributes."""
        return cls(
            [getattr(e, min_attr) for e in extents],
            [getattr(e, max_attr) for e in extents],
        )

    def __len__(self) -> int:
        return len(self.mins)

    def locate(self, key: Any) -> int | None:
        """Index of the unique extent whose [min, max] contains ``key``."""
        if not self.mins:
            return None
        idx = bisect_right(self.mins, key) - 1
        if idx < 0:
            return None
        return idx if key <= self.maxes[idx] else None

    def overlapping(self, lo: Any, hi: Any) -> range:
        """Indexes of every extent intersecting ``[lo, hi]`` (may be empty)."""
        if lo > hi or not self.mins:
            return range(0)
        first = bisect_left(self.maxes, lo)  # first extent with max >= lo
        last = bisect_right(self.mins, hi)  # one past the last with min <= hi
        return range(first, last) if first < last else range(0)

    def min_bound(self) -> Any:
        return self.mins[0] if self.mins else None

    def max_bound(self) -> Any:
        return self.maxes[-1] if self.maxes else None
