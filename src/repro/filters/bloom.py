"""A Bloom filter with a configurable bits-per-key budget.

One filter guards each file (SSTable): a point lookup probes the filter
before paying any page read, so a negative skips the file entirely.  The
memory budget (``bits_per_key``) is the knob the T2 experiment sweeps --
fewer bits means more false positives, means more wasted page reads, and
tombstone-laden trees amplify that waste (the F8 experiment).

Hashing uses ``blake2b`` split into two 64-bit halves combined with the
Kirsch-Mitzenmacher double-hashing scheme, so membership answers are
deterministic across processes (Python's builtin ``hash`` is salted per
process and would break reproducibility).
"""

from __future__ import annotations

import math
from hashlib import blake2b
from typing import Any, Iterable


def _key_bytes(key: Any) -> bytes:
    """Canonical byte encoding of a key for hashing."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        length = max(1, (key.bit_length() + 8) // 8)
        return key.to_bytes(length, "little", signed=True)
    return repr(key).encode("utf-8")


class BloomFilter:
    """An approximate-membership filter over a fixed key set.

    Built once (at file-construction time) from the full key list; the
    engine never inserts into a live filter, matching how LSM engines build
    per-SSTable filters during compaction.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "probes", "false_positive_budget")

    def __init__(self, num_keys: int, bits_per_key: float) -> None:
        if num_keys < 0:
            raise ValueError(f"num_keys must be >= 0, got {num_keys}")
        if bits_per_key < 0:
            raise ValueError(f"bits_per_key must be >= 0, got {bits_per_key}")
        self.num_bits = max(8, int(num_keys * bits_per_key)) if bits_per_key > 0 else 0
        # k* = (m/n) ln 2 minimizes the false positive rate.  An enabled
        # filter always probes at least one bit so that a filter built
        # over an empty key set correctly answers "absent".
        self.num_hashes = max(1, round(bits_per_key * math.log(2))) if self.num_bits else 0
        self._bits = bytearray((self.num_bits + 7) // 8) if self.num_bits else bytearray()
        self.probes = 0
        self.false_positive_budget = bits_per_key

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, keys: Iterable[Any], bits_per_key: float) -> "BloomFilter":
        """Build a filter sized for ``keys`` and populate it."""
        key_list = list(keys)
        bloom = cls(len(key_list), bits_per_key)
        for key in key_list:
            bloom._add(key)
        return bloom

    def _hash_pair(self, key: Any) -> tuple[int, int]:
        digest = blake2b(_key_bytes(key), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1  # odd => full-cycle stride
        return h1, h2

    def _add(self, key: Any) -> None:
        if not self.num_bits:
            return
        h1, h2 = self._hash_pair(key)
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            self._bits[bit >> 3] |= 1 << (bit & 7)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def might_contain(self, key: Any) -> bool:
        """False means definitely absent; True means 'probably present'.

        With ``bits_per_key == 0`` the filter is disabled and always
        answers True (every lookup must probe the file).
        """
        self.probes += 1
        if not self.num_bits:
            return True
        h1, h2 = self._hash_pair(key)
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array."""
        return len(self._bits)

    def expected_false_positive_rate(self, num_keys: int) -> float:
        """Theoretical FP rate for a filter of this size holding ``num_keys``."""
        if not self.num_bits or not num_keys:
            return 1.0 if not self.num_bits else 0.0
        exponent = -self.num_hashes * num_keys / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes
