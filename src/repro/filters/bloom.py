"""A Bloom filter with a configurable bits-per-key budget.

One filter guards each file (SSTable): a point lookup probes the filter
before paying any page read, so a negative skips the file entirely.  The
memory budget (``bits_per_key``) is the knob the T2 experiment sweeps --
fewer bits means more false positives, means more wasted page reads, and
tombstone-laden trees amplify that waste (the F8 experiment).

Hashing uses ``blake2b`` split into two 64-bit halves combined with the
Kirsch-Mitzenmacher double-hashing scheme, so membership answers are
deterministic across processes (Python's builtin ``hash`` is salted per
process and would break reproducibility).

The digest is the expensive part of filter construction, and during a file
build the *same* key may feed both the file-level filter and a page-level
(KiWi) filter.  :func:`hash_pair` therefore operates on pre-encoded key
bytes and :meth:`BloomFilter.from_hash_pairs` accepts pre-computed digest
pairs, so the builder hashes each key exactly once no matter how many
filters it lands in.
"""

from __future__ import annotations

import math
import os
from hashlib import blake2b
from typing import Any, Iterable

try:  # vectorized filter construction; pure-Python fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None


def _key_bytes(key: Any) -> bytes:
    """Canonical byte encoding of a key for hashing."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        length = max(1, (key.bit_length() + 8) // 8)
        return key.to_bytes(length, "little", signed=True)
    return repr(key).encode("utf-8")


def hash_pair(key_bytes: bytes, salt: bytes | None = None) -> tuple[int, int]:
    """The (h1, h2) double-hashing pair for pre-encoded key bytes.

    ``salt`` keys the digest (blake2b's native MAC mode): a filter built
    with a secret per-tree salt answers probes through a hash function an
    adversary cannot evaluate offline, so bloom-defeating key streams
    crafted against the public scheme degrade to the baseline FP rate.
    ``salt=None`` is bit-identical to the historical unsalted digest.
    """
    if salt is None:
        digest = blake2b(key_bytes, digest_size=16).digest()
    else:
        digest = blake2b(key_bytes, digest_size=16, key=salt).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1  # odd => full-cycle stride
    return h1, h2


#: Salt length for :func:`generate_salt` (blake2b accepts keys <= 64 bytes).
SALT_BYTES = 16


def generate_salt() -> bytes:
    """A fresh per-tree bloom salt (cryptographically random)."""
    return os.urandom(SALT_BYTES)


#: Bounded digest memo behind :func:`key_hash_pair`.  A plain dict beats
#: ``functools.lru_cache`` on the hit path (no wrapper call, no lock, no
#: recency bookkeeping) and the read path probes it once per *lookup*, so
#: the saved fraction compounds.  Pure function of the key -> a wholesale
#: clear on overflow is always safe.
_PAIR_MEMO: dict[Any, tuple[int, int]] = {}
_PAIR_MEMO_MAX = 1 << 18

#: Per-salt digest memos for salted trees (salt -> key -> pair).  Each
#: salt's memo is bounded like :data:`_PAIR_MEMO`; the outer map is tiny
#: (one entry per live salted tree in the process) but bounded anyway.
_SALTED_MEMOS: dict[bytes, dict[Any, tuple[int, int]]] = {}
_SALTED_MEMOS_MAX = 64


def key_hash_pair(key: Any, salt: bytes | None = None) -> tuple[int, int]:
    """Memoized :func:`hash_pair` keyed on the key object itself.

    An LSM engine hashes the same key many times over its life: once per
    filter probe and once per compaction that rewrites the entry (write
    amplification means an entry is re-filed ~W times).  The digest is
    pure, so a bounded memo turns all but the first into dict hits.
    Requires a hashable key; callers fall back to :func:`hash_pair` on
    ``TypeError`` for exotic key types.  Salted trees get their own memo
    per salt -- pairs from different salts must never alias.
    """
    if salt is None:
        memo = _PAIR_MEMO
    else:
        memo = _SALTED_MEMOS.get(salt)
        if memo is None:
            if len(_SALTED_MEMOS) >= _SALTED_MEMOS_MAX:
                _SALTED_MEMOS.clear()
            memo = _SALTED_MEMOS[salt] = {}
    pair = memo.get(key)
    if pair is None:
        if len(memo) >= _PAIR_MEMO_MAX:
            memo.clear()
        pair = memo[key] = hash_pair(_key_bytes(key), salt)
    return pair


class BloomFilter:
    """An approximate-membership filter over a fixed key set.

    Built once (at file-construction time) from the full key list; the
    engine never inserts into a live filter, matching how LSM engines build
    per-SSTable filters during compaction.
    """

    __slots__ = (
        "num_bits",
        "num_hashes",
        "_bits",
        "probes",
        "false_positive_budget",
        "salt",
    )

    def __init__(
        self, num_keys: int, bits_per_key: float, salt: bytes | None = None
    ) -> None:
        if num_keys < 0:
            raise ValueError(f"num_keys must be >= 0, got {num_keys}")
        if bits_per_key < 0:
            raise ValueError(f"bits_per_key must be >= 0, got {bits_per_key}")
        self.salt = salt
        self.num_bits = max(8, int(num_keys * bits_per_key)) if bits_per_key > 0 else 0
        # k* = (m/n) ln 2 minimizes the false positive rate.  An enabled
        # filter always probes at least one bit so that a filter built
        # over an empty key set correctly answers "absent".
        self.num_hashes = max(1, round(bits_per_key * math.log(2))) if self.num_bits else 0
        self._bits = bytearray((self.num_bits + 7) // 8) if self.num_bits else bytearray()
        self.probes = 0
        self.false_positive_budget = bits_per_key

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, keys: Iterable[Any], bits_per_key: float, salt: bytes | None = None
    ) -> "BloomFilter":
        """Build a filter sized for ``keys`` and populate it."""
        key_list = keys if isinstance(keys, (list, tuple)) else list(keys)
        bloom = cls(len(key_list), bits_per_key, salt=salt)
        if not bloom.num_bits:
            return bloom
        try:
            pairs = [key_hash_pair(key, salt) for key in key_list]
        except TypeError:  # unhashable key type: hash without the memo
            pairs = [hash_pair(_key_bytes(key), salt) for key in key_list]
        bloom._set_pairs(pairs)
        return bloom

    @classmethod
    def from_hash_pairs(
        cls,
        pairs: list[tuple[int, int]],
        bits_per_key: float,
        salt: bytes | None = None,
    ) -> "BloomFilter":
        """Build from pre-computed :func:`hash_pair` digests (one per key).

        Bit-identical to :meth:`build` over the corresponding keys; used by
        the file builder to share one digest per entry between the
        file-level and page-level filters.  ``salt`` must match the salt
        the pairs were hashed with -- it is recorded so that
        :meth:`might_contain` probes through the same keyed digest.
        """
        bloom = cls(len(pairs), bits_per_key, salt=salt)
        if not bloom.num_bits:
            return bloom
        bloom._set_pairs(pairs)
        return bloom

    def _set_pairs(self, pairs: list[tuple[int, int]]) -> None:
        # The construction inner loop -- filter builds run once per file
        # per compaction and dominate the CPU profile of a write-heavy
        # workload.  The probe sequence is (h1 + i*h2) % m; reducing h1
        # and h2 modulo m first keeps every intermediate below
        # num_hashes * m, so the arithmetic fits comfortably in int64 and
        # the whole batch vectorizes through numpy with *exactly* the same
        # bit positions as the scalar form (no unsigned wraparound).
        num_bits = self.num_bits
        num_hashes = self.num_hashes
        if (
            _np is not None
            and len(pairs) >= 16
            and num_bits * num_hashes < (1 << 62)
        ):
            # One C-level conversion of the pair list, then vectorized
            # modular reduction.  h1/h2 are 64-bit unsigned; uint64 '%'
            # matches Python's nonnegative '%' exactly, and the residues
            # fit int64 (num_bits << 2^62).  From here on every op is a
            # numpy inner loop that releases the GIL, which is what lets
            # concurrent compaction workers overlap filter construction.
            raw = _np.array(pairs, dtype=_np.uint64)
            r1 = (raw[:, 0] % _np.uint64(num_bits)).astype(_np.int64)
            r2 = (raw[:, 1] % _np.uint64(num_bits)).astype(_np.int64)
            steps = _np.arange(num_hashes, dtype=_np.int64)
            idx = (r1[:, None] + steps * r2[:, None]) % num_bits
            flags = _np.zeros(len(self._bits) * 8, dtype=_np.uint8)
            flags[idx.ravel()] = 1
            packed = _np.packbits(flags, bitorder="little")
            merged = _np.frombuffer(bytes(self._bits), dtype=_np.uint8) | packed
            self._bits[:] = merged.tobytes()
            return
        bits = self._bits
        probes = range(num_hashes)
        for h1, h2 in pairs:
            h = h1
            for _ in probes:
                bit = h % num_bits
                bits[bit >> 3] |= 1 << (bit & 7)
                h += h2

    def _hash_pair(self, key: Any) -> tuple[int, int]:
        return hash_pair(_key_bytes(key), self.salt)

    def add_hash(self, h1: int, h2: int) -> None:
        """Set the bits for one pre-hashed key."""
        if not self.num_bits:
            return
        self._set_pairs([(h1, h2)])

    def _add(self, key: Any) -> None:
        if not self.num_bits:
            return
        self.add_hash(*hash_pair(_key_bytes(key), self.salt))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def might_contain(self, key: Any) -> bool:
        """False means definitely absent; True means 'probably present'.

        With ``bits_per_key == 0`` the filter is disabled and always
        answers True (every lookup must probe the file).
        """
        try:
            h, h2 = key_hash_pair(key, self.salt)
        except TypeError:  # unhashable key type: hash without the memo
            h, h2 = hash_pair(_key_bytes(key), self.salt)
        return self.might_contain_hashed(h, h2)

    def might_contain_hashed(self, h: int, h2: int) -> bool:
        """:meth:`might_contain` for a pre-computed :func:`hash_pair`.

        The point-lookup hot path hashes the key once per *lookup* and
        probes every run's filter with the same pair, so the digest (and
        its memo probe) is not repeated per level.
        """
        self.probes += 1
        num_bits = self.num_bits
        if not num_bits:
            return True
        bits = self._bits
        for _ in range(self.num_hashes):
            bit = h % num_bits
            if not bits[bit >> 3] & (1 << (bit & 7)):
                return False
            h += h2
        return True

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array."""
        return len(self._bits)

    def expected_false_positive_rate(self, num_keys: int) -> float:
        """Theoretical FP rate for a filter of this size holding ``num_keys``."""
        if not self.num_bits or not num_keys:
            return 1.0 if not self.num_bits else 0.0
        exponent = -self.num_hashes * num_keys / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes
