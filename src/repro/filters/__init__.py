"""Read-path auxiliary structures: Bloom filters and fence pointers.

Both live entirely in memory (as the paper assumes): probing them is free
in device I/O terms, which is exactly why they matter -- they decide *which*
pages the engine pays to read.
"""

from repro.filters.bloom import BloomFilter
from repro.filters.fence import FenceIndex

__all__ = ["BloomFilter", "FenceIndex"]
