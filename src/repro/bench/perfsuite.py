"""The wall-clock performance suite: parallel, tracked, self-comparing.

Where ``benchmarks/`` measures *modeled device I/O* (deterministic,
scale-stable, the paper's currency), this suite measures *wall-clock
throughput of the engine's hot loops* -- the thing the hot-path overhaul
optimizes.  Three design points:

**Same-run comparison.**  Every experiment times its ingest loop twice on
identical operation streams: once through the pre-optimization cost model
(see :mod:`repro.bench.seedcost`) and once through the optimized path
(batched ingest, cached statistics, trigger fast path).  Both arms run in
the same process seconds apart, so the reported speedup is insulated from
machine-to-machine and run-to-run variance.  After both arms finish, their
engine states are asserted identical (simulated I/O, flush and compaction
counts, level occupancy) -- the optimizations must never change semantics.

**Parallelism.**  Experiments are independent, so the suite fans them out
over a :class:`~concurrent.futures.ProcessPoolExecutor` (one process per
experiment; wall-clock timing would be corrupted by in-process
interleaving).

**Tracking.**  Results are archived as ``BENCH_<n>.json`` at the repo root
(lowest unused ``n``), so the performance trajectory of the repository is
part of its history: every future change can be compared against the
numbers committed before it.
"""

from __future__ import annotations

import gc
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Any

from repro.config import CompactionStyle

#: Archive location for BENCH_<n>.json (the repository root).
BENCH_DIR = Path(__file__).resolve().parents[3]

#: Default sizes for the full suite ("experiment scale", per the ISSUE: the
#: tracked ingest loop runs >= 50k mixed operations).
FULL_INGEST_OPS = 50_000
QUICK_INGEST_OPS = 6_000
GET_OPS_FRACTION = 0.4  # point lookups per ingest op
SCAN_OPS = 300
SCAN_WIDTH = 64
INGEST_BATCH = 512
DELETE_FRACTION = 0.15

#: Read-phase shape.  The optimized arm attaches a sharded block cache of
#: this many pages (the seed arm keeps the BENCH_1-era disabled cache);
#: the mixed phase interleaves point gets with narrow limited scans.
READ_CACHE_PAGES = 1024
MIXED_GET_FRACTION = 0.85
MIXED_SCAN_LIMIT = 16


@dataclass(frozen=True)
class PerfExperiment:
    """One engine configuration to push through the three hot loops."""

    name: str
    engine: str  # "baseline" | "baseline_tiering" | "acheron"
    seed: int = 7


EXPERIMENTS: tuple[PerfExperiment, ...] = (
    PerfExperiment("baseline_leveling", "baseline", seed=7),
    PerfExperiment("baseline_tiering", "baseline_tiering", seed=11),
    PerfExperiment("acheron", "acheron", seed=13),
)


@dataclass
class PhaseResult:
    ops: int
    seconds: float
    cpu_seconds: float | None = None

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.seconds if self.seconds else float("inf")

    def to_dict(self) -> dict[str, Any]:
        d = {"ops": self.ops, "seconds": round(self.seconds, 4),
             "ops_per_s": round(self.ops_per_s, 1)}
        if self.cpu_seconds is not None:
            d["cpu_seconds"] = round(self.cpu_seconds, 4)
        return d


def _make_engine(kind: str):
    from repro.bench.harness import make_acheron, make_baseline

    if kind == "baseline":
        return make_baseline()
    if kind == "baseline_tiering":
        return make_baseline(policy=CompactionStyle.TIERING)
    if kind == "acheron":
        return make_acheron(delete_persistence_threshold=20_000)
    raise ValueError(f"unknown engine kind {kind!r}")


def _mixed_ops(n: int, seed: int) -> list[tuple]:
    """A deterministic put/delete stream (deletes target live keys)."""
    rng = Random(seed)
    ops: list[tuple] = []
    live: list[Any] = []
    for _ in range(n):
        if live and rng.random() < DELETE_FRACTION:
            ops.append(("delete", live[rng.randrange(len(live))]))
        else:
            key = rng.randrange(n * 2)
            live.append(key)
            ops.append(("put", key, f"v{key}"))
    return ops


def _state_fingerprint(engine) -> dict[str, Any]:
    """Everything that must match between the two comparison arms."""
    stats = engine.stats()
    return {
        "pages_written": stats.io.pages_written,
        "pages_read": stats.io.pages_read,
        "flush_count": stats.flush_count,
        "compaction_count": stats.compaction_count,
        "tick": stats.tick,
        "level_entries": [(lvl.index, lvl.entries, lvl.tombstones) for lvl in stats.shape],
        "counters": stats.counters,
    }


def run_experiment(spec: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: one experiment, three timed hot loops.

    Module-level (picklable) so it can cross the process-pool boundary.
    """
    from repro.bench.seedcost import seed_cost_model

    name: str = spec["name"]
    kind: str = spec["engine"]
    n: int = spec["ingest_ops"]
    seed: int = spec["seed"]
    ops = _mixed_ops(n, seed)

    # -- the comparison arms, interleaved -------------------------------
    # Both arms advance through the op stream in alternating slices so
    # that, when experiments run concurrently in the process pool, each
    # arm experiences the same average machine load.  (Running one arm to
    # completion first would time it under different contention than the
    # other.)  The slice size is a multiple of INGEST_BATCH, so the
    # optimized arm's batching is unchanged.  Each arm is timed twice:
    # wall-clock (throughput as experienced) and process CPU time (work
    # actually done -- immune to scheduler preemption, which on small or
    # shared machines otherwise dominates the wall-clock ratio).  The
    # reported speedup uses CPU time.
    seed_engine = _make_engine(kind)  # arm 1: pre-change cost model, per-op
    engine = _make_engine(kind)  # arm 2: optimized path, batched
    slice_ops = INGEST_BATCH * max(1, n // (INGEST_BATCH * 16))
    seed_seconds = seed_cpu = 0.0
    opt_seconds = opt_cpu = 0.0
    for start in range(0, n, slice_ops):
        chunk = ops[start : start + slice_ops]
        with seed_cost_model(seed_engine.tree):
            t0 = time.perf_counter()
            c0 = time.process_time()
            for op in chunk:
                if op[0] == "put":
                    seed_engine.put(op[1], op[2])
                else:
                    seed_engine.delete(op[1])
            seed_cpu += time.process_time() - c0
            seed_seconds += time.perf_counter() - t0
        t0 = time.perf_counter()
        c0 = time.process_time()
        for b in range(0, len(chunk), INGEST_BATCH):
            engine.apply_batch(chunk[b : b + INGEST_BATCH])
        opt_cpu += time.process_time() - c0
        opt_seconds += time.perf_counter() - t0
    seed_ingest = PhaseResult(n, seed_seconds, seed_cpu)
    ingest = PhaseResult(n, opt_seconds, opt_cpu)

    # -- equivalence: the optimizations must not change semantics -------
    before = _state_fingerprint(seed_engine)
    after = _state_fingerprint(engine)
    if before != after:
        raise AssertionError(
            f"{name}: optimized arm diverged from the seed cost model:\n"
            f"  seed:      {before}\n  optimized: {after}"
        )
    engine.tree.check_invariants()

    # Both arms' engines (~1M objects) survive to the end of the
    # experiment, so any gen-2 collection that lands inside a timed read
    # loop crawls the whole heap and charges a multi-ms pause to whichever
    # arm triggered it.  Freeze the settled graph once so the timed loops
    # only pay for their own garbage (unfrozen before returning).
    gc.collect()
    gc.freeze()

    # -- read phases: seed-vs-optimized on identical query streams ------
    # The probe keys and scan bounds are drawn with exactly the same rng
    # sequence as earlier archives (Random(seed+1): probes first, then
    # scan bounds), so absolute ops/s stay comparable across BENCH_<n>.
    # Like ingest, every read phase is timed twice: once through the
    # seed read model (fresh reader per call, no run pruning, per-run
    # range_entries towers; see seedcost) on the seed arm's equivalent
    # tree with its BENCH_1-era disabled cache, and once through the
    # overhauled path with its sharded admission cache attached cold.
    from repro.bench.seedcost import seed_read_model
    from repro.lsm.run import PageReader
    from repro.storage.cache import BlockCache

    rng = Random(seed + 1)
    live_keys = [op[1] for op in ops if op[0] == "put"]
    n_get = max(1, int(n * GET_OPS_FRACTION))
    probes = [
        live_keys[rng.randrange(len(live_keys))] if rng.random() < 0.5
        else n * 2 + rng.randrange(n)  # guaranteed absent
        for _ in range(n_get)
    ]
    scans = spec.get("scan_ops", SCAN_OPS)
    scan_los = [rng.randrange(max(1, n * 2 - SCAN_WIDTH)) for _ in range(scans)]
    # Quick runs repeat each timed read loop so the per-arm CPU time is
    # large enough to gate on (tens of ms would be all scheduler noise).
    # Full runs keep repeats=1 so ops/s stays comparable across archives.
    repeats = spec.get("read_repeats", 1)
    mixed_rng = Random(seed + 3)
    mixed: list[tuple] = []
    for _ in range(max(1, n_get // 2)):
        if mixed_rng.random() < MIXED_GET_FRACTION:
            if mixed_rng.random() < 0.5:
                mixed.append(("get", live_keys[mixed_rng.randrange(len(live_keys))]))
            else:
                mixed.append(("get", n * 2 + mixed_rng.randrange(n)))
        else:
            lo = mixed_rng.randrange(max(1, n * 2 - SCAN_WIDTH))
            mixed.append(("scan", lo, lo + SCAN_WIDTH))
    sentinel = object()

    def get_loop(eng) -> tuple[int, PhaseResult]:
        t0 = time.perf_counter()
        c0 = time.process_time()
        hits = 0
        for _ in range(repeats):
            for key in probes:
                if eng.get(key, default=sentinel) is not sentinel:
                    hits += 1
        cpu = time.process_time() - c0
        return hits, PhaseResult(n_get * repeats, time.perf_counter() - t0, cpu)

    def scan_loop(eng) -> tuple[int, PhaseResult]:
        t0 = time.perf_counter()
        c0 = time.process_time()
        rows = 0
        for _ in range(repeats):
            for lo in scan_los:
                rows += sum(1 for _ in eng.scan(lo, lo + SCAN_WIDTH))
        cpu = time.process_time() - c0
        return rows, PhaseResult(scans * repeats, time.perf_counter() - t0, cpu)

    def mixed_loop(eng) -> tuple[int, PhaseResult]:
        t0 = time.perf_counter()
        c0 = time.process_time()
        found = 0
        for _ in range(repeats):
            for op in mixed:
                if op[0] == "get":
                    if eng.get(op[1], default=sentinel) is not sentinel:
                        found += 1
                else:
                    found += sum(
                        1 for _ in eng.scan(op[1], op[2], limit=MIXED_SCAN_LIMIT)
                    )
        cpu = time.process_time() - c0
        return found, PhaseResult(len(mixed) * repeats, time.perf_counter() - t0, cpu)

    with seed_read_model():
        seed_hits, seed_get = get_loop(seed_engine)
        seed_rows, seed_scan = scan_loop(seed_engine)
        seed_found, seed_mixed = mixed_loop(seed_engine)

    tree = engine.tree
    tree.cache = BlockCache(READ_CACHE_PAGES)
    tree._reader = PageReader(tree.disk, tree.cache)
    hits, get_phase = get_loop(engine)
    rows, scan_phase = scan_loop(engine)
    found, mixed_phase = mixed_loop(engine)

    # -- equivalence: identical queries must return identical results ---
    # Untimed full re-run of both arms (the timed loops above only count,
    # so the measurement stays shaped like earlier archives).
    with seed_read_model():
        expect_gets = [seed_engine.get(k, default=sentinel) for k in probes]
        expect_scans = [
            list(seed_engine.scan(lo, lo + SCAN_WIDTH)) for lo in scan_los
        ]
    if expect_gets != [engine.get(k, default=sentinel) for k in probes] or (
        expect_scans != [list(engine.scan(lo, lo + SCAN_WIDTH)) for lo in scan_los]
    ):
        raise AssertionError(f"{name}: the read overhaul changed query results")
    if (seed_hits, seed_rows, seed_found) != (hits, rows, found):
        raise AssertionError(
            f"{name}: read arms disagree: seed ({seed_hits}, {seed_rows}, "
            f"{seed_found}) vs optimized ({hits}, {rows}, {found})"
        )

    def speedup(seed_phase: PhaseResult, opt_phase: PhaseResult) -> float:
        if not opt_phase.cpu_seconds:
            return float("inf")
        return round(seed_phase.cpu_seconds / opt_phase.cpu_seconds, 2)

    gc.unfreeze()
    return {
        "experiment": name,
        "engine": kind,
        "ingest_ops": n,
        "phases": {
            "ingest_seed_cost_model": seed_ingest.to_dict(),
            "ingest_optimized": ingest.to_dict(),
            "get_seed_read_model": seed_get.to_dict(),
            "get": get_phase.to_dict(),
            "scan_seed_read_model": seed_scan.to_dict(),
            "scan": scan_phase.to_dict(),
            "mixed_seed_read_model": seed_mixed.to_dict(),
            "mixed": mixed_phase.to_dict(),
        },
        "ingest_speedup": round(seed_cpu / opt_cpu, 2) if opt_cpu else float("inf"),
        "ingest_speedup_wall": round(seed_ingest.seconds / ingest.seconds, 2)
        if ingest.seconds
        else float("inf"),
        "get_speedup": speedup(seed_get, get_phase),
        "scan_speedup": speedup(seed_scan, scan_phase),
        "mixed_speedup": speedup(seed_mixed, mixed_phase),
        "get_hits": hits,
        "scan_rows": rows,
        "mixed_found": found,
        "cache": tree.cache.stats(),
        "read_path": tree.read_stats()["levels"],
        "state": after,
    }


#: Worker counts the concurrent-ingest phase sweeps (1 == the serial arm).
CONCURRENT_WORKER_SWEEP = (1, 2, 4)


def run_concurrent_experiment(spec: dict[str, Any]) -> dict[str, Any]:
    """The ``ingest-concurrent`` phase: serial vs multi-writer ingest.

    Replays the same leveling workload once per worker count in
    ``CONCURRENT_WORKER_SWEEP``.  The serial arm (workers=1) uses the
    inline write path; concurrent arms open the engine with that many
    background workers and replay through writer threads sharded by key
    hash (per-key stream order preserved, so final contents must match
    the serial arm byte for byte -- asserted via a full-scan digest).

    Arms advance through the op stream in interleaved slices (same
    rationale as :func:`run_experiment`) and are timed three ways:

    ``ack``
        Wall/CPU until the last writer returns.  Background flushes and
        compactions may still be draining.

    ``drained``
        Wall/CPU including ``write_barrier()`` -- every arm fully at
        rest, apples-to-apples with the serial arm.

    ``device``
        Modeled device microseconds (the suite's deterministic,
        machine-independent currency).  This is where the concurrent
        write path's architectural win lands: batched flushes merge K
        memtables into one level-1 run, halving write amplification,
        and on a device-bound LSM ingest throughput tracks device time.
    """
    import hashlib
    import threading

    from repro.bench.harness import make_baseline

    n: int = spec["ingest_ops"]
    seed: int = spec["seed"]
    sweep = tuple(spec.get("worker_sweep", CONCURRENT_WORKER_SWEEP))
    ops = _mixed_ops(n, seed)
    chunks = [ops[i : i + INGEST_BATCH] for i in range(0, len(ops), INGEST_BATCH)]
    engines = {w: make_baseline(workers=w) for w in sweep}
    wall = {w: 0.0 for w in sweep}
    cpu = {w: 0.0 for w in sweep}

    def ingest_chunk(engine, chunk: list[tuple], writers: int) -> None:
        if writers == 1 or engine.tree.write_path is None:
            engine.apply_batch(chunk)
            return
        shards: list[list[tuple]] = [[] for _ in range(writers)]
        for op in chunk:
            shards[hash(op[1]) % writers].append(op)
        errors: list[BaseException] = []

        def writer(shard: list[tuple]) -> None:
            try:
                engine.apply_batch(shard)
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(shard,), name=f"perf-writer-{i}")
            for i, shard in enumerate(shards)
            if shard
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

    # Coarser slices than run_experiment (4 rounds, not 16): a slice must
    # rotate well more than flush_batch_target memtables or the flusher's
    # hold-out expires in the inter-slice idle gap and batching -- the
    # very thing this phase measures -- degrades to near-serial behavior.
    slice_chunks = max(1, len(chunks) // 4)
    for start in range(0, len(chunks), slice_chunks):
        for w in sweep:
            engine = engines[w]
            t0 = time.perf_counter()
            c0 = time.process_time()
            for chunk in chunks[start : start + slice_chunks]:
                ingest_chunk(engine, chunk, w)
            cpu[w] += time.process_time() - c0
            wall[w] += time.perf_counter() - t0

    arms: dict[str, dict[str, Any]] = {}
    digests: dict[int, str] = {}
    for w in sweep:
        engine = engines[w]
        ack_wall, ack_cpu = wall[w], cpu[w]
        t0 = time.perf_counter()
        c0 = time.process_time()
        engine.tree.write_barrier()
        drained_wall = ack_wall + (time.perf_counter() - t0)
        drained_cpu = ack_cpu + (time.process_time() - c0)
        digest = hashlib.sha256()
        rows = 0
        for key, value in engine.scan(0, n * 2):
            digest.update(repr((key, value)).encode())
            rows += 1
        digests[w] = digest.hexdigest()
        engine.tree.check_invariants()
        io = engine.disk.stats
        write_stats = engine.tree.write_stats()
        arms[f"workers_{w}"] = {
            "workers": w,
            "ack": PhaseResult(n, ack_wall, ack_cpu).to_dict(),
            "drained": PhaseResult(n, drained_wall, drained_cpu).to_dict(),
            "device_us": round(io.modeled_us, 1),
            "device_ops_per_s": round(n / (io.modeled_us / 1e6), 1),
            "pages_written": io.pages_written,
            "pages_read": io.pages_read,
            "rows": rows,
            "contents_sha256": digests[w],
            "flush_jobs": write_stats.get("flush_jobs"),
            "compaction_jobs": write_stats.get("compaction_jobs"),
            "soft_delays": write_stats.get("soft_delays", 0),
            "hard_stalls": write_stats.get("hard_stalls", 0),
        }
        engine.close()

    # -- equivalence: every arm must converge to the serial contents ----
    serial_digest = digests[sweep[0]]
    for w in sweep[1:]:
        if digests[w] != serial_digest:
            raise AssertionError(
                f"ingest_concurrent: workers={w} final contents diverged "
                f"from serial ({digests[w][:16]} != {serial_digest[:16]})"
            )

    serial = arms[f"workers_{sweep[0]}"]
    for name, arm in arms.items():
        arm["device_speedup"] = round(serial["device_us"] / arm["device_us"], 2)
        arm["ack_speedup_wall"] = (
            round(serial["ack"]["seconds"] / arm["ack"]["seconds"], 2)
            if arm["ack"]["seconds"]
            else float("inf")
        )
        arm["drained_speedup_cpu"] = (
            round(serial["drained"]["cpu_seconds"] / arm["drained"]["cpu_seconds"], 2)
            if arm["drained"]["cpu_seconds"]
            else float("inf")
        )
    top = arms[f"workers_{sweep[-1]}"]
    return {
        "experiment": "ingest_concurrent",
        "engine": "baseline",
        "ingest_ops": n,
        "worker_sweep": list(sweep),
        "arms": arms,
        "contents_identical": True,
        "concurrent_ingest_speedup": top["device_speedup"],
        "concurrent_ack_speedup_wall": top["ack_speedup_wall"],
    }


#: Shard counts the sharded-engine phase sweeps (1 == the single-shard arm).
SHARD_SWEEP = (1, 2, 4)


def run_sharded_experiment(spec: dict[str, Any]) -> dict[str, Any]:
    """The ``ingest_sharded``/``mixed_sharded`` phases: shard-count sweep.

    Replays the same mixed workload once per shard count in
    :data:`SHARD_SWEEP` against an in-memory
    :class:`~repro.shard.engine.ShardedEngine` (shards=1 is the reference
    arm -- a router in front of a single tree).  Two timed phases per arm:

    ``ingest_sharded``
        Batched ingest through the router (``apply_batch`` groups each
        chunk by shard).  Reported as ack wall/CPU, drained (through
        ``write_barrier``), and modeled device time -- the deterministic
        currency.  ``device_ratio`` records each arm's device time
        relative to the single-shard arm: N independent trees are each
        1/N the size, so they develop fewer levels and compact less --
        the sweep documents that partitioning dividend (and its price,
        ``size_skew``, which the rebalancer bounds).

    ``mixed_sharded``
        Point gets plus narrow limited scans (the scans are cross-shard:
        the router k-way-merges per-shard fused iterators).

    After both phases every arm's full logical contents are digested and
    the N>1 digests must equal the shards=1 digest -- range partitioning
    must never change *what* the engine stores, only *where*.  (The mixed
    stream contains no clock-relative secondary deletes, so the digest is
    shard-count-invariant by construction.)
    """
    import hashlib

    from repro.bench.harness import EXPERIMENT_SCALE
    from repro.config import baseline_config
    from repro.shard import ShardedEngine

    n: int = spec["ingest_ops"]
    seed: int = spec["seed"]
    sweep = tuple(spec.get("shard_sweep", SHARD_SWEEP))
    repeats = spec.get("read_repeats", 1)
    ops = _mixed_ops(n, seed)
    chunks = [ops[i : i + INGEST_BATCH] for i in range(0, len(ops), INGEST_BATCH)]
    engines = {
        s: ShardedEngine(
            baseline_config(**EXPERIMENT_SCALE),
            shards=s,
            key_space=(0, n * 2),
        )
        for s in sweep
    }
    wall = {s: 0.0 for s in sweep}
    cpu = {s: 0.0 for s in sweep}

    # Interleaved slices, same rationale as run_experiment: arms timed
    # under the same average machine load.
    slice_chunks = max(1, len(chunks) // 4)
    for start in range(0, len(chunks), slice_chunks):
        for s in sweep:
            engine = engines[s]
            t0 = time.perf_counter()
            c0 = time.process_time()
            for chunk in chunks[start : start + slice_chunks]:
                engine.apply_batch(chunk)
            cpu[s] += time.process_time() - c0
            wall[s] += time.perf_counter() - t0

    # -- mixed read phase (gets + cross-shard limited scans) ------------
    mixed_rng = Random(seed + 3)
    live_keys = [op[1] for op in ops if op[0] == "put"]
    mixed: list[tuple] = []
    for _ in range(max(1, int(n * GET_OPS_FRACTION) // 2)):
        if mixed_rng.random() < MIXED_GET_FRACTION:
            if mixed_rng.random() < 0.5:
                mixed.append(("get", live_keys[mixed_rng.randrange(len(live_keys))]))
            else:
                mixed.append(("get", n * 2 + mixed_rng.randrange(n)))
        else:
            lo = mixed_rng.randrange(max(1, n * 2 - SCAN_WIDTH))
            mixed.append(("scan", lo, lo + SCAN_WIDTH))
    sentinel = object()

    arms: dict[str, dict[str, Any]] = {}
    digests: dict[int, str] = {}
    founds: dict[int, int] = {}
    for s in sweep:
        engine = engines[s]
        ack_wall, ack_cpu = wall[s], cpu[s]
        t0 = time.perf_counter()
        c0 = time.process_time()
        engine.write_barrier()
        drained_wall = ack_wall + (time.perf_counter() - t0)
        drained_cpu = ack_cpu + (time.process_time() - c0)

        t0 = time.perf_counter()
        c0 = time.process_time()
        found = 0
        for _ in range(repeats):
            for op in mixed:
                if op[0] == "get":
                    if engine.get(op[1], default=sentinel) is not sentinel:
                        found += 1
                else:
                    found += sum(
                        1 for _ in engine.scan(op[1], op[2], limit=MIXED_SCAN_LIMIT)
                    )
        mixed_phase = PhaseResult(
            len(mixed) * repeats,
            time.perf_counter() - t0,
            time.process_time() - c0,
        )
        founds[s] = found

        digest = hashlib.sha256()
        rows = 0
        for key, value in engine.scan(0, n * 2):
            digest.update(repr((key, value)).encode())
            rows += 1
        digests[s] = digest.hexdigest()
        engine.verify_invariants()
        io = engine.disk.stats
        stats = engine.stats()
        sizes = [r["entries_on_disk"] + r["buffered_entries"] for r in stats.shards]
        arms[f"shards_{s}"] = {
            "shards": s,
            "ingest_ack": PhaseResult(n, ack_wall, ack_cpu).to_dict(),
            "ingest_drained": PhaseResult(n, drained_wall, drained_cpu).to_dict(),
            "mixed": mixed_phase.to_dict(),
            "device_us": round(io.modeled_us, 1),
            "device_ops_per_s": round(n / (io.modeled_us / 1e6), 1),
            "pages_written": io.pages_written,
            "pages_read": io.pages_read,
            "rows": rows,
            "mixed_found": found,
            "contents_sha256": digests[s],
            "flush_count": stats.flush_count,
            "compaction_count": stats.compaction_count,
            "size_skew": round(max(sizes) / (sum(sizes) / len(sizes)), 3)
            if sizes and sum(sizes)
            else 1.0,
        }
        engine.close()

    # -- equivalence: every arm must match the single-shard contents ----
    reference = digests[sweep[0]]
    for s in sweep[1:]:
        if digests[s] != reference:
            raise AssertionError(
                f"ingest_sharded: shards={s} final contents diverged from "
                f"single-shard ({digests[s][:16]} != {reference[:16]})"
            )
        if founds[s] != founds[sweep[0]]:
            raise AssertionError(
                f"mixed_sharded: shards={s} read results diverged from "
                f"single-shard ({founds[s]} != {founds[sweep[0]]})"
            )

    serial = arms[f"shards_{sweep[0]}"]
    for arm in arms.values():
        arm["mixed_speedup_cpu"] = (
            round(serial["mixed"]["cpu_seconds"] / arm["mixed"]["cpu_seconds"], 2)
            if arm["mixed"]["cpu_seconds"]
            else float("inf")
        )
        arm["device_ratio"] = round(arm["device_us"] / serial["device_us"], 2)
    return {
        "experiment": "ingest_sharded",
        "engine": "baseline",
        "ingest_ops": n,
        "shard_sweep": list(sweep),
        "arms": arms,
        "contents_identical": True,
    }


#: The delete-heavy phase's (method, workers) arms.  workers=1 is the
#: inline write path (every page the disk moves during a call belongs to
#: that call, so call-time I/O is exactly attributable); workers=4 shows
#: where the lazy executor's win lands operationally -- an eager delete
#: must drain the background pipeline (``exclusive()``) before rewriting,
#: a lazy fence append never blocks it.
DELETE_HEAVY_ARMS = (("eager", 1), ("lazy", 1), ("eager", 4), ("lazy", 4))
DELETE_HEAVY_SLICES = 16
#: Each purge targets everything older than the mark two slices back, so
#: every call covers a large window (the whole prior history) while fresh
#: data keeps arriving -- the paper's "purge-older-than" pattern.
DELETE_HEAVY_PURGE_LAG = 2


def run_delete_heavy_experiment(spec: dict[str, Any]) -> dict[str, Any]:
    """The ``delete_heavy`` phase: eager vs lazy secondary range deletes.

    Replays the same mixed stream once per (method, workers) arm in
    :data:`DELETE_HEAVY_ARMS`, issuing a "purge everything older than
    <mark>" secondary delete after every stream slice.  The purge window's
    upper bound is each arm's own clock at the *same stream position*, so
    in-window membership is position-defined and identical across arms
    even though eager rewrites and lazy appends advance the clocks
    differently.  After the stream drains, every arm's full logical
    contents are digested and must match arm 0 -- the lazy fence executor
    must be a drop-in for the eager rewriters.

    Per-call metrics (workers=1 arms only, where the inline write path
    makes the disk delta exactly attributable): pages touched, modeled
    device time, and CPU seconds inside ``delete_range``.  The headline
    ratios: ``delete_call_io_reduction`` (eager call pages / lazy call
    pages -- the ISSUE's >= 10x), ``lazy_delete_call_speedup`` (eager
    call CPU / lazy call CPU), and ``device_speedup_w4`` (eager vs lazy
    whole-run modeled device time at workers=4, where deferring
    resolution to compaction pays off operationally).
    """
    import hashlib

    from repro.bench.harness import make_acheron

    n: int = spec["ingest_ops"]
    seed: int = spec["seed"]
    arms_cfg = [tuple(a) for a in spec.get("arms", DELETE_HEAVY_ARMS)]
    slices = spec.get("purge_slices", DELETE_HEAVY_SLICES)
    lag = spec.get("purge_lag", DELETE_HEAVY_PURGE_LAG)
    ops = _mixed_ops(n, seed)
    chunks = [ops[i : i + INGEST_BATCH] for i in range(0, len(ops), INGEST_BATCH)]

    engines = {
        arm: make_acheron(workers=arm[1]) for arm in arms_cfg
    }
    wall = {arm: 0.0 for arm in arms_cfg}
    cpu = {arm: 0.0 for arm in arms_cfg}
    marks: dict[tuple, list[int]] = {arm: [] for arm in arms_cfg}
    calls = {arm: 0 for arm in arms_cfg}
    call_wall = {arm: 0.0 for arm in arms_cfg}
    call_cpu = {arm: 0.0 for arm in arms_cfg}
    call_pages = {arm: 0 for arm in arms_cfg}
    call_device_us = {arm: 0.0 for arm in arms_cfg}

    # Interleaved slices, same rationale as run_experiment: every arm is
    # timed under the same average machine load.
    slice_chunks = max(1, len(chunks) // slices)
    for start in range(0, len(chunks), slice_chunks):
        for arm in arms_cfg:
            method, workers = arm
            engine = engines[arm]
            t0 = time.perf_counter()
            c0 = time.process_time()
            for chunk in chunks[start : start + slice_chunks]:
                engine.apply_batch(chunk)
            cpu[arm] += time.process_time() - c0
            wall[arm] += time.perf_counter() - t0
            # Purge everything inserted before the mark ``lag`` slices
            # back.  Position-defined: prior entries' delete keys are
            # <= the mark, later entries' are > it, in every arm.
            marks[arm].append(engine.clock.now() - 1)
            if len(marks[arm]) > lag:
                hi = marks[arm][-1 - lag]
                before = engine.disk.snapshot()
                t0 = time.perf_counter()
                c0 = time.process_time()
                engine.delete_range(0, hi, method=method)
                call_cpu[arm] += time.process_time() - c0
                call_wall[arm] += time.perf_counter() - t0
                calls[arm] += 1
                if workers == 1:
                    delta = engine.disk.delta_since(before)
                    call_pages[arm] += delta.pages_read + delta.pages_written
                    call_device_us[arm] += delta.modeled_us

    arms: dict[str, dict[str, Any]] = {}
    digests: dict[tuple, str] = {}
    for arm in arms_cfg:
        method, workers = arm
        engine = engines[arm]
        ack_wall, ack_cpu = wall[arm] + call_wall[arm], cpu[arm] + call_cpu[arm]
        t0 = time.perf_counter()
        c0 = time.process_time()
        engine.tree.write_barrier()
        drained_wall = ack_wall + (time.perf_counter() - t0)
        drained_cpu = ack_cpu + (time.process_time() - c0)
        digest = hashlib.sha256()
        rows = 0
        for key, value in engine.scan(0, n * 2):
            digest.update(repr((key, value)).encode())
            rows += 1
        digests[arm] = digest.hexdigest()
        engine.tree.check_invariants()
        io = engine.disk.stats
        fences = engine.fence_stats()
        entry = {
            "method": method,
            "workers": workers,
            "ack": PhaseResult(n, ack_wall, ack_cpu).to_dict(),
            "drained": PhaseResult(n, drained_wall, drained_cpu).to_dict(),
            "device_us": round(io.modeled_us, 1),
            "device_ops_per_s": round(n / (io.modeled_us / 1e6), 1),
            "pages_written": io.pages_written,
            "pages_read": io.pages_read,
            "rows": rows,
            "contents_sha256": digests[arm],
            "purge_calls": calls[arm],
            "call_cpu_seconds": round(call_cpu[arm], 4),
            "fences_live": fences["live"],
            "fence_entries_resolved": fences["entries_resolved_by_compaction"],
        }
        if workers == 1:
            entry["call_pages"] = call_pages[arm]
            entry["call_device_us"] = round(call_device_us[arm], 1)
        arms[f"{method}_w{workers}"] = entry
        engine.close()

    # -- equivalence: lazy fences must be a drop-in for eager rewrites --
    reference = digests[arms_cfg[0]]
    for arm in arms_cfg[1:]:
        if digests[arm] != reference:
            raise AssertionError(
                f"delete_heavy: arm {arm} final contents diverged from "
                f"{arms_cfg[0]} ({digests[arm][:16]} != {reference[:16]})"
            )

    eager_w1, lazy_w1 = ("eager", 1), ("lazy", 1)
    io_reduction = call_pages[eager_w1] / max(1, call_pages[lazy_w1])
    # The ISSUE's acceptance bar: on large ranges the lazy executor cuts
    # modeled call-time I/O by at least 10x.  Only meaningful once the
    # eager arm actually paid a nontrivial rewrite bill.
    if call_pages[eager_w1] >= 100 and io_reduction < 10.0:
        raise AssertionError(
            f"delete_heavy: lazy call-time I/O reduction {io_reduction:.1f}x "
            f"below the 10x bar (eager {call_pages[eager_w1]} pages, "
            f"lazy {call_pages[lazy_w1]})"
        )
    result = {
        "experiment": "delete_heavy",
        "engine": "acheron",
        "ingest_ops": n,
        "purge_calls": calls[eager_w1],
        "arms": arms,
        "contents_identical": True,
        "delete_call_io_reduction": round(io_reduction, 2),
        "lazy_call_pages": call_pages[lazy_w1],
        "lazy_delete_call_speedup": round(
            call_cpu[eager_w1] / call_cpu[lazy_w1], 2
        )
        if call_cpu[lazy_w1]
        else float("inf"),
    }
    w4 = [arm for arm in arms_cfg if arm[1] == 4]
    if ("eager", 4) in w4 and ("lazy", 4) in w4:
        result["device_speedup_w4"] = round(
            arms["eager_w4"]["device_us"] / arms["lazy_w4"]["device_us"], 2
        )
    return result


#: The adversarial phase's attack shapes.  Deliberately *fixed* (not
#: scaled by --quick): every number below was tuned so the attack
#: demonstrably hurts the undefended arm, and the whole phase is seeded
#: and simulator-deterministic, so the degradation factors are exact and
#: machine-independent -- they can be gated against an archived envelope
#: the way speedups are.
ADVERSARIAL_ATTACKS: dict[str, dict[str, Any]] = {
    "bloom_defeat": {
        "seed": 3, "preload": 4096, "operations": 4000, "memtable_entries": 512,
    },
    "empty_flood": {
        "seed": 3, "preload": 8192, "operations": 7000,
        "memtable_entries": 256, "hot": 16, "hot_every": 512, "cache_pages": 32,
    },
    "one_hit_flood": {
        "seed": 3, "preload": 32768, "operations": 7000,
        "memtable_entries": 256, "hot": 16, "hot_every": 32, "cache_pages": 48,
    },
    "hot_shard_storm": {
        "seed": 5, "preload": 4096, "operations": 12000, "memtable_entries": 256,
    },
    "tombstone_churn": {
        "seed": 5, "preload": 4096, "operations": 8000,
        "memtable_entries": 256, "d_th": 2000,
    },
}


def _bloom_fpr(tree) -> float:
    """Observed filter false-positive rate over the tree's lookups."""
    levels = tree.read_stats()["levels"]
    probes = sum(r["lookup_probes"] for r in levels)
    skips = sum(r["lookup_skips_bloom"] for r in levels)
    return probes / (probes + skips) if probes + skips else 0.0


def _hot_residency(engine, hot_keys) -> float:
    """Fraction of the hot set served without device reads right now."""
    before = engine.disk.stats.pages_read
    for key in hot_keys:
        engine.get(key)
    reads = engine.disk.stats.pages_read - before
    return 1.0 - reads / len(hot_keys)


def run_adversarial_experiment(spec: dict[str, Any]) -> dict[str, Any]:
    """The ``adversarial`` phase: every attack vs defended + undefended.

    For each attack in :data:`ADVERSARIAL_ATTACKS`, the same seeded
    operation stream (attacks are crafted against the *public* scheme, so
    the stream is arm-independent) is replayed against an undefended
    engine and a defended one, and the attack's headline damage metric is
    reported for both along with the **degradation factor** -- how many
    times worse the undefended arm fares:

    * ``bloom_defeat`` -- observed filter FPR; defense: salted blooms.
    * ``empty_flood`` / ``one_hit_flood`` -- hot-set cache residency
      after the flood; defense: hardened admission (negative-lookup
      guard / TinyLFU doorkeeper).  The defended arm keeps blooms
      *unsalted* so the cache defense is exercised, not bypassed.
    * ``hot_shard_storm`` -- max per-shard share of the storm's writes
      under the final layout; defense: hot-shard auto-split.
    * ``tombstone_churn`` -- oldest pending tombstone age; defense:
      FADE's ``D_th`` deadline (the undefended arm is the baseline
      engine, which has no persistence deadline at all).

    Every defended arm must beat its undefended counterpart -- asserted
    here, so a regression fails the suite rather than just shifting a
    number.  Each attack also reports a benign-baseline figure where one
    exists (e.g. the FPR of *random* absent-key queries) so "degradation"
    is anchored to normal operation, not just to the other arm.
    """
    from repro.config import CompactionStyle, acheron_config
    from repro.core.engine import AcheronEngine
    from repro.shard import AutoSplitConfig, ShardedEngine
    from repro.workload import build_adversary, hot_set_keys, run_workload
    from repro.workload.generator import KEY_STRIDE

    attacks = spec.get("attacks") or ADVERSARIAL_ATTACKS
    results: dict[str, dict[str, Any]] = {}
    checks: list[str] = []

    # -- bloom_defeat ---------------------------------------------------
    p = attacks["bloom_defeat"]
    ops = None
    arms = {}
    for arm, salted in (("undefended", False), ("defended", True)):
        engine = AcheronEngine.acheron(
            memtable_entries=p["memtable_entries"], size_ratio=16,
            policy=CompactionStyle.TIERING, bloom_salted=salted,
        )
        if ops is None:
            ops = build_adversary(
                "bloom_defeat", seed=p["seed"], preload=p["preload"],
                operations=p["operations"],
                memtable_entries=p["memtable_entries"],
                bits_per_key=engine.config.bloom_bits_per_key,
            )
        run_workload(engine, ops, ingest_batch=INGEST_BATCH)
        fpr = _bloom_fpr(engine.tree)
        # Benign anchor: the same number of *random* absent probes,
        # measured as a delta over the attack's counters.
        rng = Random(p["seed"] + 1)
        benign_probes = sum(r["lookup_probes"] for r in engine.tree.read_stats()["levels"])
        benign_skips = sum(r["lookup_skips_bloom"] for r in engine.tree.read_stats()["levels"])
        sentinel = object()
        for _ in range(p["operations"]):
            slot = rng.randrange(p["preload"] - 1)
            engine.get(slot * KEY_STRIDE + 1, default=sentinel)
        levels = engine.tree.read_stats()["levels"]
        d_probes = sum(r["lookup_probes"] for r in levels) - benign_probes
        d_skips = sum(r["lookup_skips_bloom"] for r in levels) - benign_skips
        benign_fpr = d_probes / (d_probes + d_skips) if d_probes + d_skips else 0.0
        arms[arm] = {"attack_fpr": round(fpr, 4), "benign_fpr": round(benign_fpr, 4)}
        engine.close()
    # A defended FPR of exactly 0 is below the stream's measurement
    # resolution; floor the ratio at one-false-positive-in-the-run so the
    # factor reads "at least N x", never a fantasy 1e9.
    arms["degradation_factor"] = round(
        arms["undefended"]["attack_fpr"]
        / max(arms["defended"]["attack_fpr"], 1.0 / p["operations"]),
        1,
    )
    if arms["defended"]["attack_fpr"] > 0.1:
        checks.append(
            f"bloom_defeat: defended FPR {arms['defended']['attack_fpr']} "
            "above the 0.1 bound (salt is not defeating the crafted stream)"
        )
    if arms["undefended"]["attack_fpr"] < 0.5:
        checks.append(
            "bloom_defeat: undefended FPR "
            f"{arms['undefended']['attack_fpr']} -- the attack itself has "
            "gone soft; the crafted keys no longer defeat unsalted filters"
        )
    results["bloom_defeat"] = arms

    # -- cache floods ---------------------------------------------------
    for attack, floor in (("empty_flood", 0.9), ("one_hit_flood", 0.45)):
        p = attacks[attack]
        ops = build_adversary(
            attack, seed=p["seed"], preload=p["preload"],
            operations=p["operations"], memtable_entries=p["memtable_entries"],
            hot=p["hot"], hot_every=p["hot_every"],
        )
        hot_keys = hot_set_keys(p["preload"], p["hot"])
        arms = {}
        for arm, hardened in (("undefended", False), ("defended", True)):
            engine = AcheronEngine.acheron(
                memtable_entries=p["memtable_entries"],
                cache_pages=p["cache_pages"], cache_hardened=hardened,
            )
            run_workload(engine, ops, ingest_batch=INGEST_BATCH)
            cache = engine.tree.cache.stats()
            arms[arm] = {
                "hot_residency": round(_hot_residency(engine, hot_keys), 4),
                "cache_hit_rate": round(cache["hit_rate"], 4),
                "doorkeeper_rejections": cache["doorkeeper_rejections"],
                "negative_guard_drops": cache["negative_guard_drops"],
                "evictions": cache["evictions"],
            }
            engine.close()
        defended = arms["defended"]["hot_residency"]
        undefended = arms["undefended"]["hot_residency"]
        arms["residency_advantage"] = round(defended - undefended, 4)
        if defended < floor:
            checks.append(
                f"{attack}: defended hot-set residency {defended} below "
                f"the {floor} floor"
            )
        if defended <= undefended:
            checks.append(
                f"{attack}: defended residency {defended} does not beat "
                f"undefended {undefended}"
            )
        results[attack] = arms

    # -- hot_shard_storm ------------------------------------------------
    p = attacks["hot_shard_storm"]
    ops = build_adversary(
        "hot_shard_storm", seed=p["seed"], preload=p["preload"],
        operations=p["operations"],
    )
    storm_keys = [op.key for op in ops[p["preload"]:]]
    arms = {}
    for arm, auto in (("undefended", None), ("defended", AutoSplitConfig(
            window_ops=1024, hysteresis=3, cooldown_ops=4096))):
        engine = ShardedEngine(
            config=acheron_config(memtable_entries=p["memtable_entries"]),
            shards=4, key_space=(0, p["preload"] * KEY_STRIDE),
            auto_split=auto,
        )
        run_workload(engine, ops, ingest_batch=INGEST_BATCH)
        pmap = engine.partition_map
        per_shard: dict[int, int] = {}
        for key in storm_keys:
            idx = pmap.shard_for(key)
            per_shard[idx] = per_shard.get(idx, 0) + 1
        share = max(per_shard.values()) / len(storm_keys)
        counters = engine.stats().counters
        arms[arm] = {
            "final_shards": len(engine.shards),
            "max_storm_write_share": round(share, 4),
            "auto_splits": counters.get("auto_splits", 0),
            "auto_split_refusals": counters.get("auto_split_refusals", 0),
            "events": engine.auto_split_events,
        }
        engine.close()
    arms["degradation_factor"] = round(
        arms["undefended"]["max_storm_write_share"]
        / max(arms["defended"]["max_storm_write_share"], 1e-9), 2
    )
    if arms["defended"]["auto_splits"] < 1:
        checks.append("hot_shard_storm: no auto-split fired within the run")
    if (arms["defended"]["max_storm_write_share"]
            >= arms["undefended"]["max_storm_write_share"]):
        checks.append(
            "hot_shard_storm: auto-split did not reduce the hot shard's "
            "write share"
        )
    results["hot_shard_storm"] = arms

    # -- tombstone_churn ------------------------------------------------
    p = attacks["tombstone_churn"]
    ops = build_adversary(
        "tombstone_churn", seed=p["seed"], preload=p["preload"],
        operations=p["operations"],
    )
    arms = {}
    for arm, ctor in (
        ("undefended", lambda: AcheronEngine.baseline(
            memtable_entries=p["memtable_entries"])),
        ("defended", lambda: AcheronEngine.acheron(
            delete_persistence_threshold=p["d_th"],
            memtable_entries=p["memtable_entries"])),
    ):
        engine = ctor()
        run_workload(engine, ops, ingest_batch=INGEST_BATCH)
        rep = engine.compliance_report()
        arms[arm] = {
            "oldest_pending_age": rep["oldest_pending_age"],
            "deadline_violations": rep["deadline_violations"],
            "tombstones_on_disk": rep["tombstones_on_disk"],
            "logically_dead_bytes_on_disk": rep["logically_dead_bytes_on_disk"],
            "deletes_pending": rep["deletes_pending"],
            "compliant": rep["compliant"],
        }
        engine.close()
    arms["degradation_factor"] = round(
        (arms["undefended"]["oldest_pending_age"] or 0)
        / max(arms["defended"]["oldest_pending_age"] or 1, 1), 1
    )
    if arms["defended"]["deadline_violations"]:
        checks.append("tombstone_churn: FADE arm violated its deadline")
    if (arms["defended"]["oldest_pending_age"] or 0) > p["d_th"]:
        checks.append(
            f"tombstone_churn: oldest pending tombstone age "
            f"{arms['defended']['oldest_pending_age']} exceeds D_th {p['d_th']}"
        )
    if (arms["undefended"]["oldest_pending_age"] or 0) <= (
            arms["defended"]["oldest_pending_age"] or 0):
        checks.append(
            "tombstone_churn: baseline arm no longer shows tombstone aging "
            "-- the attack has gone soft"
        )
    results["tombstone_churn"] = arms

    if checks:
        raise AssertionError(
            "adversarial phase: defenses did not hold:\n  " + "\n  ".join(checks)
        )
    return {
        "experiment": "adversarial",
        "engine": "defended_vs_undefended",
        "attacks": results,
        "defenses_held": True,
    }


#: The memory-skew phase's shape: a 4-shard store where shard 0 (the hot
#: shard) receives MEMORY_SKEW_HOT_FRACTION of all traffic.  The hot read
#: working set (MEMORY_SKEW_HOT_KEYS entries) is 2x one shard's static
#: cache (MEMORY_SKEW_CACHE_PAGES pages of ``entries_per_page`` entries),
#: so a uniform budget split thrashes the hot cache while three cold
#: caches sit idle -- exactly the imbalance the governor arbitrates away.
#: The governed pool (4 shards' pages plus whatever the write/read split
#: donates) comfortably covers the hot set, so the adaptive arm's probe
#: misses drop below the p99 quantile while the static arm keeps paying
#: a page read per tail lookup.
MEMORY_SKEW_SHARDS = 4
MEMORY_SKEW_KEY_SPACE = 16_384
MEMORY_SKEW_HOT_KEYS = 2_048
MEMORY_SKEW_CACHE_PAGES = 32
MEMORY_SKEW_HOT_FRACTION = 0.8
MEMORY_SKEW_ROUND_WRITES = 512
MEMORY_SKEW_ROUND_READS = 416
MEMORY_SKEW_PROBE_READS = 2_048


def run_memory_skew_experiment(spec: dict[str, Any]) -> dict[str, Any]:
    """The ``memory_skew`` phase: adaptive vs static memory budgets.

    Replays one seeded hot/cold-skewed stream twice against a four-shard
    :class:`~repro.shard.engine.ShardedEngine`: the **static** arm keeps
    the config's uniform per-shard write-buffer/cache split
    (``memory_governor=None``), the **adaptive** arm runs the
    :class:`~repro.memory.MemoryGovernor`, which reallocates the same
    fixed global budget toward the hot shard at window boundaries.  Each
    round interleaves writes (80% to shard 0) with reads over the hot
    working set, so the governor sees the miss pressure it arbitrates on.

    Two deterministic, machine-independent currencies are compared:

    * ``io_reduction`` -- total modeled device time, static / adaptive
      (> 1 means the governor saved real modeled I/O);
    * ``p99_lookup_delta_us`` -- the p99 per-get modeled cost over a
      post-convergence probe stream, static minus adaptive (> 0 means
      tail lookups got cheaper).

    Both arms' full logical contents are digested and must be identical:
    budget arbitration may move memory, never data.
    """
    import hashlib

    from repro.bench.harness import EXPERIMENT_SCALE
    from repro.config import baseline_config
    from repro.memory import MemoryGovernorConfig
    from repro.shard import ShardedEngine

    n: int = spec["ingest_ops"]
    seed: int = spec["seed"]
    rounds = max(4, min(n, FULL_INGEST_OPS) // MEMORY_SKEW_ROUND_WRITES)
    config = baseline_config(cache_pages=MEMORY_SKEW_CACHE_PAGES, **EXPERIMENT_SCALE)
    governor = MemoryGovernorConfig(
        window_ops=MEMORY_SKEW_ROUND_WRITES,
        min_window_ops=256,
        min_cache_pages=2,
        min_memtable_entries=128,
    )

    # -- one seeded script, replayed verbatim by both arms --------------
    rng = Random(seed)
    cold_lo = MEMORY_SKEW_KEY_SPACE // MEMORY_SKEW_SHARDS
    cold_span = MEMORY_SKEW_KEY_SPACE - cold_lo
    script: list[tuple[list[tuple], list[int]]] = []
    live_cold: list[int] = []
    for _ in range(rounds):
        writes: list[tuple] = []
        for _ in range(MEMORY_SKEW_ROUND_WRITES):
            if rng.random() < MEMORY_SKEW_HOT_FRACTION:
                key = rng.randrange(MEMORY_SKEW_HOT_KEYS)
                writes.append(("put", key, f"v{key}"))
            elif live_cold and rng.random() < DELETE_FRACTION:
                writes.append(("delete", live_cold[rng.randrange(len(live_cold))]))
            else:
                key = cold_lo + rng.randrange(cold_span)
                live_cold.append(key)
                writes.append(("put", key, f"v{key}"))
        reads = [
            rng.randrange(MEMORY_SKEW_HOT_KEYS)
            for _ in range(MEMORY_SKEW_ROUND_READS - 32)
        ] + [cold_lo + rng.randrange(cold_span) for _ in range(32)]
        script.append((writes, reads))
    probe = [
        rng.randrange(MEMORY_SKEW_HOT_KEYS) for _ in range(MEMORY_SKEW_PROBE_READS)
    ]

    sentinel = object()
    arms: dict[str, dict[str, Any]] = {}
    for arm_name, governor_cfg in (("static", None), ("adaptive", governor)):
        engine = ShardedEngine(
            config,
            shards=MEMORY_SKEW_SHARDS,
            key_space=(0, MEMORY_SKEW_KEY_SPACE),
            memory_governor=governor_cfg,
        )
        io = engine.disk.stats  # live view: per-get deltas below
        t0 = time.perf_counter()
        c0 = time.process_time()
        for writes, reads in script:
            for op in writes:
                if op[0] == "put":
                    engine.put(op[1], op[2])
                else:
                    engine.delete(op[1])
            for key in reads:
                engine.get(key, default=sentinel)
        engine.write_barrier()
        replay = PhaseResult(
            rounds * (MEMORY_SKEW_ROUND_WRITES + MEMORY_SKEW_ROUND_READS),
            time.perf_counter() - t0,
            time.process_time() - c0,
        )

        # -- post-convergence probe: per-get modeled lookup cost --------
        costs: list[float] = []
        found = 0
        for key in probe:
            before = io.modeled_us
            if engine.get(key, default=sentinel) is not sentinel:
                found += 1
            costs.append(io.modeled_us - before)
        costs.sort()
        p99 = costs[min(len(costs) - 1, int(len(costs) * 0.99))]

        digest = hashlib.sha256()
        rows = 0
        for key, value in engine.scan(0, MEMORY_SKEW_KEY_SPACE):
            digest.update(repr((key, value)).encode())
            rows += 1
        engine.verify_invariants()
        hits = sum(s.tree.cache.hits for s in engine.shards)
        misses = sum(s.tree.cache.misses for s in engine.shards)
        hot = engine.shards[0].tree
        stats = engine.stats()
        arms[arm_name] = {
            "replay": replay.to_dict(),
            "device_us": round(io.modeled_us, 1),
            "pages_read": io.pages_read,
            "pages_written": io.pages_written,
            "cache_hit_rate": round(hits / max(1, hits + misses), 4),
            "p99_lookup_us": round(p99, 3),
            "mean_lookup_us": round(sum(costs) / len(costs), 3),
            "probe_found": found,
            "rows": rows,
            "hot_cache_pages": hot.cache.capacity,
            "hot_memtable_budget": hot.memtable_budget,
            "flush_count": stats.flush_count,
            "compaction_count": stats.compaction_count,
            "contents_sha256": digest.hexdigest(),
        }
        if governor_cfg is not None:
            gov = stats.memory or {}
            arms[arm_name]["governor"] = {
                key: gov.get(key)
                for key in (
                    "windows_evaluated",
                    "decisions",
                    "cache_resizes",
                    "memtable_resizes",
                    "pool_shifts",
                )
            }
        engine.close()

    # -- equivalence: arbitration moves memory, never data --------------
    if arms["adaptive"]["contents_sha256"] != arms["static"]["contents_sha256"]:
        raise AssertionError(
            "memory_skew: adaptive arm's final contents diverged from static "
            f"({arms['adaptive']['contents_sha256'][:16]} != "
            f"{arms['static']['contents_sha256'][:16]})"
        )
    if arms["adaptive"]["probe_found"] != arms["static"]["probe_found"]:
        raise AssertionError(
            "memory_skew: adaptive arm's probe results diverged from static "
            f"({arms['adaptive']['probe_found']} != {arms['static']['probe_found']})"
        )
    static, adaptive = arms["static"], arms["adaptive"]
    io_reduction = round(static["device_us"] / max(adaptive["device_us"], 1e-9), 3)
    p99_delta = round(static["p99_lookup_us"] - adaptive["p99_lookup_us"], 3)
    return {
        "experiment": "memory_skew",
        "engine": "adaptive_vs_static",
        "ingest_ops": rounds * MEMORY_SKEW_ROUND_WRITES,
        "rounds": rounds,
        "hot_fraction": MEMORY_SKEW_HOT_FRACTION,
        "arms": arms,
        "contents_identical": True,
        "io_reduction": io_reduction,
        "p99_lookup_delta_us": p99_delta,
        "adaptive_beats_static": io_reduction > 1.0 and p99_delta > 0,
    }


#: The policy-drift phase's shape: a 2-shard store replaying one seeded
#: stream whose mix drifts across thirds -- write-heavy, then read/scan-
#: heavy, then delete-heavy mixed -- so no single static compaction
#: policy is right for the whole run.  The engine is deliberately small
#: (tiny memtable, few cache pages) so flushes and compactions happen
#: often enough that policy choice dominates the modeled I/O even at
#: ``--quick`` scale.
POLICY_DRIFT_SHARDS = 2
POLICY_DRIFT_KEY_SPACE = 4_096
POLICY_DRIFT_SCAN_SPAN = 128
POLICY_DRIFT_MEMTABLE = 32
#: A wide size ratio is what makes the drift *matter*: with T runs per
#: tiered level before a merge fires, tiering/lazy arms carry 4-6 live
#: runs into the scan third while leveling holds one residue run per
#: level -- at narrow ratios (T=3) the shapes collapse together and the
#: three policies price within noise of each other.
POLICY_DRIFT_SIZE_RATIO = 6
#: Per-third allowance for the tuned arm vs the *best* static policy of
#: that third.  The tuned arm adapts with a lag (hysteresis windows) and
#: pays the tiering->leveling transition collapse inside the third where
#: the drift happens -- costs a clairvoyant static arm never pays -- so
#: the per-third contract is "within this slack of the best static",
#: while the full-run contract stays strict (beat *every* static arm).
POLICY_DRIFT_THIRD_SLACK = 0.15


def run_policy_drift_experiment(spec: dict[str, Any]) -> dict[str, Any]:
    """The ``policy_drift`` phase: self-tuned vs static compaction policies.

    Replays one seeded drifting stream four times against a two-shard
    :class:`~repro.shard.engine.ShardedEngine`: three **static** arms
    pin each :class:`~repro.config.CompactionStyle` for the whole run,
    the **tuned** arm starts at leveling with the
    :class:`~repro.lsm.compaction.tuner.CompactionTuner` armed and must
    follow the drift by switching policies live.  The stream's thirds:

    1. **write-heavy** -- 90% puts / 10% deletes: leveling pays its full
       write amplification, tiering is the right answer;
    2. **scan-heavy** -- 55% range scans, 35% point gets, 10% puts: a
       scan merges *every* sorted run it overlaps (blooms cannot deflect
       a range), so run count is the whole bill and leveling is the
       right answer -- the tuned arm must pay the tiering->leveling
       collapse here and still come out ahead.  The put trickle is the
       point: it keeps flushes coming so the stacking policies go on
       accumulating runs mid-third instead of coasting on whatever
       shape the write phase happened to leave behind;
    3. **delete-heavy** -- 50% deletes / 45% puts / 5% gets: a tombstone
       is a write and pays the policy's write amplification, so the mix
       swings back to tiering.

    The currency is total modeled device time (simulator-deterministic,
    machine-independent), reported per third and whole-run.  Headlines:
    ``policy_io_reduction`` (best static total / tuned total, > 1 means
    the tuner beat even a clairvoyant static choice) and ``thirds_ok``
    (the tuned arm stayed within :data:`POLICY_DRIFT_THIRD_SLACK` of the
    best static arm in *every* third).  All four arms' full logical
    contents are digested and must be identical: policy moves compaction
    work, never data.
    """
    import hashlib

    from repro.config import CompactionStyle, baseline_config
    from repro.lsm.compaction.tuner import PolicyTunerConfig
    from repro.shard import ShardedEngine

    n: int = spec["ingest_ops"]
    seed: int = spec["seed"]
    per_third = max(600, min(n, FULL_INGEST_OPS) // 3)
    # Scale the working set with the op budget so every ``--ops`` runs in
    # the same update-rate regime.  With a fixed key space a long run
    # key-caps the bottom level: the tree stops growing down while the
    # residue levels stay capacity-full, and the scan third's winner
    # flips on that shape artifact rather than on the drift itself.
    key_space = max(POLICY_DRIFT_KEY_SPACE, 1024 * round(per_third / 1024))
    config = baseline_config(
        memtable_entries=POLICY_DRIFT_MEMTABLE,
        entries_per_page=8,
        size_ratio=POLICY_DRIFT_SIZE_RATIO,
        cache_pages=4,
    )
    tuner = PolicyTunerConfig(
        window_ops=64, min_window_ops=16, hysteresis=2, cooldown_windows=2
    )

    # -- one seeded script, replayed verbatim by all four arms -----------
    rng = Random(seed)
    written: list[int] = []
    version = 0

    def put_op() -> tuple:
        nonlocal version
        key = rng.randrange(key_space)
        written.append(key)
        version += 1
        return ("put", key, f"v{version}")

    thirds: list[list[tuple]] = []
    write_heavy = []
    for _ in range(per_third):
        if written and rng.random() < 0.10:
            write_heavy.append(("delete", written[rng.randrange(len(written))], None))
        else:
            write_heavy.append(put_op())
    thirds.append(write_heavy)
    scan_heavy = []
    for _ in range(per_third):
        roll = rng.random()
        if roll < 0.10:
            scan_heavy.append(put_op())
        elif roll < 0.65:
            lo = rng.randrange(key_space - POLICY_DRIFT_SCAN_SPAN)
            scan_heavy.append(("scan", lo, None))
        else:
            scan_heavy.append(("get", written[rng.randrange(len(written))], None))
    thirds.append(scan_heavy)
    delete_heavy = []
    for _ in range(per_third):
        roll = rng.random()
        if roll < 0.45:
            delete_heavy.append(put_op())
        elif roll < 0.95:
            delete_heavy.append(("delete", written[rng.randrange(len(written))], None))
        else:
            delete_heavy.append(("get", written[rng.randrange(len(written))], None))
    thirds.append(delete_heavy)

    sentinel = object()
    arms: dict[str, dict[str, Any]] = {}
    for arm_name, start_policy, tuner_cfg in (
        ("leveling", CompactionStyle.LEVELING, None),
        ("tiering", CompactionStyle.TIERING, None),
        ("lazy_leveling", CompactionStyle.LAZY_LEVELING, None),
        ("tuned", CompactionStyle.LEVELING, tuner),
    ):
        engine = ShardedEngine(
            config.with_updates(policy=start_policy),
            shards=POLICY_DRIFT_SHARDS,
            key_space=(0, key_space),
            # Explicit False pins the static arms static even under an
            # ambient REPRO_POLICY_TUNER=1 (the CI tuner-armed job).
            policy_tuner=tuner_cfg if tuner_cfg is not None else False,
        )
        io = engine.disk.stats  # live view: per-third deltas below
        t0 = time.perf_counter()
        c0 = time.process_time()
        per_third_us: list[float] = []
        for script in thirds:
            before = io.modeled_us
            for op, key, value in script:
                if op == "put":
                    engine.put(key, value)
                elif op == "delete":
                    engine.delete(key)
                elif op == "get":
                    engine.get(key, default=sentinel)
                else:  # scan: consume the merged stream
                    for _ in engine.scan(key, key + POLICY_DRIFT_SCAN_SPAN):
                        pass
            per_third_us.append(round(io.modeled_us - before, 1))
        engine.write_barrier()
        replay = PhaseResult(
            3 * per_third, time.perf_counter() - t0, time.process_time() - c0
        )

        digest = hashlib.sha256()
        rows = 0
        for key, value in engine.scan(0, key_space):
            digest.update(repr((key, value)).encode())
            rows += 1
        engine.verify_invariants()
        stats = engine.stats()
        arms[arm_name] = {
            "replay": replay.to_dict(),
            "device_us": round(io.modeled_us, 1),
            "per_third_us": per_third_us,
            "pages_read": io.pages_read,
            "pages_written": io.pages_written,
            "flush_count": stats.flush_count,
            "compaction_count": stats.compaction_count,
            "rows": rows,
            "final_policies": [p.value for p in engine.shard_policies],
            "contents_sha256": digest.hexdigest(),
        }
        if tuner_cfg is not None:
            summary = stats.policy or {}
            arms[arm_name]["switches"] = summary.get("switches", 0)
            arms[arm_name]["windows_evaluated"] = summary.get(
                "windows_evaluated", 0
            )
            arms[arm_name]["events"] = [
                {k: e[k] for k in ("window", "shard", "from", "to")}
                for e in engine.policy_events
                if e.get("event") == "switch"
            ]
        engine.close()

    # -- equivalence: policy moves compaction work, never data -----------
    statics = ("leveling", "tiering", "lazy_leveling")
    for name in statics + ("tuned",):
        if arms[name]["contents_sha256"] != arms["leveling"]["contents_sha256"]:
            raise AssertionError(
                f"policy_drift: {name} arm's final contents diverged from "
                f"leveling ({arms[name]['contents_sha256'][:16]} != "
                f"{arms['leveling']['contents_sha256'][:16]})"
            )
    if not arms["tuned"]["switches"]:
        raise AssertionError(
            "policy_drift: the tuned arm never switched policy -- the drift "
            "is no longer strong enough to exercise the tuner"
        )

    tuned_total = arms["tuned"]["device_us"]
    best_static_total = min(arms[name]["device_us"] for name in statics)
    io_reduction = round(best_static_total / max(tuned_total, 1e-9), 3)
    best_per_third = [
        min(arms[name]["per_third_us"][i] for name in statics) for i in range(3)
    ]
    thirds_ok = all(
        arms["tuned"]["per_third_us"][i]
        <= best_per_third[i] * (1.0 + POLICY_DRIFT_THIRD_SLACK)
        for i in range(3)
    )
    return {
        "experiment": "policy_drift",
        "engine": "tuned_vs_static_policies",
        "ingest_ops": 3 * per_third,
        "per_third_ops": per_third,
        "key_space": key_space,
        "third_slack": POLICY_DRIFT_THIRD_SLACK,
        "arms": arms,
        "contents_identical": True,
        "best_static": min(statics, key=lambda name: arms[name]["device_us"]),
        "best_static_per_third_us": best_per_third,
        "policy_io_reduction": io_reduction,
        "thirds_ok": thirds_ok,
        "tuned_beats_every_static": all(
            tuned_total < arms[name]["device_us"] for name in statics
        ),
    }


#: Shape of the ``served`` phase: shard count behind the server, the
#: client-concurrency sweep (the ISSUE's acceptance bar is the 8-client
#: arm), and the fixed storm shape for the shedding arm.  The storm is
#: not ``--quick``-scaled, mirroring ADVERSARIAL_ATTACKS: an admission
#: envelope measured against a shrunken attack is not the same envelope.
SERVED_SHARDS = 4
SERVED_CLIENT_SWEEP = (1, 4, 8)
SERVED_STORM_PRELOAD = 2_048
SERVED_STORM_OPS = 4_096


def _latency_percentiles(samples: list[float]) -> dict[str, float]:
    """p50/p95/p99 of ``samples`` (nearest-rank on the sorted list)."""
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    ordered = sorted(samples)
    last = len(ordered) - 1
    return {
        f"p{q}": round(ordered[min(last, int(len(ordered) * q / 100))], 1)
        for q in (50, 95, 99)
    }


def run_served_experiment(spec: dict[str, Any]) -> dict[str, Any]:
    """The ``served`` phase: the wire-protocol server vs embedded replay.

    One seeded mixed stream (inserts, updates, point deletes, point and
    range queries, secondary range deletes) is replayed four times over a
    four-shard :class:`~repro.shard.engine.ShardedEngine`:

    * **embedded** -- in-process :func:`~repro.workload.runner.run_workload`,
      the reference arm;
    * **1/4/8 clients** -- the same stream through a live
      :class:`~repro.server.EngineServer` over loopback TCP, pipelined
      across that many pooled connections.

    Two invariants are asserted here (and re-checked by
    :func:`check_server` in CI):

    * **contents parity** -- every served arm's final logical contents
      digest equals the embedded arm's (the master/executor split and
      the client's shed-retry protocol preserve per-key order);
    * **modeled parity** -- every served arm's total *modeled* device
      time equals the embedded arm's, because attribution is exact (each
      response carries the modeled microseconds its request cost) and
      shard-affine routing preserves per-shard op order.  The wire adds
      wall-clock overhead, never modeled device work.

    A fifth **storm** arm replays the PR7 ``hot_shard_storm`` attack
    against deliberately tight admission limits: shedding must engage
    (``shed_total > 0``), and the final contents must *still* digest-
    equal an embedded replay of the same storm -- structured retry never
    loses an acknowledged write.

    Reported per client arm: wall-clock throughput and per-request
    latency percentiles (p50/p95/p99) in both wall and modeled
    microseconds, plus the client's shed/reconnect counters and the
    server's admission report.
    """
    import hashlib

    from repro.config import acheron_config
    from repro.server import AdmissionConfig, EngineServer, ServerConfig
    from repro.shard import ShardedEngine
    from repro.workload.adversarial import build_adversary
    from repro.workload.generator import generate_operations
    from repro.workload.runner import run_workload
    from repro.workload.spec import OpKind, WorkloadSpec

    n: int = spec["ingest_ops"]
    seed: int = spec["seed"]
    operations_n = max(1_000, min(n, FULL_INGEST_OPS))
    preload = operations_n // 2
    stream = generate_operations(
        WorkloadSpec(
            operations=operations_n,
            preload=preload,
            seed=seed,
            weights={
                OpKind.INSERT: 0.40,
                OpKind.UPDATE: 0.22,
                OpKind.POINT_DELETE: 0.10,
                OpKind.POINT_QUERY: 0.15,
                OpKind.EMPTY_QUERY: 0.04,
                OpKind.RANGE_QUERY: 0.04,
                OpKind.SECONDARY_RANGE_DELETE: 0.05,
            },
        )
    )
    # Workload keys are strided small integers, so the partition map must
    # cover the stream's actual footprint or every op lands in shard 0.
    key_space = (0, 4 * (preload + operations_n) + 64)
    config = acheron_config(memtable_entries=512, entries_per_page=32)

    def contents_digest(engine) -> str:
        digest = hashlib.sha256()
        for key, value in engine.scan(key_space[0], key_space[1]):
            digest.update(repr((key, value)).encode())
        return digest.hexdigest()

    def replay_embedded(operations) -> dict[str, Any]:
        engine = ShardedEngine(config, shards=SERVED_SHARDS, key_space=key_space)
        t0 = time.perf_counter()
        c0 = time.process_time()
        result = run_workload(engine, operations)
        phase = PhaseResult(
            result.operations, time.perf_counter() - t0, time.process_time() - c0
        )
        arm = {
            "replay": phase.to_dict(),
            "modeled_us": round(result.total_modeled_us, 1),
            "contents_sha256": contents_digest(engine),
        }
        engine.close()
        return arm

    def replay_served(
        operations, clients: int, admission: AdmissionConfig | None = None
    ) -> dict[str, Any]:
        engine = ShardedEngine(config, shards=SERVED_SHARDS, key_space=key_space)
        server_config = (
            ServerConfig(port=0, admission=admission)
            if admission is not None
            else ServerConfig(port=0)
        )
        server = EngineServer(engine, server_config).start()
        try:
            t0 = time.perf_counter()
            c0 = time.process_time()
            result = run_workload(
                None, operations, connect=server.address, clients=clients
            )
            phase = PhaseResult(
                result.operations,
                time.perf_counter() - t0,
                time.process_time() - c0,
            )
            report = server.server_report()
            return {
                "clients": clients,
                "replay": phase.to_dict(),
                "modeled_us": round(result.total_modeled_us, 1),
                "wall_latency_us": _latency_percentiles(
                    result.served["latencies_us"]
                ),
                "modeled_latency_us": _latency_percentiles(
                    result.served["modeled_latencies_us"]
                ),
                "sheds_seen": result.served["sheds_seen"],
                "reconnects": result.served["reconnects"],
                "server": {
                    key: report[key]
                    for key in (
                        "accepted",
                        "completed",
                        "shed_total",
                        "pipeline_aborts",
                        "barrier_ops",
                        "scatter_batches",
                        "hot_windows",
                    )
                },
                "contents_sha256": contents_digest(engine),
            }
        finally:
            server.stop(close_engine=True)

    embedded = replay_embedded(stream)
    arms = {
        str(clients): replay_served(stream, clients)
        for clients in SERVED_CLIENT_SWEEP
    }

    for name, arm in arms.items():
        if arm["contents_sha256"] != embedded["contents_sha256"]:
            raise AssertionError(
                f"served: {name}-client arm's contents diverged from the "
                f"embedded replay ({arm['contents_sha256'][:16]} != "
                f"{embedded['contents_sha256'][:16]})"
            )
    modeled_parity = all(
        abs(arm["modeled_us"] - embedded["modeled_us"]) < 1.0
        for arm in arms.values()
    )

    # -- storm arm: shedding engages, acked writes survive ---------------
    storm = build_adversary(
        "hot_shard_storm",
        seed=seed,
        preload=SERVED_STORM_PRELOAD,
        operations=SERVED_STORM_OPS,
    )
    storm_embedded = replay_embedded(storm)
    # Tight enough that the storm's hot shard trips the hot-tightened
    # queue cap (16/2 = 8), loose enough that each 64-deep pipeline
    # round still lands a batch of requests -- a hot cap of 4 or less
    # degenerates into tens of thousands of mostly-shed retry rounds
    # and the arm spends minutes shedding instead of measuring.
    storm_served = replay_served(
        storm,
        clients=2,
        admission=AdmissionConfig(
            max_queue_depth=16,
            hot_tighten=2,
            hot_window_ops=128,
            hot_share=0.5,
            retry_after_ms=1.0,
        ),
    )
    storm_served["contents_identical"] = (
        storm_served["contents_sha256"] == storm_embedded["contents_sha256"]
    )
    if not storm_served["contents_identical"]:
        raise AssertionError(
            "served: the storm arm lost or reordered an acknowledged write "
            "under shedding"
        )

    best = max(arms.values(), key=lambda arm: arm["replay"]["ops_per_s"])
    return {
        "experiment": "served",
        "engine": "served_vs_embedded",
        "shards": SERVED_SHARDS,
        "ops": operations_n,
        "key_space": list(key_space),
        "embedded": embedded,
        "arms": arms,
        "storm": storm_served,
        "storm_embedded_modeled_us": storm_embedded["modeled_us"],
        "contents_identical": True,
        "modeled_parity": modeled_parity,
        "shedding_engaged": storm_served["server"]["shed_total"] > 0,
        "best_clients": best["clients"],
        "served_wall_ratio": round(
            best["replay"]["seconds"]
            / max(embedded["replay"]["seconds"], 1e-9),
            3,
        ),
    }


def _run_spec(spec: dict[str, Any]) -> dict[str, Any]:
    """Process-pool dispatch point (module-level, picklable)."""
    if spec.get("mode") == "concurrent":
        return run_concurrent_experiment(spec)
    if spec.get("mode") == "sharded":
        return run_sharded_experiment(spec)
    if spec.get("mode") == "delete_heavy":
        return run_delete_heavy_experiment(spec)
    if spec.get("mode") == "adversarial":
        return run_adversarial_experiment(spec)
    if spec.get("mode") == "memory_skew":
        return run_memory_skew_experiment(spec)
    if spec.get("mode") == "policy_drift":
        return run_policy_drift_experiment(spec)
    if spec.get("mode") == "served":
        return run_served_experiment(spec)
    return run_experiment(spec)


def next_bench_path(directory: Path | None = None) -> Path:
    """The lowest-numbered unused ``BENCH_<n>.json``."""
    directory = directory or BENCH_DIR
    n = 1
    while (directory / f"BENCH_{n}.json").exists():
        n += 1
    return directory / f"BENCH_{n}.json"


def run_suite(
    ingest_ops: int = FULL_INGEST_OPS,
    quick: bool = False,
    workers: int | None = None,
    out: Path | None = None,
) -> dict[str, Any]:
    """Run every experiment (in parallel) and archive the results."""
    if quick:
        ingest_ops = min(ingest_ops, QUICK_INGEST_OPS)
    specs: list[dict[str, Any]] = [
        {
            "name": exp.name,
            "engine": exp.engine,
            "seed": exp.seed,
            "ingest_ops": ingest_ops,
            "scan_ops": 50 if quick else SCAN_OPS,
            "read_repeats": 5 if quick else 1,
        }
        for exp in EXPERIMENTS
    ]
    specs.append(
        {
            "name": "ingest_concurrent",
            "mode": "concurrent",
            "seed": 7,
            "ingest_ops": ingest_ops,
            "worker_sweep": list(CONCURRENT_WORKER_SWEEP),
        }
    )
    specs.append(
        {
            "name": "ingest_sharded",
            "mode": "sharded",
            "seed": 7,
            "ingest_ops": ingest_ops,
            "shard_sweep": list(SHARD_SWEEP),
            "read_repeats": 5 if quick else 1,
        }
    )
    specs.append(
        {
            "name": "delete_heavy",
            "mode": "delete_heavy",
            "seed": 7,
            "ingest_ops": ingest_ops,
            "arms": [list(a) for a in DELETE_HEAVY_ARMS],
        }
    )
    # Appended LAST so every earlier spec keeps its historical position:
    # experiments are independent seeded processes, so the benign phases
    # of this archive stay digest-equivalent to the previous one.  The
    # attack shapes are fixed (not --quick-scaled); see
    # ADVERSARIAL_ATTACKS.
    specs.append({"name": "adversarial", "mode": "adversarial"})
    # Same append-last discipline: the memory-skew phase rides after the
    # adversarial block so every earlier spec keeps its position and the
    # benign phases stay digest-equivalent to the previous archive.
    specs.append(
        {
            "name": "memory_skew",
            "mode": "memory_skew",
            "seed": 11,
            "ingest_ops": ingest_ops,
        }
    )
    # Append-last again: the policy-drift phase rides after memory_skew
    # so every earlier spec keeps its position and the benign phases stay
    # digest-equivalent to the previous archive.
    specs.append(
        {
            "name": "policy_drift",
            "mode": "policy_drift",
            "seed": 13,
            "ingest_ops": ingest_ops,
        }
    )
    # Append-last once more: the served phase (wire protocol vs embedded)
    # rides after policy_drift so every earlier spec keeps its position
    # and the benign phases stay digest-equivalent to the previous
    # archive.
    specs.append(
        {
            "name": "served",
            "mode": "served",
            "seed": 17,
            "ingest_ops": ingest_ops,
        }
    )
    if workers is None:
        # One worker per experiment, but never more than the machine has
        # cores: oversubscribed workers time-share and that scheduling
        # noise leaks into the per-arm wall-clock numbers.
        try:
            cpus = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cpus = os.cpu_count() or 1
        workers = max(1, min(len(specs), cpus))
    started = time.perf_counter()
    if workers == 0:  # serial escape hatch (debugging, constrained CI)
        results = [_run_spec(spec) for spec in specs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_run_spec, specs))
    wall = time.perf_counter() - started

    serial_results = [r for r in results if "ingest_speedup" in r]
    concurrent = next(
        (r for r in results if r["experiment"] == "ingest_concurrent"), None
    )
    sharded = next(
        (r for r in results if r["experiment"] == "ingest_sharded"), None
    )
    delete_heavy = next(
        (r for r in results if r["experiment"] == "delete_heavy"), None
    )
    adversarial = next(
        (r for r in results if r["experiment"] == "adversarial"), None
    )
    memory_skew = next(
        (r for r in results if r["experiment"] == "memory_skew"), None
    )
    policy_drift = next(
        (r for r in results if r["experiment"] == "policy_drift"), None
    )
    served = next((r for r in results if r["experiment"] == "served"), None)
    payload = {
        "suite": "perfsuite",
        "quick": quick,
        "ingest_ops": ingest_ops,
        "ingest_batch": INGEST_BATCH,
        "delete_fraction": DELETE_FRACTION,
        "workers": workers,
        "wall_seconds": round(wall, 2),
        "experiments": results,
        "min_ingest_speedup": min(r["ingest_speedup"] for r in serial_results),
        "min_get_speedup": min(r["get_speedup"] for r in serial_results),
        "min_scan_speedup": min(r["scan_speedup"] for r in serial_results),
        "min_mixed_speedup": min(r["mixed_speedup"] for r in serial_results),
    }
    if concurrent is not None:
        payload["concurrent_ingest_speedup"] = concurrent["concurrent_ingest_speedup"]
    if sharded is not None:
        payload["sharded_contents_identical"] = sharded["contents_identical"]
    if delete_heavy is not None:
        payload["delete_heavy_contents_identical"] = delete_heavy["contents_identical"]
        payload["delete_call_io_reduction"] = delete_heavy["delete_call_io_reduction"]
        if "device_speedup_w4" in delete_heavy:
            payload["delete_heavy_device_speedup_w4"] = delete_heavy["device_speedup_w4"]
    if adversarial is not None:
        payload["adversarial_defenses_held"] = adversarial["defenses_held"]
        payload["adversarial_degradation_factors"] = {
            name: arms["degradation_factor"]
            for name, arms in adversarial["attacks"].items()
            if "degradation_factor" in arms
        }
    if memory_skew is not None:
        payload["memory_skew_contents_identical"] = memory_skew["contents_identical"]
        payload["memory_io_reduction"] = memory_skew["io_reduction"]
        payload["memory_p99_lookup_delta_us"] = memory_skew["p99_lookup_delta_us"]
    if policy_drift is not None:
        payload["policy_drift_contents_identical"] = policy_drift["contents_identical"]
        payload["policy_io_reduction"] = policy_drift["policy_io_reduction"]
        payload["policy_thirds_ok"] = policy_drift["thirds_ok"]
    if served is not None:
        payload["served_contents_identical"] = served["contents_identical"]
        payload["served_modeled_parity"] = served["modeled_parity"]
        payload["served_shedding_engaged"] = served["shedding_engaged"]
    path = out or next_bench_path()
    path.write_text(json.dumps(payload, indent=1) + "\n")
    payload["path"] = str(path)
    return payload


def render(payload: dict[str, Any]) -> str:
    """A human-readable summary table of one suite run."""
    lines = [
        f"perfsuite ({'quick' if payload['quick'] else 'full'}): "
        f"{payload['ingest_ops']} ingest ops/experiment, "
        f"{payload['wall_seconds']}s wall",
        f"{'experiment':<20} {'ingest/s':>10} {'ing-x':>6} "
        f"{'get/s':>10} {'get-x':>6} {'scan/s':>8} {'scan-x':>7} "
        f"{'mixed-x':>8} {'cache-hit':>10}",
    ]
    for r in payload["experiments"]:
        if "ingest_speedup" not in r:  # sweep experiments render below
            continue
        p = r["phases"]
        lines.append(
            f"{r['experiment']:<20} "
            f"{p['ingest_optimized']['ops_per_s']:>10,.0f} "
            f"{r['ingest_speedup']:>5.2f}x "
            f"{p['get']['ops_per_s']:>10,.0f} "
            f"{r['get_speedup']:>5.2f}x "
            f"{p['scan']['ops_per_s']:>8,.0f} "
            f"{r['scan_speedup']:>6.2f}x "
            f"{r['mixed_speedup']:>7.2f}x "
            f"{r['cache']['hit_rate']:>10.2%}"
        )
    concurrent = next(
        (r for r in payload["experiments"] if r["experiment"] == "ingest_concurrent"),
        None,
    )
    if concurrent is not None:
        lines.append(
            f"{'ingest-concurrent':<20} {'workers':>8} {'ack/s':>10} "
            f"{'ack-x':>6} {'device/s':>10} {'dev-x':>6} {'pages-w':>8} {'stalls':>7}"
        )
        for arm in concurrent["arms"].values():
            lines.append(
                f"{'':<20} {arm['workers']:>8} "
                f"{arm['ack']['ops_per_s']:>10,.0f} "
                f"{arm['ack_speedup_wall']:>5.2f}x "
                f"{arm['device_ops_per_s']:>10,.0f} "
                f"{arm['device_speedup']:>5.2f}x "
                f"{arm['pages_written']:>8,} "
                f"{arm['hard_stalls']:>7}"
            )
    sharded = next(
        (r for r in payload["experiments"] if r["experiment"] == "ingest_sharded"),
        None,
    )
    if sharded is not None:
        lines.append(
            f"{'ingest-sharded':<20} {'shards':>8} {'ack/s':>10} "
            f"{'mixed/s':>10} {'mix-x':>6} {'dev-ratio':>10} {'skew':>6} {'digest':>10}"
        )
        for arm in sharded["arms"].values():
            lines.append(
                f"{'':<20} {arm['shards']:>8} "
                f"{arm['ingest_ack']['ops_per_s']:>10,.0f} "
                f"{arm['mixed']['ops_per_s']:>10,.0f} "
                f"{arm['mixed_speedup_cpu']:>5.2f}x "
                f"{arm['device_ratio']:>9.2f}x "
                f"{arm['size_skew']:>6.2f} "
                f"{arm['contents_sha256'][:8]:>10}"
            )
    delete_heavy = next(
        (r for r in payload["experiments"] if r["experiment"] == "delete_heavy"),
        None,
    )
    if delete_heavy is not None:
        lines.append(
            f"{'delete-heavy':<20} {'arm':>10} {'ack/s':>10} {'device/s':>10} "
            f"{'call-pg':>8} {'call-cpu':>9} {'fences':>7} {'digest':>10}"
        )
        for name, arm in delete_heavy["arms"].items():
            lines.append(
                f"{'':<20} {name:>10} "
                f"{arm['ack']['ops_per_s']:>10,.0f} "
                f"{arm['device_ops_per_s']:>10,.0f} "
                f"{arm.get('call_pages', '-'):>8} "
                f"{arm['call_cpu_seconds']:>9.4f} "
                f"{arm['fences_live']:>7} "
                f"{arm['contents_sha256'][:8]:>10}"
            )
        lines.append(
            f"{'':<20} lazy call-time I/O reduction "
            f"{delete_heavy['delete_call_io_reduction']:.1f}x"
            + (
                f", device speedup @w4 {delete_heavy['device_speedup_w4']:.2f}x"
                if "device_speedup_w4" in delete_heavy
                else ""
            )
        )
    adversarial = next(
        (r for r in payload["experiments"] if r["experiment"] == "adversarial"),
        None,
    )
    if adversarial is not None:
        lines.append(
            f"{'adversarial':<20} {'attack':>16} {'undefended':>12} "
            f"{'defended':>10} {'degradation':>12}"
        )
        metric_of = {
            "bloom_defeat": ("attack_fpr", "FPR"),
            "empty_flood": ("hot_residency", "residency"),
            "one_hit_flood": ("hot_residency", "residency"),
            "hot_shard_storm": ("max_storm_write_share", "write share"),
            "tombstone_churn": ("oldest_pending_age", "tomb age"),
        }
        for name, arms in adversarial["attacks"].items():
            key, label = metric_of[name]
            degradation = arms.get("degradation_factor")
            lines.append(
                f"{'':<20} {name:>16} "
                f"{arms['undefended'][key]:>12} "
                f"{arms['defended'][key]:>10} "
                + (f"{degradation:>11.1f}x" if degradation is not None
                   else f"{'-':>12}")
                + f"  ({label})"
            )
    memory_skew = next(
        (r for r in payload["experiments"] if r["experiment"] == "memory_skew"),
        None,
    )
    if memory_skew is not None:
        lines.append(
            f"{'memory-skew':<20} {'arm':>10} {'device-us':>12} {'hit-rate':>9} "
            f"{'p99-get-us':>11} {'hot-pages':>10} {'hot-buf':>8} {'digest':>10}"
        )
        for name, arm in memory_skew["arms"].items():
            lines.append(
                f"{'':<20} {name:>10} "
                f"{arm['device_us']:>12,.0f} "
                f"{arm['cache_hit_rate']:>9.2%} "
                f"{arm['p99_lookup_us']:>11.1f} "
                f"{arm['hot_cache_pages']:>10} "
                f"{arm['hot_memtable_budget']:>8} "
                f"{arm['contents_sha256'][:8]:>10}"
            )
        lines.append(
            f"{'':<20} adaptive modeled-I/O reduction "
            f"{memory_skew['io_reduction']:.2f}x, p99 lookup delta "
            f"{memory_skew['p99_lookup_delta_us']:.1f}us"
        )
    policy_drift = next(
        (r for r in payload["experiments"] if r["experiment"] == "policy_drift"),
        None,
    )
    if policy_drift is not None:
        lines.append(
            f"{'policy-drift':<20} {'arm':>14} {'device-us':>12} {'t1-us':>10} "
            f"{'t2-us':>10} {'t3-us':>10} {'final':>18} {'digest':>10}"
        )
        for name, arm in policy_drift["arms"].items():
            t1, t2, t3 = arm["per_third_us"]
            final = "/".join(
                p[:4] for p in arm["final_policies"]
            )
            lines.append(
                f"{'':<20} {name:>14} "
                f"{arm['device_us']:>12,.0f} "
                f"{t1:>10,.0f} {t2:>10,.0f} {t3:>10,.0f} "
                f"{final:>18} "
                f"{arm['contents_sha256'][:8]:>10}"
            )
        lines.append(
            f"{'':<20} tuned vs best static ({policy_drift['best_static']}) "
            f"{policy_drift['policy_io_reduction']:.2f}x, "
            f"{policy_drift['arms']['tuned']['switches']} switches, thirds "
            + ("ok" if policy_drift["thirds_ok"] else "OVER SLACK")
        )
    served = next(
        (r for r in payload["experiments"] if r["experiment"] == "served"),
        None,
    )
    if served is not None:
        lines.append(
            f"{'served':<20} {'clients':>8} {'ops/s':>10} {'p50-us':>9} "
            f"{'p95-us':>9} {'p99-us':>9} {'sheds':>7} {'digest':>10}"
        )
        lines.append(
            f"{'':<20} {'embedded':>8} "
            f"{served['embedded']['replay']['ops_per_s']:>10,.0f} "
            f"{'-':>9} {'-':>9} {'-':>9} {'-':>7} "
            f"{served['embedded']['contents_sha256'][:8]:>10}"
        )
        for arm in served["arms"].values():
            wall = arm["wall_latency_us"]
            lines.append(
                f"{'':<20} {arm['clients']:>8} "
                f"{arm['replay']['ops_per_s']:>10,.0f} "
                f"{wall['p50']:>9,.0f} {wall['p95']:>9,.0f} "
                f"{wall['p99']:>9,.0f} "
                f"{arm['sheds_seen']:>7} "
                f"{arm['contents_sha256'][:8]:>10}"
            )
        storm = served["storm"]
        lines.append(
            f"{'':<20} storm: shed {storm['server']['shed_total']} "
            f"(aborts {storm['server']['pipeline_aborts']}, client retries "
            f"{storm['sheds_seen']}), contents "
            + ("identical" if storm["contents_identical"] else "DIVERGED")
            + f"; modeled parity "
            + ("ok" if served["modeled_parity"] else "BROKEN")
        )
    lines.append(
        f"min speedups: ingest {payload['min_ingest_speedup']:.2f}x, "
        f"get {payload['min_get_speedup']:.2f}x, "
        f"scan {payload['min_scan_speedup']:.2f}x, "
        f"mixed {payload['min_mixed_speedup']:.2f}x"
        + (
            f", concurrent-ingest {payload['concurrent_ingest_speedup']:.2f}x"
            if "concurrent_ingest_speedup" in payload
            else ""
        )
    )
    if "path" in payload:
        lines.append(f"archived: {payload['path']}")
    return "\n".join(lines)


#: Speedup metrics guarded by :func:`check_read_regression`.
READ_SPEEDUP_KEYS = ("get_speedup", "scan_speedup", "mixed_speedup")

#: All gated speedups: the read trio plus the serial ingest speedup
#: (seed cost model vs the batched write path, CPU time in-process), plus
#: the delete-heavy phase's lazy-vs-eager call ratios (CPU-time and
#: modeled-page ratios, machine-independent like the others; skipped for
#: baseline archives that predate the phase).
GATED_SPEEDUP_KEYS = READ_SPEEDUP_KEYS + (
    "ingest_speedup",
    "lazy_delete_call_speedup",
    "delete_call_io_reduction",
)


def check_read_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.2,
) -> list[str]:
    """Compare gated *speedups* of a fresh run against an archived one.

    Speedups (seed-model CPU time / optimized CPU time, measured in the
    same process seconds apart) are machine-independent, so a quick CI run
    on shared hardware can be held against a full archive from a developer
    machine.  Raw ops/s are deliberately not compared.  Guards the read
    trio and the serial ingest speedup (:data:`GATED_SPEEDUP_KEYS`).
    Returns a list of human-readable failure strings (empty means no
    regression).  Metrics absent from the baseline archive (e.g.
    pre-overhaul BENCH files) are skipped.
    """
    failures: list[str] = []
    base_by_name = {r["experiment"]: r for r in baseline.get("experiments", [])}
    # The lazy-delete call-latency envelope is absolute, not relative: a
    # lazy secondary delete is an O(1) WAL append and may touch zero pages
    # at call time, on any machine, regardless of the archive compared
    # against.
    for result in current.get("experiments", []):
        if result["experiment"] == "delete_heavy":
            pages = result.get("lazy_call_pages", 0)
            if pages > 0:
                failures.append(
                    f"delete_heavy: lazy delete calls touched {pages} page(s) "
                    "at call time (envelope: 0 -- resolution must be deferred "
                    "to compaction)"
                )
    for result in current.get("experiments", []):
        base = base_by_name.get(result["experiment"])
        if base is None:
            continue
        for key in GATED_SPEEDUP_KEYS:
            if key not in base or key not in result:
                continue
            floor = base[key] * (1.0 - tolerance)
            if result[key] < floor:
                failures.append(
                    f"{result['experiment']}: {key} {result[key]:.2f}x fell below "
                    f"{floor:.2f}x ({(1 - tolerance):.0%} of archived {base[key]:.2f}x)"
                )
    return failures


#: Per-attack defended-arm envelope bounds for :func:`check_adversarial`:
#: (metric key, direction, slack) -- "max" means the fresh defended value
#: must not exceed the archived envelope value (scaled by the tolerance),
#: "min" means it must not fall below it.  ``slack`` is an absolute
#: allowance added on top, so a metric archived at exactly 0 (e.g. a
#: defended FPR below measurement resolution) does not turn the bound
#: into "any nonzero value fails".
ADVERSARIAL_ENVELOPE: dict[str, tuple[str, str, float]] = {
    "bloom_defeat": ("attack_fpr", "max", 0.02),
    "empty_flood": ("hot_residency", "min", 0.0),
    "one_hit_flood": ("hot_residency", "min", 0.0),
    "hot_shard_storm": ("max_storm_write_share", "max", 0.05),
    "tombstone_churn": ("oldest_pending_age", "max", 0.0),
}


def check_adversarial(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.2,
) -> list[str]:
    """Hold a fresh adversarial phase against an archived envelope.

    The phase's attack streams are seeded and the engines simulator-
    deterministic, so the defended-arm metrics are machine-independent --
    unlike wall-clock speedups they should barely move at all; the
    tolerance only absorbs deliberate retunings of cache or filter
    defaults.  For each attack in :data:`ADVERSARIAL_ENVELOPE`, the fresh
    *defended* metric must stay within ``tolerance`` of the archived
    defended value (above it for floors like residency, below it for
    ceilings like FPR).  ``defenses_held`` must also still be True --
    though a run where it is not raises inside the phase itself.
    Returns human-readable failure strings (empty means the envelope
    held).  Baselines predating the phase are skipped entirely.
    """
    failures: list[str] = []
    base = next(
        (r for r in baseline.get("experiments", [])
         if r.get("experiment") == "adversarial"),
        None,
    )
    fresh = next(
        (r for r in current.get("experiments", [])
         if r.get("experiment") == "adversarial"),
        None,
    )
    if base is None or fresh is None:
        return failures
    if not fresh.get("defenses_held"):
        failures.append("adversarial: defenses_held is False")
    for attack, (key, direction, slack) in ADVERSARIAL_ENVELOPE.items():
        base_arm = base.get("attacks", {}).get(attack, {}).get("defended", {})
        fresh_arm = fresh.get("attacks", {}).get(attack, {}).get("defended", {})
        if key not in base_arm or key not in fresh_arm:
            continue
        archived = base_arm[key] or 0
        value = fresh_arm[key] or 0
        if direction == "max":
            bound = archived * (1.0 + tolerance) + slack
            if value > bound:
                failures.append(
                    f"adversarial/{attack}: defended {key} {value} exceeds "
                    f"{bound:.4f} ({(1 + tolerance):.0%} of archived {archived})"
                )
        else:
            bound = archived * (1.0 - tolerance)
            if value < bound:
                failures.append(
                    f"adversarial/{attack}: defended {key} {value} fell below "
                    f"{bound:.4f} ({(1 - tolerance):.0%} of archived {archived})"
                )
    return failures


#: Floor metrics for :func:`check_memory`: metric key -> absolute floor.
#: The phase's currencies are modeled (deterministic), so the absolute
#: bounds are the contract itself: the adaptive arm must *beat* static in
#: total modeled I/O (ratio > 1) and in p99 lookup cost (delta > 0).
MEMORY_ENVELOPE: dict[str, float] = {
    "io_reduction": 1.0,
    "p99_lookup_delta_us": 0.0,
}


def check_memory(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.2,
) -> list[str]:
    """Hold a fresh ``memory_skew`` phase against its contract + archive.

    Two layers.  **Absolute** (:data:`MEMORY_ENVELOPE`): the adaptive arm
    must strictly beat the static arm in total modeled device I/O and in
    p99 per-lookup modeled cost, and both arms' contents must be
    identical -- these hold against *any* baseline because the metrics
    are simulator-deterministic.  **Relative**: if the archive also ran
    the phase, the fresh wins must stay within ``tolerance`` of the
    archived ones (a governor retuning that quietly halves the dividend
    fails CI).  Returns human-readable failure strings (empty means the
    governor's win held).  A current run without the phase fails loudly;
    baselines predating the phase skip only the relative layer.
    """
    failures: list[str] = []
    fresh = next(
        (r for r in current.get("experiments", [])
         if r.get("experiment") == "memory_skew"),
        None,
    )
    if fresh is None:
        return ["memory_skew: phase missing from the current run"]
    if not fresh.get("contents_identical"):
        failures.append("memory_skew: arms' contents are not identical")
    for key, floor in MEMORY_ENVELOPE.items():
        value = fresh.get(key, 0)
        if value <= floor:
            failures.append(
                f"memory_skew: {key} {value} does not clear the absolute "
                f"floor {floor} (the adaptive arm no longer beats static)"
            )
    base = next(
        (r for r in baseline.get("experiments", [])
         if r.get("experiment") == "memory_skew"),
        None,
    )
    if base is None:
        return failures
    for key in MEMORY_ENVELOPE:
        archived = base.get(key)
        value = fresh.get(key)
        if archived is None or value is None:
            continue
        bound = archived * (1.0 - tolerance)
        if value < bound:
            failures.append(
                f"memory_skew: {key} {value} fell below {bound:.3f} "
                f"({(1 - tolerance):.0%} of archived {archived})"
            )
    return failures


#: Floor metrics for :func:`check_policy`: metric key -> absolute floor.
#: Like :data:`MEMORY_ENVELOPE` the currency is modeled (deterministic),
#: so the absolute bound is the contract itself: the tuned arm must beat
#: even the best clairvoyant static policy over the full drifting run
#: (ratio > 1).
POLICY_ENVELOPE: dict[str, float] = {
    "policy_io_reduction": 1.0,
}


def check_policy(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.2,
) -> list[str]:
    """Hold a fresh ``policy_drift`` phase against its contract + archive.

    Two layers, mirroring :func:`check_memory`.  **Absolute**
    (:data:`POLICY_ENVELOPE`): the tuned arm must strictly beat every
    static policy on the full drifting run, stay within the per-third
    slack of the best static arm in every third (``thirds_ok``), have
    actually switched at least once, and all four arms' contents must be
    identical -- these hold against *any* baseline because the metrics
    are simulator-deterministic.  **Relative**: if the archive also ran
    the phase, the fresh win must stay within ``tolerance`` of the
    archived one (a cost-model retuning that quietly erodes the dividend
    fails CI).  Returns human-readable failure strings (empty means the
    tuner's win held).  A current run without the phase fails loudly;
    baselines predating the phase skip only the relative layer.
    """
    failures: list[str] = []
    fresh = next(
        (r for r in current.get("experiments", [])
         if r.get("experiment") == "policy_drift"),
        None,
    )
    if fresh is None:
        return ["policy_drift: phase missing from the current run"]
    if not fresh.get("contents_identical"):
        failures.append("policy_drift: arms' contents are not identical")
    if not fresh.get("thirds_ok"):
        tuned = fresh.get("arms", {}).get("tuned", {}).get("per_third_us")
        best = fresh.get("best_static_per_third_us")
        failures.append(
            f"policy_drift: tuned arm exceeded the per-third slack "
            f"(tuned {tuned} vs best static {best})"
        )
    if not fresh.get("arms", {}).get("tuned", {}).get("switches"):
        failures.append("policy_drift: the tuned arm never switched policy")
    for key, floor in POLICY_ENVELOPE.items():
        value = fresh.get(key, 0)
        if value <= floor:
            failures.append(
                f"policy_drift: {key} {value} does not clear the absolute "
                f"floor {floor} (the tuned arm no longer beats every static "
                "policy)"
            )
    base = next(
        (r for r in baseline.get("experiments", [])
         if r.get("experiment") == "policy_drift"),
        None,
    )
    if base is None:
        return failures
    for key in POLICY_ENVELOPE:
        archived = base.get(key)
        value = fresh.get(key)
        if archived is None or value is None:
            continue
        bound = archived * (1.0 - tolerance)
        if value < bound:
            failures.append(
                f"policy_drift: {key} {value} fell below {bound:.3f} "
                f"({(1 - tolerance):.0%} of archived {archived})"
            )
    return failures


def check_server(current: dict[str, Any]) -> list[str]:
    """Hold a fresh ``served`` phase to the wire-protocol contract.

    Unlike the read/memory/policy gates this one takes no archive
    baseline: every guarded property is an exact invariant, not a
    tolerance-banded speedup, so there is nothing meaningful to compare
    across machines.  The contract:

    * every client arm's final contents digest equals the embedded
      replay's (the acceptance criterion's "digest equivalence with >= 8
      concurrent pipelined clients" -- the 8-client arm is in the sweep);
    * every client arm's total modeled device time equals the embedded
      replay's (exact attribution; the wire never adds modeled work);
    * the storm arm engaged admission control (``shed_total > 0`` -- a
      storm that no longer sheds means the thresholds rotted) and still
      digest-matched its embedded replay (no acknowledged write lost).

    Returns human-readable failure strings (empty means the served
    engine's contract held).  A current run without the phase fails
    loudly.
    """
    failures: list[str] = []
    fresh = next(
        (r for r in current.get("experiments", [])
         if r.get("experiment") == "served"),
        None,
    )
    if fresh is None:
        return ["served: phase missing from the current run"]
    embedded_digest = fresh.get("embedded", {}).get("contents_sha256")
    for name, arm in fresh.get("arms", {}).items():
        if arm.get("contents_sha256") != embedded_digest:
            failures.append(
                f"served: {name}-client arm's contents diverged from the "
                "embedded replay"
            )
    if not fresh.get("modeled_parity"):
        failures.append(
            "served: a client arm's total modeled device time diverged "
            "from the embedded replay (attribution is no longer exact)"
        )
    storm = fresh.get("storm", {})
    if not storm.get("server", {}).get("shed_total"):
        failures.append(
            "served: the storm arm never shed -- admission control did "
            "not engage under hot_shard_storm"
        )
    if not storm.get("contents_identical"):
        failures.append(
            "served: the storm arm lost or reordered an acknowledged "
            "write under shedding"
        )
    return failures
