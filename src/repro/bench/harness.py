"""Shared benchmark machinery (see package docstring).

Scale rationale: the experiments run a few tens of thousands of operations
per configuration over a deliberately small buffer (so the tree develops
4-5 levels and compaction dynamics are realistic) -- large enough for the
paper's effects to emerge, small enough that the full suite regenerates in
minutes on a laptop.  Every figure leads with device I/O counts, which are
scale-stable; see DESIGN.md's substitution table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.core.engine import AcheronEngine, EngineStats
from repro.metrics.reporting import format_table
from repro.workload.generator import WorkloadGenerator
from repro.workload.runner import WorkloadResult, run_workload
from repro.workload.spec import WorkloadSpec

#: The standard engine scale for all experiments.  A 512-entry buffer with
#: T=4 puts ~50k entries across 4 levels; 32 entries/page keeps page counts
#: meaningful.
EXPERIMENT_SCALE: dict[str, Any] = {
    "memtable_entries": 512,
    "entries_per_page": 32,
    "size_ratio": 4,
}

#: Where regenerated tables are archived (next to the benchmark modules).
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def make_baseline(**overrides: Any) -> AcheronEngine:
    """The comparison engine at experiment scale."""
    params: dict[str, Any] = dict(EXPERIMENT_SCALE)
    params.update(overrides)
    return AcheronEngine.baseline(**params)


def make_acheron(
    delete_persistence_threshold: int = 20_000,
    pages_per_tile: int = 4,
    **overrides: Any,
) -> AcheronEngine:
    """The demonstrated engine at experiment scale."""
    params: dict[str, Any] = dict(EXPERIMENT_SCALE)
    params.update(overrides)
    return AcheronEngine.acheron(
        delete_persistence_threshold=delete_persistence_threshold,
        pages_per_tile=pages_per_tile,
        **params,
    )


def run_mixed_workload(
    engine: AcheronEngine, spec: WorkloadSpec, ingest_batch: int | None = None
) -> tuple[WorkloadResult, EngineStats]:
    """Execute one spec (preload + mixed phase) and snapshot the engine.

    ``ingest_batch`` routes consecutive same-kind ingest operations through
    the engine's batch API (behaviour-preserving; see
    :func:`~repro.workload.runner.run_workload`).
    """
    generator = WorkloadGenerator(spec)
    run_workload(
        engine,
        generator.preload_operations(),
        spec.secondary_delete_window,
        ingest_batch=ingest_batch,
    )
    result = run_workload(
        engine,
        generator.mixed_operations(),
        spec.secondary_delete_window,
        ingest_batch=ingest_batch,
    )
    return result, engine.stats()


@dataclass
class ExperimentResult:
    """One regenerated table/figure, ready to print and archive."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: list[list[Any]]
    notes: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        table = format_table(self.headers, self.rows, title=f"{self.exp_id}: {self.title}")
        return f"{table}\n{self.notes}" if self.notes else table


def record_experiment(result: ExperimentResult, benchmark: Any = None) -> None:
    """Print the experiment table and archive it under benchmarks/results/.

    ``benchmark`` is the optional pytest-benchmark fixture; when given, the
    rows are also attached to its ``extra_info`` so they appear in saved
    benchmark JSON.
    """
    rendered = result.render()
    print(f"\n{rendered}\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{result.exp_id}.txt").write_text(rendered + "\n")
    payload = {
        "exp_id": result.exp_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [[_jsonable(cell) for cell in row] for row in result.rows],
        "notes": result.notes,
        "extra": {k: _jsonable(v) for k, v in result.extra.items()},
    }
    (RESULTS_DIR / f"{result.exp_id}.json").write_text(json.dumps(payload, indent=1))
    if benchmark is not None:
        benchmark.extra_info["experiment"] = payload


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else str(value)
    return str(value)
