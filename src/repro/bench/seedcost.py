"""Seed-faithful cost replicas: the pre-optimization hot path, on demand.

The perf suite's headline claim -- "the optimized ingest loop is >= 2x the
pre-change baseline" -- is only honest if both arms run *in the same
process on the same workload*.  This module makes that possible: the
:func:`seed_cost_model` context manager swaps the engine's hot-path
functions for byte-for-byte behavioural replicas of the pre-optimization
("seed") implementations and restores the optimized ones on exit.

The replicas reproduce the seed's *cost structure*, not approximations of
it:

* per-file-build Bloom construction re-hashes every key with ``blake2b``
  (no digest memo, per-key method dispatch, closed-form probe arithmetic);
* KiWi page filters hash every key a *second* time;
* the oldest-tombstone file metadata is recomputed by scanning every entry
  of every tombstone-bearing page on every build;
* compaction merges flow through per-tile ``heapq.merge`` generator towers
  with tuple sort keys (no two-way fast path, no flat materialization);
* the weave sorts on a ``(delete_key, key)`` tuple key;
* every ingest re-derives planner statistics by walking runs and files
  (``use_cached_stats=False``) and evaluates the full planner even when
  nothing changed (``maintenance_fast_path=False``);
* the memtable probes the skip list three times per write (displaced-
  tombstone check, replace check, insert) and draws node levels through
  ``randrange``.

Semantics are identical in both modes -- same tree shape, same simulated
I/O, same compaction log -- because every replica computes the same values
the optimized code computes, just the expensive way.  The equivalence is
asserted by the perf suite after each comparison run.

This module must only ever be used by benchmarks; nothing in the engine
imports it.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from contextlib import contextmanager
from functools import lru_cache
from hashlib import blake2b
from itertools import chain
from typing import TYPE_CHECKING, Iterable, Iterator

import repro.lsm.run as _run_mod
import repro.lsm.tree as _tree_mod
from repro.filters.bloom import BloomFilter, _key_bytes
from repro.lsm.compaction.executor import CompactionEvent, _execute_trivial_move
from repro.lsm.compaction.planner import SaturationPlanner
from repro.lsm.compaction.task import CompactionTask, OutputPlacement
from repro.lsm.entry import Entry
from repro.lsm.iterator import scan_merge
from repro.lsm.memtable import Memtable
from repro.lsm.page import DeleteTile, Page
from repro.lsm.run import Run, SSTableFile, build_files
from repro.lsm.skiplist import SkipList, _MAX_LEVEL, _P_INV
from repro.storage.disk import CATEGORY_COMPACTION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree


# ----------------------------------------------------------------------
# Bloom filters: per-key blake2b on every build, no memo
# ----------------------------------------------------------------------
def _seed_hash_pair(key) -> tuple[int, int]:
    digest = blake2b(_key_bytes(key), digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1
    return h1, h2


def _seed_bloom_add(bloom: BloomFilter, key) -> None:
    if not bloom.num_bits:
        return
    h1, h2 = _seed_hash_pair(key)
    for i in range(bloom.num_hashes):
        bit = (h1 + i * h2) % bloom.num_bits
        bloom._bits[bit >> 3] |= 1 << (bit & 7)


def _seed_bloom_build(keys: Iterable, bits_per_key: float) -> BloomFilter:
    key_list = list(keys)
    bloom = BloomFilter(len(key_list), bits_per_key)
    for key in key_list:
        _seed_bloom_add(bloom, key)
    return bloom


def _seed_might_contain(self: BloomFilter, key) -> bool:
    self.probes += 1
    if not self.num_bits:
        return True
    h1, h2 = _seed_hash_pair(key)
    for i in range(self.num_hashes):
        bit = (h1 + i * h2) % self.num_bits
        if not self._bits[bit >> 3] & (1 << (bit & 7)):
            return False
    return True


# ----------------------------------------------------------------------
# Layout: tuple-key weave, per-tile heap merges, full metadata rescans
# ----------------------------------------------------------------------
def _seed_weave_tile(chunk: list[Entry], entries_per_page: int, pages_per_tile: int) -> DeleteTile:
    if not chunk:
        raise ValueError("cannot weave an empty tile")
    if pages_per_tile == 1 or len(chunk) <= entries_per_page:
        pages = [
            Page(chunk[i : i + entries_per_page]) for i in range(0, len(chunk), entries_per_page)
        ]
        return DeleteTile(pages)
    by_delete_key = sorted(chunk, key=lambda e: (e.delete_key, e.key))
    pages = []
    for start in range(0, len(by_delete_key), entries_per_page):
        page_entries = sorted(
            by_delete_key[start : start + entries_per_page], key=lambda e: e.key
        )
        pages.append(Page(page_entries))
    return DeleteTile(pages)


def _seed_tile_iter_entries_sorted(self: DeleteTile) -> Iterator[Entry]:
    if len(self.pages) == 1:
        yield from self.pages[0].entries
        return
    yield from heapq.merge(*(p.entries for p in self.pages), key=lambda e: e.key)


def _seed_file_iter_all_entries(self: SSTableFile) -> Iterator[Entry]:
    for tile in self.tiles:
        yield from tile.iter_entries_sorted()


def _seed_oldest_tombstone_time(tiles: list[DeleteTile]) -> int | None:
    oldest: int | None = None
    for tile in tiles:
        for page in tile.pages:
            if not page.tombstone_count:
                continue
            for entry in page.entries:
                if entry.is_tombstone and (oldest is None or entry.write_time < oldest):
                    oldest = entry.write_time
    return oldest


def _seed_sstable_build(
    cls,
    file_id: int,
    entries: list[Entry],
    config,
    created_at: int,
    level: int = 1,
    salt: bytes | None = None,
) -> SSTableFile:
    # The seed replica only ever runs on unsalted benchmark engines; the
    # parameter exists so optimized call sites can pass salt=None through.
    if salt is not None:
        raise ValueError("the seed cost model does not support salted blooms")
    if not entries:
        raise ValueError("cannot build an empty file")
    tile_span = config.entries_per_page * config.pages_per_tile
    tiles = [
        _seed_weave_tile(
            entries[i : i + tile_span],
            config.entries_per_page,
            config.pages_per_tile,
        )
        for i in range(0, len(entries), tile_span)
    ]
    bits = config.bloom_bits_for_level(level)
    bloom = _seed_bloom_build((e.key for e in entries), bits)
    if config.kiwi_page_filters and config.pages_per_tile > 1:
        for tile in tiles:
            if len(tile.pages) <= 1:
                continue
            for page in tile.pages:
                page.bloom = _seed_bloom_build((e.key for e in page.entries), bits)
    return cls(file_id, tiles, bloom, created_at)


# ----------------------------------------------------------------------
# Merge: tuple-key k-way heap, no two-way fast path
# ----------------------------------------------------------------------
def _seed_merge_resolve(sources, on_shadowed=None) -> Iterator[Entry]:
    if not sources:
        return
    if len(sources) == 1:
        yield from sources[0]
        return
    merged = heapq.merge(*sources, key=lambda e: (e.key, -e.seqno))
    current: Entry | None = None
    for entry in merged:
        if current is None or entry.key != current.key:
            if current is not None:
                yield current
            current = entry
        else:
            if on_shadowed is not None:
                on_shadowed(entry, current)
    if current is not None:
        yield current


def _seed_execute_task(task: CompactionTask, tree: "LSMTree") -> CompactionEvent:
    now = tree.clock.now()
    listener = tree.listener

    if task.trivial_move:
        return _execute_trivial_move(task, tree, now)

    pages_read = task.input_pages
    if pages_read:
        tree.disk.read_pages(pages_read, CATEGORY_COMPACTION)

    superseded = 0

    def on_shadowed(loser: Entry, winner: Entry) -> None:
        nonlocal superseded
        if loser.is_tombstone:
            superseded += 1
            if listener is not None:
                listener.tombstone_superseded(loser, now)

    sources = [
        chain.from_iterable(f.iter_all_entries() for f in inp.files) for inp in task.inputs
    ]
    out_entries: list[Entry] = []
    dropped = 0
    for entry in _seed_merge_resolve(sources, on_shadowed):
        if task.drop_tombstones and entry.is_tombstone:
            dropped += 1
            if listener is not None:
                listener.tombstone_persisted(entry, now)
        else:
            out_entries.append(entry)

    new_files = (
        build_files(out_entries, tree.config, tree.file_ids, now, level=task.target_level)
        if out_entries
        else []
    )
    pages_written = sum(f.page_count for f in new_files)
    if pages_written:
        tree.disk.write_pages(pages_written, CATEGORY_COMPACTION)

    for inp in task.inputs:
        level = tree.level(inp.level_index)
        consumed = {f.file_id for f in inp.files}
        remaining = [f for f in inp.run.files if f.file_id not in consumed]
        level.replace_run(inp.run, Run(remaining) if remaining else None)
        for file in inp.files:
            tree.cache.invalidate_file(file.file_id)
            tree.on_file_removed(file, inp.level_index)

    if new_files:
        target = tree.level(task.target_level)
        if task.placement is OutputPlacement.MERGE_INTO_TARGET_RUN and target.runs:
            if len(target.runs) != 1:
                raise AssertionError(
                    f"MERGE_INTO_TARGET_RUN expects a leveled target, found "
                    f"{len(target.runs)} runs in level {task.target_level}"
                )
            existing = target.runs[0]
            target.replace_run(existing, Run(existing.files + new_files))
        else:
            target.add_newest_run(Run(new_files))
        for file in new_files:
            tree.on_file_added(file, task.target_level)

    return CompactionEvent(
        reason=task.reason.value,
        source_level=task.source_level,
        target_level=task.target_level,
        entries_in=task.input_entries,
        entries_out=len(out_entries),
        tombstones_dropped=dropped,
        tombstones_superseded=superseded,
        pages_read=pages_read,
        pages_written=pages_written,
        output_file_ids=tuple(f.file_id for f in new_files),
        tick=now,
    )


# ----------------------------------------------------------------------
# Write buffer: triple traversal per write, randrange level draws
# ----------------------------------------------------------------------
def _seed_random_level(self: SkipList) -> int:
    level = 1
    while level < _MAX_LEVEL and self._rng.randrange(_P_INV) == 0:
        level += 1
    return level


def _seed_memtable_add(self: Memtable, entry: Entry) -> Entry | None:
    old = self._map.get(entry.key)
    if old is not None and old.is_tombstone:
        self._tombstones -= 1
    self._map.insert(entry.key, entry)
    if entry.is_tombstone:
        self._tombstones += 1
        if self.first_tombstone_time is None:
            self.first_tombstone_time = entry.write_time
    return old


def _seed_tree_ingest(self: "LSMTree", entry: Entry) -> None:
    self._check_writable()
    displaced = self.memtable.get(entry.key)
    if displaced is not None and displaced.is_tombstone and self.listener is not None:
        self.listener.tombstone_superseded(displaced, self.clock.now())
    if self._wal is not None:
        self._wal.append(entry)
    self.memtable.add(entry)
    self.clock.tick()
    self._maybe_flush()
    self.maintain()


# ----------------------------------------------------------------------
# Read path: the pre-overhaul lookup and scan (BENCH_1 conditions)
# ----------------------------------------------------------------------
@lru_cache(maxsize=1 << 18)
def _seed_key_hash_pair(key) -> tuple[int, int]:
    """The pre-overhaul digest memo (``functools.lru_cache``, not a dict)."""
    return _seed_hash_pair(key)


def _seed_read_might_contain(self: BloomFilter, key) -> bool:
    """The pre-overhaul probe: memoized pair + inline loop, per *probe*."""
    self.probes += 1
    num_bits = self.num_bits
    if not num_bits:
        return True
    try:
        h, h2 = _seed_key_hash_pair(key)
    except TypeError:
        h, h2 = _seed_hash_pair(key)
    bits = self._bits
    for _ in range(self.num_hashes):
        bit = h % num_bits
        if not bits[bit >> 3] & (1 << (bit & 7)):
            return False
        h += h2
    return True


def _seed_page_get(self: Page, key) -> Entry | None:
    """Per-comparison lambda-key bisect (no cached key list)."""
    entries = self.entries
    idx = bisect_left(entries, key, key=lambda e: e.key)
    if idx < len(entries) and entries[idx].key == key:
        return entries[idx]
    return None


def _seed_file_get(self: SSTableFile, key, reader, pinned: bool = False) -> Entry | None:
    """Candidate-list enumeration with no single-page fast path."""
    tile_idx = self.tile_fence.locate(key)
    if tile_idx is None:
        return None
    tile = self.tiles[tile_idx]
    for page_idx in tile.candidate_page_indexes(key):
        candidate = tile.pages[page_idx]
        if candidate.bloom is not None and not candidate.bloom.might_contain(key):
            continue
        page = reader.read_page(self, tile_idx, page_idx)
        entry = _seed_page_get(page, key)
        if entry is not None:
            return entry
    return None


def _seed_tree_get_entry(self: "LSMTree", key) -> Entry | None:
    """A fresh PageReader per call; every run probed, no span precheck."""
    entry = self.memtable.get(key)
    if entry is not None:
        return entry
    reader = _run_mod.PageReader(self.disk, self.cache)
    for level in self.iter_levels():
        for run in level.runs:  # newest first
            found = run.get(key, reader)
            if found is not None:
                return found
    return None


def _seed_tree_scan(self: "LSMTree", lo, hi, limit=None, reverse=False):
    """One per-run generator tower over ``range_entries`` + ``scan_merge``.

    Every page of every overlapping tile is charged as its own device
    request, shadowed versions flow through the merge before being
    dropped, and no run is pruned up front -- the pre-overhaul scan.
    """
    self._check_open()
    self.counters["scans"] += 1
    reader = _run_mod.PageReader(self.disk, self.cache)
    buffered = list(self.memtable.range(lo, hi))
    if reverse:
        buffered.reverse()
    sources = [buffered]
    for level in self.iter_levels():
        for run in level.runs:
            if reverse:
                sources.append(run.range_entries_desc(lo, hi, reader))
            else:
                sources.append(run.range_entries(lo, hi, reader))
    for entry in scan_merge(sources, limit=limit, reverse=reverse):
        yield entry.key, entry.value


@contextmanager
def seed_read_model():
    """Run the enclosed block with the pre-overhaul read path.

    Replicates the read-side cost structure as of BENCH_1: a fresh
    :class:`PageReader` allocated per lookup/scan, every run of every
    level probed through ``Run.get`` with no run-span precheck, the Bloom
    pair memoized behind an ``lru_cache`` wrapper, per-page binary search
    through a per-comparison ``key=`` lambda, and scans built as per-run
    ``range_entries`` generator towers merged by ``scan_merge``.
    Semantics are identical to the overhauled path (asserted by the perf
    suite); only the cost structure differs.  Patches are process-global;
    benchmark arms run sequentially within one worker.
    """
    saved = (
        _tree_mod.LSMTree._get_entry,
        _tree_mod.LSMTree.scan,
        SSTableFile.get,
        Page.get,
        BloomFilter.might_contain,
    )
    _tree_mod.LSMTree._get_entry = _seed_tree_get_entry
    _tree_mod.LSMTree.scan = _seed_tree_scan
    SSTableFile.get = _seed_file_get
    Page.get = _seed_page_get
    BloomFilter.might_contain = _seed_read_might_contain
    try:
        yield
    finally:
        (
            _tree_mod.LSMTree._get_entry,
            _tree_mod.LSMTree.scan,
            SSTableFile.get,
            Page.get,
            BloomFilter.might_contain,
        ) = saved


# ----------------------------------------------------------------------
# The switch
# ----------------------------------------------------------------------
@contextmanager
def seed_cost_model(*trees: "LSMTree"):
    """Run the enclosed block with the pre-optimization hot path.

    Patches are process-global (benchmark arms run sequentially within one
    worker), plus per-tree planner/trigger downgrades for every tree passed
    in.  Everything is restored on exit, including each tree's planner and
    fast-path flag.
    """
    saved = {
        "build": SSTableFile.build,
        "iter_all": SSTableFile.iter_all_entries,
        "tile_iter": DeleteTile.iter_entries_sorted,
        "oldest": _run_mod._oldest_tombstone_time,
        "weave": _run_mod.weave_tile,
        "exec": _tree_mod.execute_task,
        "might": BloomFilter.might_contain,
        "rand": SkipList._random_level,
        "mt_add": Memtable.add,
        "ingest": _tree_mod.LSMTree._ingest,
    }
    tree_saved = [(t, t._planner, t.maintenance_fast_path) for t in trees]
    SSTableFile.build = classmethod(_seed_sstable_build)
    SSTableFile.iter_all_entries = _seed_file_iter_all_entries
    DeleteTile.iter_entries_sorted = _seed_tile_iter_entries_sorted
    _run_mod._oldest_tombstone_time = _seed_oldest_tombstone_time
    _run_mod.weave_tile = _seed_weave_tile
    _tree_mod.execute_task = _seed_execute_task
    BloomFilter.might_contain = _seed_might_contain
    SkipList._random_level = _seed_random_level
    Memtable.add = _seed_memtable_add
    _tree_mod.LSMTree._ingest = _seed_tree_ingest
    for tree in trees:
        tree._planner = SaturationPlanner(tree.config, use_cached_stats=False)
        tree.maintenance_fast_path = False
    try:
        yield
    finally:
        SSTableFile.build = saved["build"]
        SSTableFile.iter_all_entries = saved["iter_all"]
        DeleteTile.iter_entries_sorted = saved["tile_iter"]
        _run_mod._oldest_tombstone_time = saved["oldest"]
        _run_mod.weave_tile = saved["weave"]
        _tree_mod.execute_task = saved["exec"]
        BloomFilter.might_contain = saved["might"]
        SkipList._random_level = saved["rand"]
        Memtable.add = saved["mt_add"]
        _tree_mod.LSMTree._ingest = saved["ingest"]
        for tree, planner, fast in tree_saved:
            tree._planner = planner
            tree.maintenance_fast_path = fast
