"""Benchmark harness support.

Shared machinery for the experiment modules in ``benchmarks/``: standard
engine scales, workload execution helpers, and an experiment recorder that
both prints each regenerated table/figure and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can quote stable artifacts.
"""

from repro.bench.harness import (
    EXPERIMENT_SCALE,
    ExperimentResult,
    make_acheron,
    make_baseline,
    record_experiment,
    run_mixed_workload,
)

__all__ = [
    "EXPERIMENT_SCALE",
    "ExperimentResult",
    "make_acheron",
    "make_baseline",
    "record_experiment",
    "run_mixed_workload",
]
