"""Retention-based deletion: "keep nothing older than W".

The deletion-compliance framework behind this system distinguishes two
delete classes: *on-demand* deletes (a user asks; served by point deletes
+ FADE) and *retention-based* deletes (policy says data expires after a
window; served by secondary range deletes over the delete key).  This
module implements the latter as an engine-attached policy:

    policy = RetentionPolicy(engine, window=50_000, period=5_000)
    ... policy.maybe_purge() after batches, or wire it into your loop ...

Every ``period`` ticks the policy issues ``delete_range(0, now - window)``
-- with KiWi that is mostly free page drops.  The policy keeps an audit
log of every purge (when, horizon, entries removed, I/O paid), which is
what a compliance review wants to see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.kiwi import SecondaryDeleteReport
from repro.errors import AcheronError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import AcheronEngine


@dataclass(frozen=True)
class PurgeRecord:
    """One executed retention purge (the audit-log row)."""

    tick: int
    horizon: int
    entries_deleted: int
    buffered_deleted: int
    pages_dropped: int
    io_pages: int


@dataclass
class RetentionPolicy:
    """Purges everything older than ``window`` every ``period`` ticks.

    ``window`` and ``period`` are in clock ticks (delete keys default to
    insertion ticks, so "age" is ticks since insertion).  The first purge
    happens once the clock passes ``window``; call :meth:`maybe_purge`
    as often as convenient -- it is O(1) when nothing is due.
    """

    engine: "AcheronEngine"
    window: int
    period: int
    method: str = "auto"
    audit_log: list[PurgeRecord] = field(default_factory=list)
    _next_due: int = field(init=False)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise AcheronError(f"retention window must be >= 1 tick, got {self.window}")
        if self.period < 1:
            raise AcheronError(f"purge period must be >= 1 tick, got {self.period}")
        self._next_due = self.window

    # ------------------------------------------------------------------
    # operation
    # ------------------------------------------------------------------
    def maybe_purge(self) -> SecondaryDeleteReport | None:
        """Run a purge if one is due; returns its report (or None)."""
        now = self.engine.clock.now()
        if now < self._next_due:
            return None
        return self.purge_now()

    def purge_now(self) -> SecondaryDeleteReport:
        """Unconditionally purge everything older than the window."""
        now = self.engine.clock.now()
        horizon = max(0, now - self.window)
        report = self.engine.delete_range(0, horizon, method=self.method)
        self.audit_log.append(
            PurgeRecord(
                tick=now,
                horizon=horizon,
                entries_deleted=report.entries_deleted,
                buffered_deleted=report.memtable_entries_deleted,
                pages_dropped=report.pages_dropped,
                io_pages=report.io.total_pages,
            )
        )
        self._next_due = now + self.period
        return report

    # ------------------------------------------------------------------
    # compliance reporting
    # ------------------------------------------------------------------
    @property
    def next_due_tick(self) -> int:
        return self._next_due

    def total_purged(self) -> int:
        return sum(r.entries_deleted + r.buffered_deleted for r in self.audit_log)

    def oldest_possible_entry_age(self) -> int:
        """Worst-case age of any retained expired entry.

        Between purges, an entry can exceed the window by at most one
        period -- the policy's compliance bound, analogous to ``D_th``
        for point deletes.
        """
        return self.window + self.period
