"""KiWi in action: secondary range deletes.

The paper's second problem: LSM engines can only delete on the sort key.
Deleting on another attribute (the *delete key*, e.g. a creation timestamp
-- "purge everything older than 30 days") classically requires reading and
re-writing the entire tree.  The key-weaving layout makes such deletes
cheap: because pages inside a delete tile partition the delete-key range, a
range predicate classifies every page without reading it:

* **disjoint** from the range -> keep, zero I/O;
* **fully covered** by the range (and holding no tombstones) -> drop, zero
  I/O -- the entries physically vanish with a metadata update;
* **partially overlapping** -> read, filter, rewrite: one page read + at
  most one page write.

:func:`kiwi_range_delete` implements this; :func:`full_rewrite_delete` is
the baseline comparator that pays the full-tree rewrite.  Experiment F5
races the two.

Semantics (both paths): a secondary range delete removes every *value*
entry whose delete key falls in ``[lo, hi]`` from the whole tree, including
the memtable.  Point-delete tombstones are never removed by a secondary
delete -- a tombstone's delete key is just its write time, and dropping one
would resurrect older versions of its key below.  The classifier therefore
treats a covered page that contains tombstones as a partial page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import AcheronError
from repro.lsm.page import DeleteTile, Page
from repro.lsm.run import Run, SSTableFile, build_files
from repro.storage.disk import CATEGORY_SECONDARY_DELETE, IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree


@dataclass
class SecondaryDeleteReport:
    """What one secondary range delete did and what it cost."""

    method: str
    lo: int
    hi: int
    files_examined: int = 0
    files_modified: int = 0
    files_emptied: int = 0
    pages_kept: int = 0
    pages_dropped: int = 0
    pages_rewritten: int = 0
    entries_deleted: int = 0
    memtable_entries_deleted: int = 0
    io: IOStats = field(default_factory=IOStats)
    #: Sequence number of the fence a ``lazy`` delete installed (None for
    #: the physical methods).  Lazy reports are *honest about deferral*:
    #: every counter above stays at its call-time value -- zero pages
    #: touched, zero entries physically deleted -- because the rewrite
    #: happens later, inside compactions, where it is charged to
    #: ``CATEGORY_COMPACTION`` and surfaced per-merge as
    #: ``CompactionEvent.fence_resolved``.
    fence_seqno: int | None = None

    @property
    def pages_touched_by_io(self) -> int:
        return self.io.total_pages

    def summary(self) -> str:
        if self.method == "lazy":
            return (
                f"lazy: fenced dkey=[{self.lo},{self.hi}] (seqno {self.fence_seqno}) -- "
                f"0 pages touched at call time; resolution deferred to compaction "
                f"({self.io.modeled_us / 1000.0:.2f} ms modeled)"
            )
        return (
            f"{self.method}: deleted {self.entries_deleted} entries "
            f"(+{self.memtable_entries_deleted} buffered) over dkey=[{self.lo},{self.hi}] -- "
            f"{self.pages_dropped} pages dropped free, {self.pages_rewritten} rewritten, "
            f"{self.io.pages_read} read / {self.io.pages_written} written "
            f"({self.io.modeled_us / 1000.0:.2f} ms modeled)"
        )


def _check_range(lo: int, hi: int) -> None:
    if lo > hi:
        raise AcheronError(f"secondary delete range is empty: [{lo}, {hi}]")


def _delete_from_memtable(tree: "LSMTree", lo: int, hi: int) -> int:
    """Remove matching buffered puts (pure in-memory work, no I/O)."""
    doomed = [
        entry.key
        for entry in tree.memtable
        if entry.is_put and lo <= entry.delete_key <= hi
    ]
    for key in doomed:
        tree.memtable._map.remove(key)  # noqa: SLF001 - core module, by design
    return len(doomed)


def kiwi_range_delete(tree: "LSMTree", lo: int, hi: int) -> SecondaryDeleteReport:
    """Delete every value with ``lo <= delete_key <= hi`` via page drops.

    Works on any layout; with ``pages_per_tile == 1`` (classic layout) the
    delete-key ranges of pages follow ingestion locality only, so far fewer
    pages are droppable -- exactly the contrast experiment F7 sweeps.
    """
    _check_range(lo, hi)
    report = SecondaryDeleteReport(method="kiwi", lo=lo, hi=hi)
    before = tree.disk.snapshot()
    report.memtable_entries_deleted = _delete_from_memtable(tree, lo, hi)

    for level in tree.iter_levels():
        for run in list(level.runs):
            new_files: list[SSTableFile] = []
            changed = False
            for file in run.files:
                report.files_examined += 1
                replacement = _delete_from_file(tree, file, lo, hi, report)
                if replacement is file:
                    new_files.append(file)
                    continue
                changed = True
                report.files_modified += 1
                tree.cache.invalidate_file(file.file_id)
                tree.on_file_removed(file, level.index)
                if replacement is None:
                    report.files_emptied += 1
                else:
                    new_files.append(replacement)
                    tree.on_file_added(replacement, level.index)
            if changed:
                level.replace_run(run, Run(new_files) if new_files else None)

    tree._persist_manifest()  # noqa: SLF001 - core module, by design
    if report.memtable_entries_deleted:
        tree._sync_wal_with_memtable()  # noqa: SLF001 - core module, by design
    report.io = tree.disk.delta_since(before)
    return report


def _delete_from_file(
    tree: "LSMTree",
    file: SSTableFile,
    lo: int,
    hi: int,
    report: SecondaryDeleteReport,
) -> SSTableFile | None:
    """Apply the page classifier to one file.

    Returns the same object when untouched, a rebuilt file, or None when
    every page vanished.
    """
    touched = False
    new_tiles: list[DeleteTile] = []
    for tile in file.tiles:
        if not (lo <= tile.max_delete_key and tile.min_delete_key <= hi):
            new_tiles.append(tile)
            report.pages_kept += len(tile)
            continue
        new_pages: list[Page] = []
        for page in tile.pages:
            if not page.overlaps_delete_range(lo, hi):
                new_pages.append(page)
                report.pages_kept += 1
                continue
            if page.covered_by_delete_range(lo, hi) and page.tombstone_count == 0:
                # The free case: drop the whole page without reading it.
                touched = True
                report.pages_dropped += 1
                report.entries_deleted += len(page)
                continue
            # Partial page (or covered but holding tombstones): read,
            # filter, and rewrite the survivors.
            tree.disk.read_pages(1, CATEGORY_SECONDARY_DELETE)
            survivors = [
                e for e in page.entries if e.is_tombstone or not (lo <= e.delete_key <= hi)
            ]
            deleted_here = len(page.entries) - len(survivors)
            if deleted_here == 0:
                new_pages.append(page)
                report.pages_kept += 1
                continue
            touched = True
            report.entries_deleted += deleted_here
            if survivors:
                tree.disk.write_pages(1, CATEGORY_SECONDARY_DELETE)
                report.pages_rewritten += 1
                rebuilt = Page(survivors)
                if page.bloom is not None:
                    from repro.filters.bloom import BloomFilter

                    rebuilt.bloom = BloomFilter.build(
                        (e.key for e in survivors),
                        tree.config.bloom_bits_per_key,
                        salt=tree.bloom_salt,
                    )
                new_pages.append(rebuilt)
            else:
                report.pages_dropped += 1
        if new_pages:
            new_tiles.append(DeleteTile(new_pages))
    if not touched:
        return file
    if not new_tiles:
        return None
    return SSTableFile.from_tiles(
        tree.file_ids(), new_tiles, file.bloom, file.created_at
    )


def lazy_range_delete(tree: "LSMTree", lo: int, hi: int) -> SecondaryDeleteReport:
    """Delete every value with ``lo <= delete_key <= hi`` in O(1) call time.

    The Acheron move applied to secondary deletes: instead of touching any
    page, persist a **range-tombstone fence** ``(lo, hi, seqno)`` -- one
    WAL append plus one manifest publish.  The read path consults the
    fence immediately (shadowed values stop being served the instant this
    returns), flushes drop shadowed buffered entries, and compactions
    physically remove shadowed on-disk entries as a side effect of merges
    they were doing anyway; FADE escalates any file still shadowed as its
    fence approaches ``D_th``, so the physical purge is bounded just like
    point-delete persistence.

    Unlike :func:`kiwi_range_delete`, this needs no ``exclusive()``
    quiesce in concurrent mode and its cost does not grow with the amount
    of covered data.  The report is honest about the deferral: zero pages
    touched, zero entries counted as deleted at call time (see
    :class:`SecondaryDeleteReport.fence_seqno`).
    """
    _check_range(lo, hi)
    report = SecondaryDeleteReport(method="lazy", lo=lo, hi=hi)
    before = tree.disk.snapshot()
    fence = tree.append_range_fence(lo, hi)
    report.fence_seqno = fence.seqno
    report.io = tree.disk.delta_since(before)
    return report


def full_rewrite_delete(tree: "LSMTree", lo: int, hi: int) -> SecondaryDeleteReport:
    """The baseline: read and rewrite the whole tree to apply the delete.

    Every page of every file is read, matching values are filtered out,
    and each run is rebuilt.  The level structure is preserved (this is
    not a full compaction -- versions keep their levels), so the only
    difference from :func:`kiwi_range_delete` is the cost.
    """
    _check_range(lo, hi)
    report = SecondaryDeleteReport(method="full_rewrite", lo=lo, hi=hi)
    before = tree.disk.snapshot()
    report.memtable_entries_deleted = _delete_from_memtable(tree, lo, hi)

    for level in tree.iter_levels():
        for run in list(level.runs):
            report.files_examined += len(run.files)
            tree.disk.read_pages(run.page_count, CATEGORY_SECONDARY_DELETE)
            survivors = [
                e
                for e in run.iter_all_entries()
                if e.is_tombstone or not (lo <= e.delete_key <= hi)
            ]
            deleted = run.entry_count - len(survivors)
            report.entries_deleted += deleted
            if deleted == 0:
                continue
            for file in run.files:
                report.files_modified += 1
                tree.cache.invalidate_file(file.file_id)
                tree.on_file_removed(file, level.index)
            if survivors:
                new_files = build_files(
                    survivors,
                    tree.config,
                    tree.file_ids,
                    tree.clock.now(),
                    level=level.index,
                    salt=tree.bloom_salt,
                )
                pages = sum(f.page_count for f in new_files)
                tree.disk.write_pages(pages, CATEGORY_SECONDARY_DELETE)
                report.pages_rewritten += pages
                for file in new_files:
                    tree.on_file_added(file, level.index)
                level.replace_run(run, Run(new_files))
            else:
                report.files_emptied += len(run.files)
                level.replace_run(run, None)

    tree._persist_manifest()  # noqa: SLF001 - core module, by design
    if report.memtable_entries_deleted:
        tree._sync_wal_with_memtable()  # noqa: SLF001 - core module, by design
    report.io = tree.disk.delta_since(before)
    return report
