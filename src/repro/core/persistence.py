"""The tombstone lifecycle and delete persistence latency.

The paper's problem statement: in a state-of-the-art LSM engine a delete is
*logical* -- a tombstone invalidates older versions but the invalidated data
(and the tombstone) may survive on disk arbitrarily long, which breaks
privacy regulation deadlines (GDPR's right to be forgotten et al.).  The
metric that captures this is **delete persistence latency**: the time from
tombstone insertion to the moment the delete is *physically* realized.

A tombstone's life can end in exactly two ways:

* **persisted** -- a compaction merged it into the bottommost level and
  dropped it: every older version is physically gone.  The latency of this
  event is what FADE bounds by ``D_th``.
* **superseded** -- a newer write to the same key shadowed it before it
  persisted; the delete became moot (the key was re-inserted or re-deleted)
  and the newer entry carries the obligation forward.

:class:`PersistenceTracker` observes these events from the engine (it is
the ``listener`` the tree reports to) and exposes the distributions the F1
and F6 experiments plot, including the paper-critical *pending* set: deletes
issued but not yet persisted, i.e. the engine's current privacy exposure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.lsm.entry import Entry


class DeleteLifecycleListener(Protocol):
    """What the tree reports to (see :class:`~repro.lsm.tree.LSMTree`)."""

    def tombstone_registered(self, entry: Entry, now: int) -> None: ...

    def tombstone_persisted(self, entry: Entry, now: int) -> None: ...

    def tombstone_superseded(self, entry: Entry, now: int) -> None: ...


@dataclass
class PersistenceStats:
    """Summary of the delete lifecycle at one observation point."""

    registered: int
    persisted: int
    superseded: int
    pending: int
    max_latency: int | None
    mean_latency: float | None
    p50_latency: int | None
    p99_latency: int | None
    violations: int
    oldest_pending_age: int | None
    threshold: int | None

    def compliant(self) -> bool:
        """True when no persisted delete exceeded the threshold *and* no
        pending delete has already aged past it."""
        if self.threshold is None:
            return True
        if self.violations:
            return False
        return self.oldest_pending_age is None or self.oldest_pending_age <= self.threshold


@dataclass
class PersistenceTracker:
    """Observes tombstone lifecycle events and aggregates latency stats.

    ``threshold`` is the ``D_th`` being checked (None for a baseline engine
    with no guarantee -- latencies are still recorded, which is how the F1
    experiment shows the baseline's unbounded tail).
    """

    threshold: int | None = None
    _pending: dict[tuple[Any, int], int] = field(default_factory=dict)
    latencies: list[int] = field(default_factory=list)
    registered_count: int = 0
    persisted_count: int = 0
    superseded_count: int = 0
    violations: int = 0
    #: Lifecycle events for tombstones this tracker never saw registered
    #: (possible after crash recovery); counted rather than raised.
    unmatched_events: int = 0

    # ------------------------------------------------------------------
    # listener protocol
    # ------------------------------------------------------------------
    def tombstone_registered(self, entry: Entry, now: int) -> None:
        self.registered_count += 1
        self._pending[(entry.key, entry.seqno)] = entry.write_time

    def tombstone_persisted(self, entry: Entry, now: int) -> None:
        born = self._pending.pop((entry.key, entry.seqno), None)
        if born is None:
            self.unmatched_events += 1
            born = entry.write_time
        latency = now - born
        self.persisted_count += 1
        self.latencies.append(latency)
        if self.threshold is not None and latency > self.threshold:
            self.violations += 1

    def tombstone_superseded(self, entry: Entry, now: int) -> None:
        if self._pending.pop((entry.key, entry.seqno), None) is None:
            self.unmatched_events += 1
        self.superseded_count += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def pending_ages(self, now: int) -> list[int]:
        """Age of every unpersisted delete (the privacy-exposure view)."""
        return sorted(now - born for born in self._pending.values())

    def pending_items(self) -> list[tuple[Any, int, int]]:
        """Every unpersisted delete as ``(key, seqno, write_time)``.

        The crash-matrix harness uses this to assert that tombstone birth
        times -- and therefore their ``D_th`` clocks -- are rebuilt
        exactly across a restart, never reset to the reopen tick.
        """
        return [(key, seqno, born) for (key, seqno), born in self._pending.items()]

    def latency_percentile(self, fraction: float) -> int | None:
        """The ``fraction``-quantile of persisted latencies (0 < f <= 1)."""
        if not self.latencies:
            return None
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
        return ordered[index]

    def stats(self, now: int) -> PersistenceStats:
        ages = self.pending_ages(now)
        return PersistenceStats(
            registered=self.registered_count,
            persisted=self.persisted_count,
            superseded=self.superseded_count,
            pending=self.pending_count,
            max_latency=max(self.latencies) if self.latencies else None,
            mean_latency=(sum(self.latencies) / len(self.latencies)) if self.latencies else None,
            p50_latency=self.latency_percentile(0.50),
            p99_latency=self.latency_percentile(0.99),
            violations=self.violations,
            oldest_pending_age=ages[-1] if ages else None,
            threshold=self.threshold,
        )


class NullListener:
    """A listener that ignores everything (engines without tracking)."""

    def tombstone_registered(self, entry: Entry, now: int) -> None:
        pass

    def tombstone_persisted(self, entry: Entry, now: int) -> None:
        pass

    def tombstone_superseded(self, entry: Entry, now: int) -> None:
        pass
