"""FADE: fast deletion through delete-aware compaction.

FADE turns the user's delete persistence threshold ``D_th`` into enforcement
machinery with three pieces:

**Per-level TTL allocation.**  A tombstone must traverse buffer and levels
``1..L`` within ``D_th``, so the threshold is split into per-level shares
that grow geometrically with level capacity::

    cum_ttl(i) = D_th * (T^(i+1) - 1) / (T^(L+1) - 1)

``cum_ttl(i)`` is the cumulative deadline offset by which a tombstone
written at time ``w`` must have *left* level ``i`` (``i = 0`` is the
buffer; ``cum_ttl(L) = D_th`` exactly).  Deeper levels hold exponentially
more data and therefore get exponentially more time, which keeps the extra
compaction traffic small -- the +4-25% write-amplification overhead band.

**Expiry triggers.**  Every file carries the ``write_time`` of its oldest
tombstone; when a file lands in level ``i`` the scheduler records the
deadline ``oldest + cum_ttl(i)`` in a lazy min-heap.  The engine peeks the
heap once per ingest (O(1)); an expired file yields a compaction that moves
it down one level -- or, at the bottommost level, rewrites it in place to
physically purge its tombstones (:class:`BOTTOM_PURGE`).  If the tree has
deepened since a deadline was computed, the move cascades within a single
maintenance pass, so the end-to-end bound always holds.

**Delete-aware data movement.**  Saturation compactions pick the file with
the highest tombstone density (see
:class:`~repro.config.FilePickPolicy.TOMBSTONE_DENSITY`), so ordinary
housekeeping also pushes deletes toward the bottom.  That part is
implemented in the shared planner; this module owns the TTL machinery.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.config import CompactionStyle, LSMConfig
from repro.lsm.fence import RangeFence, file_shadowable
from repro.lsm.run import SSTableFile
from repro.lsm.compaction.task import (
    CompactionReason,
    CompactionTask,
    OutputPlacement,
    TaskInput,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lsm.tree import LSMTree


class FadeScheduler:
    """Tracks tombstone deadlines and plans expiry-driven compactions."""

    def __init__(self, config: LSMConfig) -> None:
        if config.delete_persistence_threshold is None:
            raise ValueError("FadeScheduler requires a delete_persistence_threshold")
        if not config.drop_tombstones_at_bottom:
            raise ValueError(
                "FADE cannot honor D_th with drop_tombstones_at_bottom=False: "
                "purging at the last level is how a delete is persisted"
            )
        self.config = config
        self.d_th = config.delete_persistence_threshold
        # (deadline, file_id); entries go stale when files are removed --
        # validated lazily against _live on pop, and compacted wholesale
        # when stale entries dominate (see file_removed).
        self._heap: list[tuple[int, int]] = []
        self._live: dict[int, tuple[SSTableFile, int]] = {}
        #: Heap size right after the last rebuild; compaction only triggers
        #: once the heap has grown well past it again, so repeated removals
        #: against an incompressible heap cannot thrash O(n) rebuilds.
        self._last_compacted_size = 0
        self.heap_compactions = 0
        self.expiry_compactions = 0
        self.purge_compactions = 0
        # Range-tombstone fences live in their own registry and heap: a
        # fence is not a file (tracked_file_count and the file heap keep
        # their exact meaning), and unlike a file expiry a fence deadline
        # is not consumed by one compaction -- it stays armed until the
        # tree retires the fence (fence_removed).
        self._fence_live: dict[int, RangeFence] = {}
        self._fence_heap: list[tuple[int, int]] = []  # (deadline, fence seqno)
        self.fence_expiry_compactions = 0

    # ------------------------------------------------------------------
    # TTL allocation
    # ------------------------------------------------------------------
    def cumulative_ttl(self, level: int, deepest: int) -> int:
        """Deadline offset by which a tombstone must have left ``level``.

        ``level`` 0 is the write buffer.  ``deepest`` is the currently
        deepest data-bearing level; at or beyond it the full ``D_th``
        applies (the tombstone must be *purged* by then).
        """
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        depth = max(deepest, 1)
        if level >= depth:
            return self.d_th
        ratio = self.config.size_ratio
        share = self.d_th * (ratio ** (level + 1) - 1) // (ratio ** (depth + 1) - 1)
        return max(1, share)

    def buffer_deadline(self, oldest_tombstone_time: int, deepest: int) -> int:
        """Tick by which the write buffer must flush its oldest tombstone.

        The buffer shares level 1's slice of ``D_th`` rather than taking a
        slice of its own: deadlines are measured from the tombstone's
        *write* time, so time spent buffered counts against level 1's
        share automatically, and a file flushed at (or past) its level-1
        deadline simply cascades downward in the same maintenance pass.
        Giving the buffer a separate (tiny) slice would force far more
        frequent flushes and inflate write amplification for no extra
        guarantee.
        """
        return oldest_tombstone_time + self.cumulative_ttl(1, deepest)

    # ------------------------------------------------------------------
    # file registry (called by the tree on every install/remove)
    # ------------------------------------------------------------------
    def file_added(self, file: SSTableFile, level_index: int, deepest: int) -> None:
        if file.oldest_tombstone_time is None:
            return
        deadline = file.oldest_tombstone_time + self.cumulative_ttl(level_index, deepest)
        self._live[file.file_id] = (file, level_index)
        heapq.heappush(self._heap, (deadline, file.file_id))

    def file_removed(self, file_id: int) -> None:
        self._live.pop(file_id, None)
        self._maybe_compact_heap()

    def _maybe_compact_heap(self) -> None:
        """Rebuild the deadline heap when dead entries dominate.

        Long-lived workloads remove far more files than are ever tracked at
        once; lazy deletion alone lets the heap grow without bound.  The
        rebuild *filters* the existing heap rather than recomputing
        deadlines from ``_live``: a moved file may legitimately have two
        pending heap entries (its pre-move deadline is earlier and fires
        first), and preserving the live-entry multiset keeps pop order --
        and therefore compaction timing -- bit-identical to lazy deletion.
        """
        heap = self._heap
        size = len(heap)
        if (
            size <= 64
            or size <= 4 * len(self._live)
            or size <= 2 * self._last_compacted_size
        ):
            return
        live = self._live
        self._heap = [item for item in heap if item[1] in live]
        heapq.heapify(self._heap)
        self._last_compacted_size = len(self._heap)
        self.heap_compactions += 1

    def tracked_file_count(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    # fence registry (called by the tree on fence install/retire)
    # ------------------------------------------------------------------
    def fence_added(self, fence: RangeFence, deepest: int) -> None:
        """Arm the ``D_th`` deadline for a range-tombstone fence.

        A fence is tree-global -- the data it shadows may sit at any
        depth -- so it carries the full ``D_th`` from its write time
        rather than a per-level slice: by ``write_time + D_th`` every
        shadowed entry must be physically gone and the fence retired.
        """
        self._fence_live[fence.seqno] = fence
        heapq.heappush(self._fence_heap, (fence.write_time + self.d_th, fence.seqno))

    def fence_removed(self, seqno: int) -> None:
        self._fence_live.pop(seqno, None)

    def tracked_fence_count(self) -> int:
        return len(self._fence_live)

    def next_fence_deadline(self) -> int | None:
        """Earliest live fence deadline, or None (O(1) amortized)."""
        while self._fence_heap:
            deadline, seqno = self._fence_heap[0]
            if seqno in self._fence_live:
                return deadline
            heapq.heappop(self._fence_heap)
        return None

    def fence_overdue(self, now: int) -> bool:
        deadline = self.next_fence_deadline()
        return deadline is not None and deadline <= now

    def next_deadline(self) -> int | None:
        """Earliest live deadline -- file or fence -- or None."""
        file_deadline = self._next_file_deadline()
        fence_deadline = self.next_fence_deadline()
        if file_deadline is None:
            return fence_deadline
        if fence_deadline is None:
            return file_deadline
        return min(file_deadline, fence_deadline)

    def _next_file_deadline(self) -> int | None:
        while self._heap:
            deadline, file_id = self._heap[0]
            if file_id in self._live:
                return deadline
            heapq.heappop(self._heap)
        return None

    def _pop_expired(self, now: int) -> tuple[SSTableFile, int, int] | None:
        while self._heap:
            deadline, file_id = self._heap[0]
            entry = self._live.get(file_id)
            if entry is None:
                heapq.heappop(self._heap)
                continue
            if deadline > now:
                return None
            heapq.heappop(self._heap)
            self._live.pop(file_id, None)
            return (*entry, deadline)
        return None

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(
        self, tree: "LSMTree", busy_levels: frozenset[int] = frozenset()
    ) -> CompactionTask | None:
        """The next expiry-driven task, or None when nothing is due.

        Must be called at structural quiescence (no level over capacity,
        leveling invariant restored) -- the tree's maintenance loop
        guarantees that by draining the saturation planner first.

        ``busy_levels`` holds levels reserved by in-flight concurrent
        compactions.  An expired file whose merge would touch a busy level
        is pushed back on the heap (its deadline is already due, so it is
        re-examined as soon as the conflicting job installs); the expiry
        order among conflict-free files is unchanged, preserving FADE
        priority.
        """
        # Iterative (not recursive) drain: a long run of stale expiries --
        # e.g. after a full compaction destroyed every tracked file -- must
        # not grow the Python stack one frame per stale entry.
        now = tree.clock.now()
        while True:
            expired = self._pop_expired(now)
            if expired is None:
                # No file expiry due: give overdue fences their shot.
                return self._plan_fences(tree, busy_levels, now)
            file, level_index, deadline = expired
            if busy_levels and (
                level_index in busy_levels or level_index + 1 in busy_levels
            ):
                # Conflict: restore the entry untouched and stop planning
                # (a shallower expiry must not jump the queue past it).
                self._live[file.file_id] = (file, level_index)
                heapq.heappush(self._heap, (deadline, file.file_id))
                return None
            deepest = tree.deepest_nonempty_level()
            if self.config.policy is CompactionStyle.LEVELING:
                task = self._plan_leveling(tree, file, level_index, deepest)
            else:
                task = self._plan_tiering(tree, file, level_index, deepest)
            if task is None:
                continue  # stale expiry; look for the next one
            if task.reason is CompactionReason.BOTTOM_PURGE:
                self.purge_compactions += 1
            else:
                self.expiry_compactions += 1
            return task

    def _plan_fences(
        self,
        tree: "LSMTree",
        busy_levels: frozenset[int],
        now: int,
    ) -> CompactionTask | None:
        """The next fence-expiry task, or None.

        An overdue fence makes every run still holding data it shadows
        high-priority: the *shallowest* shadowable file is compacted (a
        real merge, never a trivial move -- relocation without rewriting
        resolves nothing), whose output drops the shadowed entries.  The
        fence deadline stays armed until the tree retires the fence, so
        successive maintenance passes drain one shadowable file per task
        until ``D_th`` holds for the range delete.
        """
        if not self._fence_live:
            return None
        for fence in sorted(self._fence_live.values(), key=lambda f: f.write_time):
            if fence.write_time + self.d_th > now:
                break  # the rest are younger still
            found = None
            for level in tree.iter_levels():
                for run in level.runs:
                    for file in run.files:
                        if file_shadowable(file, fence):
                            found = (file, level.index)
                            break
                    if found is not None:
                        break
                if found is not None:
                    break
            if found is None:
                # Shadowed data is buffered-only (the tree's maintenance
                # loop flushes it) or already resolved (the tree retires
                # the fence); either way no compaction helps here.
                continue
            file, level_index = found
            if busy_levels and (
                level_index in busy_levels or level_index + 1 in busy_levels
            ):
                return None  # re-examined as soon as the conflict installs
            deepest = tree.deepest_nonempty_level()
            if self.config.policy is CompactionStyle.LEVELING:
                task = self._plan_leveling(tree, file, level_index, deepest)
                if task is not None and task.trivial_move:
                    task = CompactionTask(
                        reason=CompactionReason.TTL_EXPIRY,
                        inputs=task.inputs,
                        target_level=task.target_level,
                        placement=task.placement,
                        drop_tombstones=False,
                        notes=(
                            f"fence-expiry rewrite {file.file_id} "
                            f"L{level_index}->L{task.target_level}"
                        ),
                    )
            else:
                task = self._plan_tiering(tree, file, level_index, deepest)
            if task is None:
                continue
            self.fence_expiry_compactions += 1
            return task
        return None

    def _plan_leveling(
        self,
        tree: "LSMTree",
        file: SSTableFile,
        level_index: int,
        deepest: int,
    ) -> CompactionTask | None:
        level = tree.level(level_index)
        run = next((r for r in level.runs if file in r.files), None)
        if run is None:
            return None  # the file was compacted away concurrently
        if level_index >= deepest:
            # Bottommost data: rewrite the file alone, purging tombstones.
            # Safe because a run is key-partitioned (no same-level overlap)
            # and nothing exists below.
            return CompactionTask(
                reason=CompactionReason.BOTTOM_PURGE,
                inputs=[TaskInput(level_index, run, [file])],
                target_level=level_index,
                placement=OutputPlacement.MERGE_INTO_TARGET_RUN,
                drop_tombstones=True,
                notes=f"purge file {file.file_id} at bottom L{level_index}",
            )
        next_index = level_index + 1
        next_level = tree.level(next_index)
        inputs = [TaskInput(level_index, run, [file])]
        overlap: list[SSTableFile] = []
        if not next_level.is_empty:
            target_run = next_level.runs[0]
            overlap = target_run.overlapping_files(file.min_key, file.max_key)
            if overlap:
                inputs.append(TaskInput(next_index, target_run, overlap))
        drop = next_index >= deepest
        # An expired file with clear space below (and no purge due yet)
        # can descend as a trivial move: the deadline is met for free.
        if self.config.trivial_moves and not overlap and not drop:
            return CompactionTask(
                reason=CompactionReason.TTL_EXPIRY,
                inputs=inputs,
                target_level=next_index,
                placement=OutputPlacement.MERGE_INTO_TARGET_RUN,
                trivial_move=True,
                notes=f"expired trivial move {file.file_id} L{level_index}->L{next_index}",
            )
        return CompactionTask(
            reason=CompactionReason.TTL_EXPIRY,
            inputs=inputs,
            target_level=next_index,
            placement=OutputPlacement.MERGE_INTO_TARGET_RUN,
            drop_tombstones=drop,
            notes=f"expired file {file.file_id} L{level_index}->L{next_index}",
        )

    def _plan_tiering(
        self,
        tree: "LSMTree",
        file: SSTableFile,
        level_index: int,
        deepest: int,
    ) -> CompactionTask | None:
        level = tree.level(level_index)
        if not any(file in r.files for r in level.runs):
            return None
        inputs = [TaskInput(level_index, run, list(run.files)) for run in level.runs]
        if level_index >= deepest and tree.level(level_index + 1).is_empty:
            # Bottommost data: merge the whole level in place and purge.
            # All runs participate, so every older version is in the merge.
            return CompactionTask(
                reason=CompactionReason.BOTTOM_PURGE,
                inputs=inputs,
                target_level=level_index,
                placement=OutputPlacement.NEW_RUN,
                drop_tombstones=True,
                notes=f"purge-merge L{level_index}",
            )
        next_index = level_index + 1
        target_empty = tree.level(next_index).is_empty
        return CompactionTask(
            reason=CompactionReason.TTL_EXPIRY,
            inputs=inputs,
            target_level=next_index,
            placement=OutputPlacement.NEW_RUN,
            drop_tombstones=target_empty and level_index >= deepest,
            notes=f"expired tier-merge L{level_index}->L{next_index}",
        )
