"""The user-facing engine facade.

:class:`AcheronEngine` is the public API of this library: a key-value store
with puts, point deletes carrying a persistence guarantee, secondary range
deletes, point and range reads, and rich observability.  It wires together
the LSM substrate, the FADE scheduler, the persistence tracker, and the
KiWi delete executors, and exposes one :meth:`stats` snapshot gathering
everything the paper's evaluation measures.

Typical use::

    from repro import AcheronEngine

    engine = AcheronEngine.acheron(delete_persistence_threshold=50_000)
    engine.put("user:42", b"profile-bytes")
    engine.delete("user:42")              # guaranteed purged within D_th
    engine.delete_range(0, cutoff_tick)   # secondary delete, via KiWi
    print(engine.stats().persistence.max_latency)

``AcheronEngine.baseline()`` builds the state-of-the-art comparison engine
(same tree, delete-awareness off) so experiments compare like with like.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.clock import LogicalClock
from repro.config import LSMConfig, acheron_config, baseline_config
from repro.core.kiwi import (
    SecondaryDeleteReport,
    full_rewrite_delete,
    kiwi_range_delete,
    lazy_range_delete,
)
from repro.core.persistence import PersistenceStats, PersistenceTracker
from repro.errors import ConfigError
from repro.lsm.tree import LSMTree
from repro.metrics.amplification import AmplificationReport, measure_amplification
from repro.metrics.shape import LevelSummary, tree_shape
from repro.storage.disk import IOStats


@dataclass(frozen=True)
class EngineStats:
    """Everything the evaluation measures, in one snapshot."""

    io: IOStats
    amplification: AmplificationReport
    persistence: PersistenceStats
    shape: list[LevelSummary]
    counters: dict[str, int]
    flush_count: int
    compaction_count: int
    cache_hit_rate: float
    tick: int
    #: The block cache's full stats section plus the per-level read-path
    #: pruning counters (see :meth:`LSMTree.read_stats`).
    cache: dict = None  # type: ignore[assignment]
    read_path: list = None  # type: ignore[assignment]
    #: Write-path observability (flush/compaction queues, stalls, worker
    #: throughput); see :meth:`LSMTree.write_stats`.
    write_path: dict = None  # type: ignore[assignment]
    #: Per-shard breakdown rows (range, size, FADE/``D_th`` compliance);
    #: populated only by :class:`~repro.shard.engine.ShardedEngine`.
    shards: list = None  # type: ignore[assignment]
    #: Range-tombstone fence row: live count, oldest fence age vs the
    #: ``D_th`` guarantee, and how much deferred resolution compactions
    #: have already performed.
    fences: dict = None  # type: ignore[assignment]
    #: Adaptive memory governor section (per-shard budgets, decision and
    #: resize counters, recent events); populated only when a
    #: :class:`~repro.shard.engine.ShardedEngine` arms the governor.
    memory: dict = None  # type: ignore[assignment]
    #: Self-tuning compaction section (windows evaluated, live switches,
    #: recent decisions); populated only when a
    #: :class:`~repro.shard.engine.ShardedEngine` arms the policy tuner.
    policy: dict = None  # type: ignore[assignment]
    #: Served-engine section (admission/shedding/throughput counters);
    #: populated only by :meth:`~repro.server.core.EngineServer.stats`
    #: and the wire ``STATS`` op.
    server: dict = None  # type: ignore[assignment]

    def to_dict(self) -> dict:
        """JSON-safe snapshot (for logging, dashboards, bench archives)."""
        from dataclasses import asdict

        def scrub(value):
            if isinstance(value, float) and (value != value or abs(value) == float("inf")):
                return str(value)
            if isinstance(value, dict):
                return {k: scrub(v) for k, v in value.items()}
            if isinstance(value, list):
                return [scrub(v) for v in value]
            return value

        return scrub(
            {
                "tick": self.tick,
                "io": asdict(self.io),
                "amplification": asdict(self.amplification),
                "persistence": asdict(self.persistence),
                "shape": [asdict(level) for level in self.shape],
                "counters": dict(self.counters),
                "flush_count": self.flush_count,
                "compaction_count": self.compaction_count,
                "cache_hit_rate": self.cache_hit_rate,
                "cache": dict(self.cache) if self.cache else {},
                "read_path": list(self.read_path) if self.read_path else [],
                "write_path": dict(self.write_path) if self.write_path else {},
                "shards": list(self.shards) if self.shards else [],
                "fences": dict(self.fences) if self.fences else {},
                "memory": dict(self.memory) if self.memory else {},
                "policy": dict(self.policy) if self.policy else {},
                "server": dict(self.server) if self.server else {},
            }
        )


class AcheronEngine:
    """A delete-aware LSM key-value engine (see module docstring)."""

    def __init__(
        self,
        config: LSMConfig | None = None,
        directory: str | None = None,
        clock: LogicalClock | None = None,
        track_persistence: bool = True,
        read_only: bool = False,
        wal_sync: bool = False,
        faults: Any = None,
        degraded_ok: bool = False,
        workers: int | None = None,
    ) -> None:
        if workers is None:
            # Env-driven default so the whole suite can be re-run
            # concurrently (CI's REPRO_WORKERS=4 job).  Fault-injected
            # engines stay serial unless the caller opts in explicitly:
            # the crash matrix's classic rows depend on deterministic
            # single-threaded fault ordering.
            if faults is None:
                workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
            else:
                workers = 1
        if config is None and directory is not None:
            # A durable store is self-describing: prefer its recorded
            # config over the default when none is given explicitly.
            from repro.storage.filestore import FileStore

            manifest = FileStore(directory).read_manifest()
            if manifest is not None and "config" in manifest:
                config = LSMConfig.from_dict(manifest["config"])
        self.config = config or acheron_config()
        #: The fault injector this engine was opened with (None for clean
        #: opens).  The workload runner consults it: multi-writer replay
        #: against a fault-injected serial engine is refused, not silently
        #: degraded.
        self.faults = faults
        self.tracker = (
            PersistenceTracker(threshold=self.config.delete_persistence_threshold)
            if track_persistence
            else None
        )
        if directory is not None:
            self.tree = LSMTree.open(
                self.config,
                directory,
                listener=self.tracker,
                wal_sync=wal_sync,
                read_only=read_only,
                faults=faults,
                degraded_ok=degraded_ok,
                workers=workers,
            )
        else:
            if read_only:
                raise ConfigError("read_only requires a durable directory")
            self.tree = LSMTree(
                self.config, clock=clock, listener=self.tracker, workers=workers
            )

    # ------------------------------------------------------------------
    # named constructors (the two engines the demo compares)
    # ------------------------------------------------------------------
    @classmethod
    def acheron(
        cls,
        delete_persistence_threshold: int = 50_000,
        pages_per_tile: int = 8,
        directory: str | None = None,
        workers: int | None = None,
        **config_overrides: object,
    ) -> "AcheronEngine":
        """The demonstrated engine: FADE + KiWi enabled."""
        cfg = acheron_config(
            delete_persistence_threshold=delete_persistence_threshold,
            pages_per_tile=pages_per_tile,
            **config_overrides,
        )
        return cls(cfg, directory=directory, workers=workers)

    @classmethod
    def baseline(
        cls,
        directory: str | None = None,
        workers: int | None = None,
        **config_overrides: object,
    ) -> "AcheronEngine":
        """The state-of-the-art baseline: no persistence guarantee."""
        return cls(
            baseline_config(**config_overrides), directory=directory, workers=workers
        )

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def put(self, key: Any, value: Any, delete_key: int | None = None) -> None:
        """Insert or update ``key`` (see :meth:`LSMTree.put`)."""
        self.tree.put(key, value, delete_key=delete_key)

    def delete(self, key: Any) -> None:
        """Logically delete ``key``; FADE bounds its physical purge."""
        self.tree.delete(key)

    def put_many(self, items: Iterable[tuple]) -> int:
        """Batched puts: ``(key, value)`` or ``(key, value, delete_key)``
        tuples, applied with amortized per-op overhead (see
        :meth:`LSMTree.put_many`).  Returns the number applied."""
        return self.tree.put_many(items)

    def apply_batch(self, ops: Iterable[tuple]) -> int:
        """Apply a mixed ingest batch: ``("put", key, value[, delete_key])``
        and ``("delete", key)`` tuples.  Behaviourally identical to issuing
        the operations one by one, with the WAL appends and per-op
        bookkeeping amortized across the batch (see
        :meth:`LSMTree.apply_batch`).  Returns the number applied."""
        return self.tree.apply_batch(ops)

    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup; ``default`` for missing or deleted keys."""
        return self.tree.get(key, default=default)

    def contains(self, key: Any) -> bool:
        return self.tree.contains(key)

    def scan(
        self,
        lo: Any,
        hi: Any,
        limit: int | None = None,
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Live pairs with ``lo <= key <= hi`` (descending when ``reverse``)."""
        return self.tree.scan(lo, hi, limit=limit, reverse=reverse)

    def delete_range(
        self, delete_key_lo: int, delete_key_hi: int, method: str = "auto"
    ) -> SecondaryDeleteReport:
        """Delete every value whose *delete key* lies in the given range.

        ``method`` selects the executor: ``"lazy"`` (persist a
        range-tombstone fence -- O(1) at call time, resolved by later
        compactions), ``"kiwi"`` (eager page drops), ``"full_rewrite"``
        (the baseline full-tree rewrite), ``"eager"`` (kiwi when the
        weave is enabled, full rewrite otherwise), or ``"auto"`` (the
        eager resolution -- i.e. each engine pays its own paper-accurate
        physical cost; lazy stays opt-in so cost-model comparisons remain
        apples-to-apples).
        """
        if method == "lazy":
            # The whole point: no exclusive() quiesce, no file rewrites.
            # One WAL append + manifest publish under the writer lock.
            return lazy_range_delete(self.tree, delete_key_lo, delete_key_hi)
        wp = self.tree.write_path
        if wp is not None and not wp.owns_inline():
            # Eager secondary deletes rewrite structure with serial code
            # paths; quiesce the background workers and run inline.
            with wp.exclusive():
                return self.delete_range(delete_key_lo, delete_key_hi, method=method)
        if method in ("auto", "eager"):
            method = "kiwi" if self.config.kiwi_enabled else "full_rewrite"
        if method == "kiwi":
            return kiwi_range_delete(self.tree, delete_key_lo, delete_key_hi)
        if method == "full_rewrite":
            return full_rewrite_delete(self.tree, delete_key_lo, delete_key_hi)
        raise ValueError(f"unknown secondary delete method {method!r}")

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def flush(self) -> None:
        self.tree.flush()

    @property
    def policy(self) -> Any:
        """The live compaction policy (a :class:`CompactionStyle`)."""
        return self.tree.config.policy

    def set_policy(self, style: Any) -> bool:
        """Switch the live compaction policy; True when it changed.

        Delegates to :meth:`LSMTree.set_policy` (safe under background
        workers, durable through the manifest) and re-syncs the facade's
        config reference with the tree's rebound one.
        """
        changed = self.tree.set_policy(style)
        if changed:
            self.config = self.tree.config
        return changed

    def compact_all(self) -> None:
        """Force a full tree merge (the baseline's delete-forcing tool)."""
        self.tree.full_compaction()

    def advance_time(self, ticks: int) -> None:
        """Model an idle period so FADE deadlines can come due."""
        self.tree.advance_time(ticks)

    def close(self) -> None:
        self.tree.close()

    def __enter__(self) -> "AcheronEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """One consistent snapshot of every evaluation metric."""
        # Drain in-flight flushes/compactions first: amplification and
        # shape walk live structure, and a half-installed level would
        # make the numbers incoherent.  No-op for serial engines.
        self.tree.write_barrier()
        now = self.tree.clock.now()
        tracker = self.tracker or PersistenceTracker()
        # read_stats() mirrors the cache totals into tree.counters, so it
        # must run before the counters snapshot is taken.
        read_stats = self.tree.read_stats()
        return EngineStats(
            io=self.tree.disk.snapshot(),
            amplification=measure_amplification(self.tree),
            persistence=tracker.stats(now),
            shape=tree_shape(self.tree),
            counters=dict(self.tree.counters),
            flush_count=self.tree.flush_count,
            compaction_count=len(self.tree.compaction_log),
            cache_hit_rate=self.tree.cache.hit_rate,
            tick=now,
            cache=read_stats["cache"],
            read_path=read_stats["levels"],
            write_path=self.tree.write_stats(),
            fences=self.fence_stats(),
        )

    def fence_stats(self) -> dict:
        """The range-tombstone fence row (count, oldest age vs ``D_th``)."""
        now = self.tree.clock.now()
        fences = self.tree.fences
        d_th = self.config.delete_persistence_threshold
        oldest_age = (
            now - min(f.write_time for f in fences) if fences else None
        )
        return {
            "live": len(fences),
            "oldest_age": oldest_age,
            "threshold": d_th,
            "within_threshold": (
                None
                if oldest_age is None or not d_th
                else oldest_age <= d_th
            ),
            "entries_resolved_by_compaction": sum(
                getattr(e, "fence_resolved", 0) for e in self.tree.compaction_log
            ),
        }

    def persistence_stats(self) -> PersistenceStats:
        tracker = self.tracker or PersistenceTracker()
        return tracker.stats(self.tree.clock.now())

    def compliance_report(self) -> dict:
        """The privacy-compliance audit in one call.

        What a deletion-compliance review asks for: how many deletes are
        outstanding, the oldest exposure, whether the configured deadline
        has ever been missed, and how much logically dead data remains on
        the device.  JSON-safe, suitable for export.
        """
        now = self.tree.clock.now()
        stats = self.persistence_stats()
        amp = measure_amplification(self.tree)
        dead_bytes = max(0, amp.bytes_on_disk - amp.live_bytes)
        fence_row = self.fence_stats()
        return {
            "tick": now,
            "guarantee_ticks": self.config.delete_persistence_threshold,
            "deletes_registered": stats.registered,
            "deletes_persisted": stats.persisted,
            "deletes_superseded": stats.superseded,
            "deletes_pending": stats.pending,
            "oldest_pending_age": stats.oldest_pending_age,
            "deadline_violations": stats.violations,
            "compliant": stats.compliant(),
            "tombstones_on_disk": amp.tombstones_on_disk,
            "logically_dead_bytes_on_disk": dead_bytes,
            # Range deletes carry the same D_th promise as point deletes:
            # a live fence past the threshold means shadowed data is
            # overstaying its welcome on the device.
            "range_fences_live": fence_row["live"],
            "oldest_fence_age": fence_row["oldest_age"],
            "fences_within_threshold": fence_row["within_threshold"],
        }

    @property
    def degraded(self) -> bool:
        """True when recovery skipped corrupt files (read-only salvage)."""
        return self.tree.degraded

    def verify_invariants(self) -> None:
        """Integrity audit of the live tree (see :meth:`LSMTree.verify_invariants`)."""
        self.tree.verify_invariants()

    @property
    def disk(self) -> Any:
        return self.tree.disk

    @property
    def clock(self) -> LogicalClock:
        return self.tree.clock
