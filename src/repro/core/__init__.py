"""The paper's contribution: delete-aware LSM machinery.

* :mod:`repro.core.persistence` -- the tombstone lifecycle tracker that
  measures delete persistence latency (the paper's central metric).
* :mod:`repro.core.fade` -- FADE, the delete-aware compaction scheduler
  that bounds persistence latency by ``D_th`` via per-level TTLs.
* :mod:`repro.core.kiwi` -- secondary range deletes over the key-weaving
  layout (page drops instead of a full-tree rewrite), plus the baseline
  full-rewrite comparator.
* :mod:`repro.core.engine` -- the user-facing engine facade that wires the
  above onto the LSM substrate.
"""

from repro.core.engine import AcheronEngine, EngineStats
from repro.core.fade import FadeScheduler
from repro.core.kiwi import SecondaryDeleteReport, full_rewrite_delete, kiwi_range_delete
from repro.core.persistence import PersistenceStats, PersistenceTracker

__all__ = [
    "AcheronEngine",
    "EngineStats",
    "FadeScheduler",
    "PersistenceStats",
    "PersistenceTracker",
    "SecondaryDeleteReport",
    "full_rewrite_delete",
    "kiwi_range_delete",
]
