"""Closed-form cost model of the engine's design space.

The formulas are the standard LSM asymptotics (O1996 LSM paper; Monkey;
Dostoevsky; the authors' compaction-design-space analysis), instantiated
with this engine's concrete conventions so they are *checkable* against
the simulator rather than merely asymptotic:

* buffer of ``B`` entries, size ratio ``T``; level ``i`` holds up to
  ``B * T^i`` entries, so ``N`` entries need
  ``L = ceil(log_T(N / B))`` levels;
* **leveling** rewrites a level's data about ``(T+1)/2`` times while the
  level fills, at every level, plus the initial flush:
  ``WA = 1 + L * (T+1)/2``;
* **tiering** writes each entry once per level: ``WA = 1 + L``;
* **lazy leveling** tiers the first ``L-1`` levels and levels the last:
  ``WA = 1 + (L-1) + (T+1)/2``;
* a **point lookup** pays one page per run that cannot be excluded: an
  existing key costs ``1 + fp * (runs - 1)`` expected pages, a missing
  key ``fp * runs``, with ``fp`` the Bloom false-positive rate
  ``(1 - e^(-k*n/m))^k`` at ``k = bits * ln2``;
* a **KiWi range delete** of delete-key selectivity ``s`` classifies each
  tile's ``h`` delete-key-partitioned pages: about ``s*h`` pages are
  covered, of which up to 2 straddle the boundary and must be rewritten,
  so expected free drops are ``max(0, s*h - 2)/h`` of each tile and the
  I/O is ``~2 pages per overlapping tile``; the classic layout (h=1)
  and the full rewrite pay ``s`` resp. ``1`` of the tree.

The model is deliberately first-order: it ignores the memtable's dedup,
partial fills, and trivial moves.  The A1 experiment documents how close
it lands (within ~2x on every metric at simulator scale, directionally
exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import CompactionStyle, LSMConfig


@dataclass(frozen=True)
class WorkloadProfile:
    """The workload parameters the model needs.

    ``unique_entries`` -- live keys resident in the tree.
    ``delete_fraction`` -- point deletes as a fraction of ingestion.
    ``range_delete_selectivity`` -- fraction of the delete-key domain one
    secondary range delete covers.
    """

    unique_entries: int
    delete_fraction: float = 0.0
    range_delete_selectivity: float = 0.1

    def __post_init__(self) -> None:
        if self.unique_entries < 1:
            raise ValueError("unique_entries must be >= 1")
        if not 0.0 <= self.delete_fraction < 1.0:
            raise ValueError("delete_fraction must be in [0, 1)")
        if not 0.0 < self.range_delete_selectivity <= 1.0:
            raise ValueError("range_delete_selectivity must be in (0, 1]")


class CostModel:
    """Predictions for one configuration (see module docstring)."""

    def __init__(self, config: LSMConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    def levels(self, entries: int) -> int:
        """Predicted number of on-disk levels for ``entries`` entries."""
        if entries <= 0:
            return 0
        buffer = self.config.memtable_entries
        ratio = self.config.size_ratio
        level, capacity = 1, buffer * ratio
        total = capacity
        while total < entries:
            level += 1
            capacity *= ratio
            total += capacity
        return level

    def runs_per_level(self) -> float:
        """Expected run count in a non-last level at steady state."""
        if self.config.policy is CompactionStyle.LEVELING:
            return 1.0
        return (1 + self.config.size_ratio) / 2.0

    def total_runs(self, entries: int) -> float:
        """Expected number of runs a lookup may have to consider."""
        depth = self.levels(entries)
        if self.config.policy is CompactionStyle.LEVELING:
            return float(depth)
        if self.config.policy is CompactionStyle.LAZY_LEVELING:
            return (depth - 1) * self.runs_per_level() + 1 if depth else 0.0
        return depth * self.runs_per_level()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write_amplification(self, entries: int) -> float:
        """Predicted device-bytes-written per ingested byte."""
        depth = self.levels(entries)
        ratio = self.config.size_ratio
        per_level_rewrites = (ratio + 1) / 2.0
        if self.config.policy is CompactionStyle.LEVELING:
            return 1.0 + depth * per_level_rewrites
        if self.config.policy is CompactionStyle.LAZY_LEVELING:
            return 1.0 + max(0, depth - 1) + per_level_rewrites
        return 1.0 + depth

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def bloom_false_positive_rate(self) -> float:
        """FP rate of the per-file filters at the configured budget."""
        bits = self.config.bloom_bits_per_key
        if bits <= 0:
            return 1.0
        hashes = max(1, round(bits * math.log(2)))
        return (1.0 - math.exp(-hashes / bits)) ** hashes

    def point_lookup_pages(self, entries: int, exists: bool) -> float:
        """Expected device pages for one point lookup.

        A KiWi weave multiplies the in-file probe cost by the expected
        candidate-page count, approximated as ``(h+1)/2`` (a key's range
        membership is roughly uniform across a tile's pages).  Per-page
        filters prune the false candidates, leaving ``1 + fp*(h-1)/2``.
        """
        fp = self.bloom_false_positive_rate()
        runs = self.total_runs(entries)
        h = self.config.pages_per_tile
        if self.config.kiwi_page_filters and h > 1:
            candidates = 1.0 + fp * (h - 1) / 2.0
        else:
            candidates = (h + 1) / 2.0
        if exists:
            return (1.0 + fp * max(0.0, runs - 1.0)) * candidates
        return fp * runs * candidates

    def space_amplification_bound(self, profile: WorkloadProfile) -> float:
        """Upper bound on steady-state space amplification (no FADE).

        Leveling: stale versions are confined to the non-last levels,
        ~1/T of the data, plus the tombstone residue of unpersisted
        deletes.  Tiering: a level may hold T full copies -> amp up to T.
        """
        ratio = self.config.size_ratio
        tombstone_share = profile.delete_fraction / (1.0 - profile.delete_fraction)
        if self.config.policy is CompactionStyle.TIERING:
            return ratio * (1.0 + tombstone_share)
        return (1.0 + 1.0 / ratio) * (1.0 + tombstone_share)

    # ------------------------------------------------------------------
    # deletes
    # ------------------------------------------------------------------
    def kiwi_free_drop_fraction(self, selectivity: float) -> float:
        """Fraction of covered pages a KiWi delete drops without I/O."""
        h = self.config.pages_per_tile
        covered = selectivity * h
        return max(0.0, covered - 2.0) / covered if covered > 0 else 0.0

    def secondary_delete_pages(self, tree_pages: int, selectivity: float) -> float:
        """Expected I/O pages (read+write) for one secondary range delete."""
        h = self.config.pages_per_tile
        tiles = tree_pages / h
        if h == 1:
            # Classic layout: delete keys are scattered; nearly every page
            # holding a victim must be read and rewritten.
            return 2.0 * selectivity * tree_pages
        # Weave: each tile spans the delete-key domain, so every tile
        # overlaps a prefix range ("older than T", the retention case);
        # the cut leaves one boundary page per tile, read + rewritten.
        return 2.0 * tiles

    def full_rewrite_delete_pages(self, tree_pages: int, selectivity: float) -> float:
        """The baseline comparator: read everything, rewrite survivors."""
        return tree_pages + tree_pages * (1.0 - selectivity)

    # ------------------------------------------------------------------
    # FADE
    # ------------------------------------------------------------------
    def fade_ttl_table(self, entries: int) -> list[tuple[int, int]]:
        """(level, cumulative deadline offset) for the configured D_th."""
        d_th = self.config.delete_persistence_threshold
        if d_th is None:
            raise ValueError("the config has no delete_persistence_threshold")
        depth = max(1, self.levels(entries))
        ratio = self.config.size_ratio
        table = []
        for level in range(1, depth + 1):
            if level >= depth:
                share = d_th
            else:
                share = max(
                    1, d_th * (ratio ** (level + 1) - 1) // (ratio ** (depth + 1) - 1)
                )
            table.append((level, share))
        return table

    def persistence_bound(self) -> int | None:
        """The guaranteed worst-case delete persistence latency."""
        return self.config.delete_persistence_threshold

    # ------------------------------------------------------------------
    # summary
    # ------------------------------------------------------------------
    def summary(self, profile: WorkloadProfile) -> dict[str, float | int | None]:
        """All predictions for one workload, keyed for table rendering."""
        n = profile.unique_entries
        return {
            "levels": self.levels(n),
            "write_amplification": self.write_amplification(n),
            "pages_per_existing_lookup": self.point_lookup_pages(n, exists=True),
            "pages_per_missing_lookup": self.point_lookup_pages(n, exists=False),
            "space_amplification_bound": self.space_amplification_bound(profile),
            "bloom_fp_rate": self.bloom_false_positive_rate(),
            "persistence_bound": self.persistence_bound(),
        }
