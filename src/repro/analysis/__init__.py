"""Analytical cost models for the engine's design space.

Closed-form predictions -- tree depth, write amplification, lookup I/O,
space bounds, KiWi delete costs, FADE TTL allocation -- in the style of
the LSM design-space literature the paper builds on.  The A1 experiment
(``benchmarks/test_a1_model_validation.py``) checks the model against the
measured engine; ``examples/tuning_advisor.py`` uses it to recommend
configurations.
"""

from repro.analysis.model import CostModel, WorkloadProfile

__all__ = ["CostModel", "WorkloadProfile"]
